type t = {
  cache : Cache.t;
  registry : Telemetry.Metrics.t;
  deadline_ms : int option;
  max_queue : int;
  stop_requested : bool Atomic.t;
  m_shed : Telemetry.Metrics.counter;
  m_timeout : Telemetry.Metrics.counter;
  m_degraded : Telemetry.Metrics.counter;
  mutable requests : int;
  mutable protocol_errors : int;
  mutable completed : int;
  mutable timeouts : int;
  mutable resource_exhausted : int;
  mutable degradations : int;
  mutable sheds : int;
  mutable drained : int;
}

let protocol_version = 1

let create ?max_entries ?max_bytes ?persist_dir ?deadline_ms
    ?(max_queue = 64) () =
  (match deadline_ms with
   | Some ms when ms <= 0 ->
     invalid_arg "Serve.Daemon.create: deadline_ms <= 0"
   | Some _ | None -> ());
  if max_queue < 1 then invalid_arg "Serve.Daemon.create: max_queue < 1";
  let registry = Telemetry.Metrics.create () in
  {
    cache = Cache.create ?max_entries ?max_bytes ?persist_dir ();
    registry;
    deadline_ms;
    max_queue;
    stop_requested = Atomic.make false;
    m_shed = Telemetry.Metrics.counter registry "serve.shed";
    m_timeout = Telemetry.Metrics.counter registry "serve.timeout";
    m_degraded = Telemetry.Metrics.counter registry "serve.degraded";
    requests = 0;
    protocol_errors = 0;
    completed = 0;
    timeouts = 0;
    resource_exhausted = 0;
    degradations = 0;
    sheds = 0;
    drained = 0;
  }

let request_stop t = Atomic.set t.stop_requested true
let stop_requested t = Atomic.get t.stop_requested
let max_line_bytes = 1024 * 1024

(* --- graceful degradation --------------------------------------------- *)

(* A single request hitting the memory wall must not take the daemon
   (and every cached artifact) with it: shed the retained graphs, give
   the collector a chance to return the pages, and retry the request
   once against the now-cold cache.  A second crash is answered as a
   typed [resource_exhausted] error — the daemon itself keeps serving.
   [Exec.Budget.Expired] deliberately passes through untouched: a
   timeout is not memory pressure. *)
let crash_name e =
  match e with
  | Out_of_memory -> "out-of-memory"
  | _ -> "stack overflow"

let with_degradation t f =
  match f () with
  | v -> Ok v
  | exception (Out_of_memory | Stack_overflow) -> (
    t.degradations <- t.degradations + 1;
    Telemetry.Metrics.incr t.m_degraded;
    Cache.clear t.cache;
    Asl.Compiled.clear_memo ();
    Gc.compact ();
    match f () with
    | v -> Ok v
    | exception ((Out_of_memory | Stack_overflow) as e2) ->
      Error
        (Printf.sprintf
           "request failed with %s twice; caches evicted, giving up"
           (crash_name e2)))

(* --- request decoding ------------------------------------------------- *)

let ( let* ) = Result.bind

(* A typo'd field would otherwise be silently ignored and the request
   would run with a default the user never asked for — reject it. *)
let check_fields ~op ~allowed members =
  let rec loop ms =
    match ms with
    | [] -> Ok ()
    | (key, _) :: rest ->
      if List.mem key allowed then loop rest
      else Error (Printf.sprintf "unknown field %S for op %S" key op)
  in
  loop members

let req_str obj key =
  match Json.member key obj with
  | None -> Error (Printf.sprintf "missing %S field" key)
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" key))

let opt_str obj key =
  match Json.member key obj with
  | None -> Ok None
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S must be a string" key))

let str_field obj key ~default =
  let* v = opt_str obj key in
  Ok (Option.value v ~default)

let int_field obj key ~default =
  match Json.member key obj with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S must be an integer" key))

let opt_int obj key =
  match Json.member key obj with
  | None -> Ok None
  | Some v -> (
    match Json.to_int v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S must be an integer" key))

let bool_field obj key ~default =
  match Json.member key obj with
  | None -> Ok default
  | Some v -> (
    match Json.to_bool v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S must be a boolean" key))

let list_field obj key =
  match Json.member key obj with
  | None -> Ok []
  | Some v -> (
    match Json.str_list v with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "field %S must be a list of strings" key))

let format_field obj =
  let* s = str_field obj "format" ~default:"text" in
  match s with
  | "text" -> Ok `Text
  | "json" -> Ok `Json
  | other ->
    Error
      (Printf.sprintf "field \"format\" must be \"text\" or \"json\" (got %S)"
         other)

let lang_field obj =
  let* lang = req_str obj "lang" in
  match lang with
  | "vhdl" | "verilog" | "systemc" | "c" -> Ok lang
  | other ->
    Error
      (Printf.sprintf
         "field \"lang\" must be one of vhdl, verilog, systemc, c (got %S)"
         other)

(* [lint] takes either ["models"] (a list) or ["model"]; every other
   model op takes ["model"]. *)
let models_field obj =
  let* single = opt_str obj "model" in
  let* many =
    match Json.member "models" obj with
    | None -> Ok None
    | Some v -> (
      match Json.str_list v with
      | Some l -> Ok (Some l)
      | None -> Error "field \"models\" must be a list of strings")
  in
  match (single, many) with
  | Some _, Some _ -> Error "give either \"model\" or \"models\", not both"
  | Some m, None -> Ok [ m ]
  | None, Some [] -> Error "field \"models\" must not be empty"
  | None, Some l -> Ok l
  | None, None -> Error "missing \"model\" field"

let id_of obj =
  match Json.member "id" obj with
  | None -> Ok None
  | Some (Json.Int _ as v) -> Ok (Some v)
  | Some (Json.Str _ as v) -> Ok (Some v)
  | Some (Json.Null | Json.Bool _ | Json.Float _ | Json.List _ | Json.Obj _)
    ->
    Error "field \"id\" must be a string or integer"

(* How a long-running op may be cancelled.  [fuel] (a deterministic
   checkpoint count, for tests and golden gates) beats the request's
   [deadline_ms], which beats the server-wide default; a fresh budget
   is built per attempt so the degradation retry starts with full
   allowance. *)
type budget_spec =
  | B_default
  | B_fuel of int
  | B_deadline_ms of int

let budget_spec_of obj =
  let* fuel = opt_int obj "fuel" in
  let* deadline = opt_int obj "deadline_ms" in
  match (fuel, deadline) with
  | Some _, Some _ -> Error "give either \"fuel\" or \"deadline_ms\", not both"
  | Some n, None ->
    if n < 0 then Error "field \"fuel\" must be non-negative"
    else Ok (B_fuel n)
  | None, Some ms ->
    if ms <= 0 then Error "field \"deadline_ms\" must be positive"
    else Ok (B_deadline_ms ms)
  | None, None -> Ok B_default

let budget_of_spec t spec =
  match spec with
  | B_fuel n -> Exec.Budget.fuel n
  | B_deadline_ms ms -> Exec.Budget.deadline ~now:Unix.gettimeofday ~ms
  | B_default -> (
    match t.deadline_ms with
    | Some ms -> Exec.Budget.deadline ~now:Unix.gettimeofday ~ms
    | None -> Exec.Budget.unlimited)

(* --- op execution ----------------------------------------------------- *)

(* Typed failure classes with their own response [code] field — the
   protocol's error-code table (DESIGN.md §5). *)
type code =
  | C_timeout
  | C_resource_exhausted

let code_name c =
  match c with
  | C_timeout -> "timeout"
  | C_resource_exhausted -> "resource_exhausted"

type outcome = {
  oc_op : string;
  oc_exit : int;
  oc_code : code option;
  oc_cache : (string * string * Cache.state) list;
  oc_output : string;
  oc_error : string;
}

type action =
  | Ran of outcome
  | Stats
  | Health
  | Quit

(* Run one op body with buffer sinks.  Model paths are pre-resolved
   through the cache sequentially, in request order, before the body
   runs — so the reported cache states (and the hit/miss counters) are
   deterministic even when the body fans the models out over a pool.
   The body then loads from the per-request snapshot, never the live
   cache.

   The whole attempt (resolution included) runs under the degradation
   wrapper, and [Exec.Budget.Expired] from an engine checkpoint is
   answered as a typed timeout with whatever output the op produced
   before the budget ran out — deterministic under fuel budgets. *)
let run_op t ~op ~paths ~metrics ~budget_spec body =
  let out = Buffer.create 1024 and err = Buffer.create 256 in
  let sink =
    { Ops.s_out = Buffer.add_string out; Ops.s_err = Buffer.add_string err }
  in
  let cache_info = ref [] in
  let attempt () =
    Buffer.clear out;
    Buffer.clear err;
    cache_info := [];
    let budget = budget_of_spec t budget_spec in
    let resolved = List.map (fun p -> (p, Cache.load t.cache p)) paths in
    cache_info :=
      List.filter_map
        (fun (path, r) ->
          match r with
          | Ok (_art, key, state) -> Some (path, key, state)
          | Error _msg -> None)
        resolved;
    let loader path =
      match List.assoc_opt path resolved with
      | Some (Ok (art, _key, _state)) -> Ok art
      | Some (Error msg) -> Error msg
      | None -> (
        match Cache.load t.cache path with
        | Ok (art, _key, _state) -> Ok art
        | Error msg -> Error msg)
    in
    let run reg = Ops.guarded sink (fun () -> body ~budget sink loader reg) in
    if metrics then begin
      (* per-request isolation — the response reports this request's
         counters only; the fork merges back so daemon-level totals
         still accumulate *)
      let child = Telemetry.Metrics.fork t.registry in
      let code = run (Some child) in
      Telemetry.Metrics.merge_into ~into:t.registry child;
      code
    end
    else run None
  in
  let finish ?code exit_code =
    {
      oc_op = op;
      oc_exit = exit_code;
      oc_code = code;
      oc_cache = !cache_info;
      oc_output = Buffer.contents out;
      oc_error = Buffer.contents err;
    }
  in
  match with_degradation t attempt with
  | Ok exit_code -> finish exit_code
  | Error msg ->
    Ops.errl sink msg;
    finish ~code:C_resource_exhausted 1
  | exception Exec.Budget.Expired msg ->
    Ops.errl sink msg;
    finish ~code:C_timeout 1

let dispatch t obj members ~op =
  let common = [ "op"; "id" ] in
  let deadline_fields = [ "fuel"; "deadline_ms" ] in
  match op with
  | "validate" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "format" ]) members
    in
    let* model = req_str obj "model" in
    let* format = format_field obj in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.with_artifacts sink loader model (Ops.validate sink ~format))))
  | "lint" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common
          @ [ "model"; "models"; "format"; "only"; "disable"; "no_hdl";
              "jobs" ])
        members
    in
    let* models = models_field obj in
    let* format = format_field obj in
    let* only = list_field obj "only" in
    let* disable = list_field obj "disable" in
    let* no_hdl = bool_field obj "no_hdl" ~default:false in
    let* jobs = int_field obj "jobs" ~default:1 in
    (* mirror the CLI's ordering: unknown selectors are rejected before
       any model is loaded, so don't pre-resolve (and fill the cache)
       when the op will refuse to run *)
    let paths =
      match Ops.selection_of ~only ~disable with
      | Ok _selection -> models
      | Error _msg -> []
    in
    Ok
      (Ran
         (run_op t ~op ~paths ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.lint sink ~format ~only ~disable ~no_hdl ~jobs loader
                models)))
  | "info" ->
    let* () = check_fields ~op ~allowed:(common @ [ "model" ]) members in
    let* model = req_str obj "model" in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.with_artifacts sink loader model (Ops.info sink))))
  | "gen" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "lang" ]) members
    in
    let* model = req_str obj "model" in
    let* lang = lang_field obj in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.with_artifacts sink loader model (Ops.gen sink ~lang))))
  | "simulate" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common
          @ [ "model"; "machine"; "events"; "metrics"; "rtl" ]
          @ deadline_fields)
        members
    in
    let* model = req_str obj "model" in
    let* machine = opt_str obj "machine" in
    let* events = str_field obj "events" ~default:"" in
    let* metrics = bool_field obj "metrics" ~default:false in
    let* rtl = bool_field obj "rtl" ~default:false in
    let* budget_spec = budget_spec_of obj in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics ~budget_spec
            (fun ~budget sink loader reg ->
              Ops.with_artifacts sink loader model
                (Ops.simulate ~budget sink ~machine ~events ~metrics:reg ~rtl))))
  | "trace" ->
    let* () =
      check_fields ~op
        ~allowed:(common @ [ "model"; "machine"; "events" ])
        members
    in
    let* model = req_str obj "model" in
    let* machine = opt_str obj "machine" in
    let* events = str_field obj "events" ~default:"" in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.with_artifacts sink loader model
                (Ops.trace sink ~machine ~events))))
  | "partition" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "budget" ]) members
    in
    let* model = req_str obj "model" in
    let* budget = int_field obj "budget" ~default:500 in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.with_artifacts sink loader model
                (Ops.partition sink ~budget))))
  | "analyze" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common
          @ [ "model"; "metrics"; "only"; "disable"; "jobs" ]
          @ deadline_fields)
        members
    in
    let* model = req_str obj "model" in
    let* metrics = bool_field obj "metrics" ~default:false in
    let* only = list_field obj "only" in
    let* disable = list_field obj "disable" in
    let* jobs = int_field obj "jobs" ~default:1 in
    let* budget_spec = budget_spec_of obj in
    let paths =
      match Ops.selection_of ~only ~disable with
      | Ok _selection -> [ model ]
      | Error _msg -> []
    in
    Ok
      (Ran
         (run_op t ~op ~paths ~metrics ~budget_spec
            (fun ~budget sink loader reg ->
              Ops.analyze ~budget sink ~metrics:reg ~only ~disable ~jobs
                loader model)))
  | "inject" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common
          @ [ "model"; "machine"; "seed"; "faults"; "format"; "metrics";
              "jobs" ]
          @ deadline_fields)
        members
    in
    let* model = req_str obj "model" in
    let* machine = opt_str obj "machine" in
    let* seed = int_field obj "seed" ~default:1 in
    let* faults = int_field obj "faults" ~default:12 in
    let* format = format_field obj in
    let* metrics = bool_field obj "metrics" ~default:false in
    let* jobs = int_field obj "jobs" ~default:1 in
    let* budget_spec = budget_spec_of obj in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics ~budget_spec
            (fun ~budget sink loader reg ->
              Ops.with_artifacts sink loader model
                (Ops.inject ~budget sink ~machine ~seed ~faults ~format
                   ~metrics:reg ~jobs))))
  | "pack" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "out" ]) members
    in
    let* model = req_str obj "model" in
    let* out = opt_str obj "out" in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false ~budget_spec:B_default
            (fun ~budget:_ sink loader _reg ->
              Ops.with_artifacts sink loader model
                (Ops.pack sink ~out ~path:model))))
  | "stats" ->
    let* () = check_fields ~op ~allowed:common members in
    Ok Stats
  | "health" ->
    let* () = check_fields ~op ~allowed:common members in
    Ok Health
  | "quit" ->
    let* () = check_fields ~op ~allowed:common members in
    Ok Quit
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* --- response assembly ------------------------------------------------ *)

let respond ~id fields =
  let prefix =
    match id with
    | Some v -> [ ("id", v) ]
    | None -> []
  in
  Json.to_string (Json.Obj (prefix @ fields))

let protocol_error t ~id msg =
  t.protocol_errors <- t.protocol_errors + 1;
  respond ~id [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

(* Fast-path refusals for lines the daemon never parses: shed under
   overload, drained at shutdown.  Counted as requests (one response
   per line, always) under their own ledger columns. *)
let shed_response t ~depth =
  t.requests <- t.requests + 1;
  t.sheds <- t.sheds + 1;
  Telemetry.Metrics.incr t.m_shed;
  respond ~id:None
    [
      ("ok", Json.Bool false);
      ("code", Json.Str "overloaded");
      ( "error",
        Json.Str
          (Printf.sprintf "server overloaded: %d requests pending" depth) );
    ]

let drain_response t =
  t.requests <- t.requests + 1;
  t.drained <- t.drained + 1;
  respond ~id:None
    [
      ("ok", Json.Bool false);
      ("code", Json.Str "shutting_down");
      ("error", Json.Str "daemon is shutting down");
    ]

let outcome_response ~id oc =
  let code_field =
    match oc.oc_code with
    | Some c -> [ ("code", Json.Str (code_name c)) ]
    | None -> []
  in
  respond ~id
    ([
       ("op", Json.Str oc.oc_op);
       ("ok", Json.Bool (oc.oc_exit = 0));
       ("exit", Json.Int oc.oc_exit);
     ]
    @ code_field
    @ [
        ( "cache",
          Json.List
            (List.map
               (fun (path, key, state) ->
                 Json.Obj
                   [
                     ("path", Json.Str path);
                     ("key", Json.Str key);
                     ("state", Json.Str (Cache.state_name state));
                   ])
               oc.oc_cache) );
        ("output", Json.Str oc.oc_output);
        ("error", Json.Str oc.oc_error);
      ])

let stats_response t ~id =
  let c = Cache.stats t.cache in
  let a = Asl.Compiled.memo_stats () in
  respond ~id
    [
      ("op", Json.Str "stats");
      ("ok", Json.Bool true);
      ("exit", Json.Int 0);
      ("requests", Json.Int t.requests);
      ("protocol_errors", Json.Int t.protocol_errors);
      ( "serve",
        Json.Obj
          [
            ("completed", Json.Int t.completed);
            ("timeouts", Json.Int t.timeouts);
            ("resource_exhausted", Json.Int t.resource_exhausted);
            ("degradations", Json.Int t.degradations);
            ("sheds", Json.Int t.sheds);
            ("drained", Json.Int t.drained);
          ] );
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Int c.Cache.cs_entries);
            ("bytes", Json.Int c.Cache.cs_bytes);
            ("max_entries", Json.Int c.Cache.cs_max_entries);
            ("max_bytes", Json.Int c.Cache.cs_max_bytes);
            ("hits", Json.Int c.Cache.cs_hits);
            ("misses", Json.Int c.Cache.cs_misses);
            ("snap_refills", Json.Int c.Cache.cs_snap_refills);
            ("evictions", Json.Int c.Cache.cs_evictions);
            ("persisted", Json.Int c.Cache.cs_persisted);
            ("quarantined", Json.Int c.Cache.cs_quarantined);
          ] );
      ( "asl_memo",
        Json.Obj
          [
            ("guards", Json.Int a.Asl.Compiled.st_guards);
            ("programs", Json.Int a.Asl.Compiled.st_programs);
            ("cap", Json.Int a.Asl.Compiled.st_cap);
            ("hits", Json.Int a.Asl.Compiled.st_hits);
            ("misses", Json.Int a.Asl.Compiled.st_misses);
            ("evictions", Json.Int a.Asl.Compiled.st_evictions);
          ] );
    ]

(* The supervisor probe: protocol version, logical uptime (requests
   served so far — the daemon's only monotonic clock) and occupancy of
   both caches, cheap enough to answer under load. *)
let health_response t ~id =
  let c = Cache.stats t.cache in
  let a = Asl.Compiled.memo_stats () in
  respond ~id
    [
      ("op", Json.Str "health");
      ("ok", Json.Bool true);
      ("exit", Json.Int 0);
      ("protocol", Json.Int protocol_version);
      ("uptime_requests", Json.Int t.requests);
      ( "deadline_ms",
        Json.Int (Option.value t.deadline_ms ~default:0) );
      ("max_queue", Json.Int t.max_queue);
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Int c.Cache.cs_entries);
            ("bytes", Json.Int c.Cache.cs_bytes);
            ("max_entries", Json.Int c.Cache.cs_max_entries);
            ("max_bytes", Json.Int c.Cache.cs_max_bytes);
          ] );
      ( "asl_memo",
        Json.Obj
          [
            ("guards", Json.Int a.Asl.Compiled.st_guards);
            ("programs", Json.Int a.Asl.Compiled.st_programs);
            ("cap", Json.Int a.Asl.Compiled.st_cap);
          ] );
    ]

(* --- request processing ----------------------------------------------- *)

(* Ledger rule: every counter update happens before the response line
   is rendered, so a [stats] response reports a ledger that includes
   itself and always reconciles:
   requests = protocol_errors + completed + timeouts
            + resource_exhausted + sheds + drained. *)
let classify t oc =
  match oc.oc_code with
  | None -> t.completed <- t.completed + 1
  | Some C_timeout ->
    t.timeouts <- t.timeouts + 1;
    Telemetry.Metrics.incr t.m_timeout
  | Some C_resource_exhausted ->
    t.resource_exhausted <- t.resource_exhausted + 1

let handle_line t line =
  if String.length line > max_line_bytes then begin
    t.requests <- t.requests + 1;
    ( Some
        (protocol_error t ~id:None
           (Printf.sprintf "request line exceeds %d bytes" max_line_bytes)),
      true )
  end
  else
    let trimmed = String.trim line in
    if trimmed = "" then (None, true)
    else begin
      t.requests <- t.requests + 1;
      match Json.parse trimmed with
      | Error e ->
        (Some (protocol_error t ~id:None ("invalid request: " ^ e)), true)
      | Ok (Json.Obj members as obj) -> (
        match id_of obj with
        | Error msg -> (Some (protocol_error t ~id:None msg), true)
        | Ok id -> (
          match req_str obj "op" with
          | Error msg -> (Some (protocol_error t ~id msg), true)
          | Ok op -> (
            match dispatch t obj members ~op with
            | Error msg -> (Some (protocol_error t ~id msg), true)
            | Ok (Ran oc) ->
              classify t oc;
              (Some (outcome_response ~id oc), true)
            | Ok Stats ->
              t.completed <- t.completed + 1;
              (Some (stats_response t ~id), true)
            | Ok Health ->
              t.completed <- t.completed + 1;
              (Some (health_response t ~id), true)
            | Ok Quit ->
              t.completed <- t.completed + 1;
              ( Some
                  (respond ~id
                     [
                       ("op", Json.Str "quit");
                       ("ok", Json.Bool true);
                       ("exit", Json.Int 0);
                     ]),
                false )
            (* a bug below the protocol layer must not kill the daemon:
               answer an error line and keep serving *)
            | exception e ->
              ( Some
                  (protocol_error t ~id
                     ("internal error: " ^ Printexc.to_string e)),
                true ))))
      | Ok
          (( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
           | Json.Str _ | Json.List _ ) as _v) ->
        ( Some (protocol_error t ~id:None "request must be a JSON object"),
          true )
    end

(* --- transport: chunked line reader with a byte high-water mark ------- *)

(* A consumed input line.  Oversized lines are dropped as they stream
   in — the reader never buffers more than [max_line_bytes] (+ one
   chunk) per line — and surface as [L_oversized] so the protocol
   still answers exactly one error line for them. *)
type in_line =
  | L_line of string
  | L_oversized

type reader = {
  r_fd : Unix.file_descr;
  r_chunk : Bytes.t;
  r_acc : Buffer.t;  (* current partial line *)
  mutable r_discarding : bool;  (* past the byte high-water mark *)
  mutable r_eof : bool;
  r_lines : in_line Queue.t;  (* completed, not yet consumed *)
}

let reader_create fd =
  {
    r_fd = fd;
    r_chunk = Bytes.create 65536;
    r_acc = Buffer.create 256;
    r_discarding = false;
    r_eof = false;
    r_lines = Queue.create ();
  }

let reader_feed r bytes n =
  let finish_line () =
    if r.r_discarding then begin
      r.r_discarding <- false;
      Queue.push L_oversized r.r_lines
    end
    else begin
      Queue.push (L_line (Buffer.contents r.r_acc)) r.r_lines;
      Buffer.clear r.r_acc
    end
  in
  let i = ref 0 in
  while !i < n do
    match Bytes.index_from_opt bytes !i '\n' with
    | Some j when j < n ->
      if not r.r_discarding then begin
        Buffer.add_subbytes r.r_acc bytes !i (j - !i);
        if Buffer.length r.r_acc > max_line_bytes then begin
          r.r_discarding <- true;
          Buffer.clear r.r_acc
        end
      end;
      finish_line ();
      i := j + 1
    | Some _ | None ->
      if not r.r_discarding then begin
        Buffer.add_subbytes r.r_acc bytes !i (n - !i);
        if Buffer.length r.r_acc > max_line_bytes then begin
          r.r_discarding <- true;
          Buffer.clear r.r_acc
        end
      end;
      i := n
  done

(* One read(2).  [blocking = false] polls with select first and reads
   only if data is ready (regular files are always ready, so file-fed
   stdin drains deterministically).  EINTR — a signal landed — returns
   without data so the caller can re-check the stop flag. *)
let reader_fill r ~blocking =
  if r.r_eof then ()
  else
    let ready =
      if blocking then true
      else
        match Unix.select [ r.r_fd ] [] [] 0.0 with
        | [], _, _ -> false
        | _ :: _, _, _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if ready then
      match Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) with
      | 0 ->
        r.r_eof <- true;
        (* a final unterminated line still counts as a line *)
        if Buffer.length r.r_acc > 0 || r.r_discarding then begin
          if r.r_discarding then begin
            r.r_discarding <- false;
            Queue.push L_oversized r.r_lines
          end
          else begin
            Queue.push (L_line (Buffer.contents r.r_acc)) r.r_lines;
            Buffer.clear r.r_acc
          end
        end
      | n -> reader_feed r r.r_chunk n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* --- the loop --------------------------------------------------------- *)

let oversized_line = String.make (max_line_bytes + 1) 'x'

(* The serve loop over a raw fd pair.  One request is processed at a
   time; between requests every already-available input line is pulled
   into a bounded pending queue, and lines past [max_queue] are
   answered immediately with [overloaded] instead of buffering without
   bound.  A stop request (SIGTERM/SIGINT or [quit]) drains the
   pending queue with [shutting_down] answers so the one-response-per
   -line invariant survives shutdown.  Returns [true] when a [quit]
   request ended the session (as opposed to EOF or a stop signal). *)
let serve_fd t in_fd emit =
  let r = reader_create in_fd in
  let pending = Queue.create () in
  let quit_seen = ref false in
  (* move completed lines into [pending], shedding past the cap; blank
     lines are dropped here so they never consume a slot and never get
     an answer, overloaded or not *)
  let absorb () =
    while not (Queue.is_empty r.r_lines) do
      match Queue.pop r.r_lines with
      | L_line line when String.trim line = "" -> ()
      | (L_line _ | L_oversized) as item ->
        if Queue.length pending >= t.max_queue then
          emit (shed_response t ~depth:(Queue.length pending))
        else Queue.push item pending
    done
  in
  let drain_pending () =
    while not (Queue.is_empty pending) do
      match Queue.pop pending with
      | L_oversized | L_line _ -> emit (drain_response t)
    done
  in
  let stopping = ref false in
  while not !stopping do
    if stop_requested t then begin
      drain_pending ();
      stopping := true
    end
    else if Queue.is_empty pending then begin
      if r.r_eof then stopping := true
      else begin
        reader_fill r ~blocking:true;
        absorb ()
      end
    end
    else begin
      let continue =
        match Queue.pop pending with
        | L_oversized -> (
          (* re-enter the protocol path so oversized lines are counted
             and answered exactly like a buffered oversized line *)
          match handle_line t oversized_line with
          | Some resp, cont ->
            emit resp;
            cont
          | None, cont -> cont)
        | L_line line -> (
          match handle_line t line with
          | Some resp, cont ->
            emit resp;
            cont
          | None, cont -> cont)
      in
      if not continue then begin
        (* quit: answer everything already consumed, then stop *)
        quit_seen := true;
        drain_pending ();
        stopping := true
      end
      else begin
        (* opportunistic drain of whatever arrived while we worked *)
        reader_fill r ~blocking:false;
        absorb ()
      end
    end
  done;
  !quit_seen

let serve_channel t ic oc =
  let emit resp =
    output_string oc resp;
    output_char oc '\n';
    flush oc
  in
  let (_quit : bool) = serve_fd t (Unix.descr_of_in_channel ic) emit in
  ()

(* Probe-then-unlink: a leftover socket file from a crashed daemon must
   not block restart, but a live daemon's socket (or an unrelated
   file) must never be stolen.  Connecting distinguishes the two — a
   live listener accepts, a stale path refuses. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    (match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> ()
     | Unix.S_REG | Unix.S_DIR | Unix.S_CHR | Unix.S_BLK | Unix.S_LNK
     | Unix.S_FIFO ->
       failwith
         (Printf.sprintf "refusing to replace %s: not a socket" path));
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "socket %s is in use by a running daemon" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let serve_socket t path =
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let stop = ref false in
      while not !stop do
        if stop_requested t then stop := true
        else
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            (* signal landed while listening: loop re-checks the flag *)
            ()
          | conn, _addr ->
            let oc = Unix.out_channel_of_descr conn in
            let emit resp =
              output_string oc resp;
              output_char oc '\n';
              flush oc
            in
            (* a dropped connection only ends this client, not the
               daemon *)
            let quit =
              try serve_fd t conn emit with
              | Sys_error _ -> false
              | Unix.Unix_error _ -> false
            in
            (try flush oc with Sys_error _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ());
            (* [quit] (or a stop signal observed inside the session)
               stops the daemon, not just the connection *)
            if quit || stop_requested t then stop := true
      done)
