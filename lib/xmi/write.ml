open Uml

let el = Sxml.Doc.element
let id_attr id = ("xmi:id", Ident.to_string id)
let name_attr name = ("name", name)
let xtype ty = ("xmi:type", "uml:" ^ ty)

(* --- classifiers ----------------------------------------------------- *)

(* enum spellings are the canonical tables in {!Codec}, shared with
   {!Read} and the binary snapshot codec *)
let visibility_string = Codec.visibility_string
let direction_string = Codec.direction_string
let aggregation_string = Codec.aggregation_string

let property_xml tag (p : Classifier.property) =
  let attrs =
    [ id_attr p.Classifier.prop_id; name_attr p.Classifier.prop_name ]
    @ Codec.dtype_attrs "type" p.Classifier.prop_type
    @ Codec.mult_attrs p.Classifier.prop_mult
    @ (match p.Classifier.prop_default with
       | Some v -> Codec.vspec_attrs "default" v
       | None -> [])
    @ [ ("visibility", visibility_string p.Classifier.prop_visibility) ]
    @ Codec.bool_attr "isStatic" p.Classifier.prop_is_static
    @ Codec.bool_attr "isReadOnly" p.Classifier.prop_is_read_only
    @
    match p.Classifier.prop_aggregation with
    | Classifier.No_aggregation -> []
    | agg -> [ ("aggregation", aggregation_string agg) ]
  in
  el ~attrs tag []

let parameter_xml (p : Classifier.parameter) =
  let attrs =
    [ id_attr p.Classifier.param_id; name_attr p.Classifier.param_name ]
    @ Codec.dtype_attrs "type" p.Classifier.param_type
    @ [ ("direction", direction_string p.Classifier.param_direction) ]
    @
    match p.Classifier.param_default with
    | Some v -> Codec.vspec_attrs "default" v
    | None -> []
  in
  el ~attrs "ownedParameter" []

let operation_xml (o : Classifier.operation) =
  let attrs =
    [ id_attr o.Classifier.op_id; name_attr o.Classifier.op_name ]
    @ [ ("visibility", visibility_string o.Classifier.op_visibility) ]
    @ Codec.bool_attr "isQuery" o.Classifier.op_is_query
    @ Codec.bool_attr "isAbstract" o.Classifier.op_is_abstract
    @ Codec.opt_attr "body" o.Classifier.op_body
  in
  el ~attrs "ownedOperation" (List.map parameter_xml o.Classifier.op_params)

let classifier_kind_string = function
  | Classifier.Class -> "Class"
  | Classifier.Interface -> "Interface"
  | Classifier.Data_type -> "DataType"
  | Classifier.Primitive_type -> "PrimitiveType"
  | Classifier.Enumeration _ -> "Enumeration"
  | Classifier.Signal -> "Signal"
  | Classifier.Actor_kind -> "Actor"

let classifier_xml (c : Classifier.t) =
  let literal_children =
    match c.Classifier.cl_kind with
    | Classifier.Enumeration lits ->
      List.map (fun l -> el ~attrs:[ name_attr l ] "ownedLiteral" []) lits
    | Classifier.Class | Classifier.Interface | Classifier.Data_type
    | Classifier.Primitive_type | Classifier.Signal | Classifier.Actor_kind ->
      []
  in
  let refs tag ids =
    List.map (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] tag []) ids
  in
  let children =
    literal_children
    @ List.map (property_xml "ownedAttribute") c.Classifier.cl_attributes
    @ List.map operation_xml c.Classifier.cl_operations
    @ List.map
        (fun (r : Classifier.reception) ->
          el
            ~attrs:
              [
                id_attr r.Classifier.recv_id;
                ("signal", Ident.to_string r.Classifier.recv_signal);
              ]
            "ownedReception" [])
        c.Classifier.cl_receptions
    @ refs "generalization" c.Classifier.cl_generals
    @ refs "interfaceRealization" c.Classifier.cl_realized
    @ refs "ownedBehavior" c.Classifier.cl_behaviors
  in
  let attrs =
    [
      xtype (classifier_kind_string c.Classifier.cl_kind);
      id_attr c.Classifier.cl_id;
      name_attr c.Classifier.cl_name;
    ]
    @ Codec.bool_attr "isAbstract" c.Classifier.cl_is_abstract
    @ Codec.bool_attr "isActive" c.Classifier.cl_is_active
  in
  el ~attrs "packagedElement" children

let association_xml (a : Classifier.association) =
  let end_xml (e : Classifier.association_end) =
    el
      ~attrs:(Codec.bool_attr "navigable" e.Classifier.end_navigable)
      "memberEnd"
      [ property_xml "endProperty" e.Classifier.end_property ]
  in
  el
    ~attrs:
      [
        xtype "Association";
        id_attr a.Classifier.assoc_id;
        name_attr a.Classifier.assoc_name;
      ]
    "packagedElement"
    (List.map end_xml a.Classifier.assoc_ends)

(* --- packages -------------------------------------------------------- *)

let package_xml (p : Pkg.t) =
  let refs tag ids =
    List.map (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] tag []) ids
  in
  el
    ~attrs:[ xtype "Package"; id_attr p.Pkg.pkg_id; name_attr p.Pkg.pkg_name ]
    "packagedElement"
    (refs "ownedMember" p.Pkg.pkg_owned
    @ refs "nestedPackage" p.Pkg.pkg_subpackages
    @ refs "packageImport" p.Pkg.pkg_imports)

(* --- state machines --------------------------------------------------- *)

let pseudostate_kind_string = Codec.pseudostate_kind_string

let trigger_xml (tr : Smachine.trigger) =
  let attrs =
    match tr with
    | Smachine.Signal_trigger n -> [ ("kind", "signal"); ("event", n) ]
    | Smachine.Time_trigger d -> [ ("kind", "time"); ("after", string_of_int d) ]
    | Smachine.Any_trigger -> [ ("kind", "any") ]
    | Smachine.Completion -> [ ("kind", "completion") ]
  in
  el ~attrs "trigger" []

let transition_xml (t : Smachine.transition) =
  let kind = Codec.transition_kind_string t.Smachine.tr_kind in
  let attrs =
    [
      id_attr t.Smachine.tr_id;
      ("source", Ident.to_string t.Smachine.tr_source);
      ("target", Ident.to_string t.Smachine.tr_target);
      ("kind", kind);
    ]
    @ Codec.opt_attr "guard" t.Smachine.tr_guard
    @ Codec.opt_attr "effect" t.Smachine.tr_effect
  in
  el ~attrs "transition" (List.map trigger_xml t.Smachine.tr_triggers)

let rec region_xml (r : Smachine.region) =
  el
    ~attrs:[ id_attr r.Smachine.rg_id; name_attr r.Smachine.rg_name ]
    "region"
    (List.map vertex_xml r.Smachine.rg_vertices
    @ List.map transition_xml r.Smachine.rg_transitions)

and vertex_xml = function
  | Smachine.State s ->
    let attrs =
      [ xtype "State"; id_attr s.Smachine.st_id; name_attr s.Smachine.st_name ]
      @ Codec.opt_attr "entry" s.Smachine.st_entry
      @ Codec.opt_attr "exit" s.Smachine.st_exit
      @ Codec.opt_attr "doActivity" s.Smachine.st_do
    in
    el ~attrs "subvertex"
      (List.map
         (fun tr -> el "deferrableTrigger" [ trigger_xml tr ])
         s.Smachine.st_deferred
      @ List.map region_xml s.Smachine.st_regions)
  | Smachine.Pseudo p ->
    el
      ~attrs:
        [
          xtype "Pseudostate";
          id_attr p.Smachine.ps_id;
          name_attr p.Smachine.ps_name;
          ("kind", pseudostate_kind_string p.Smachine.ps_kind);
        ]
      "subvertex" []
  | Smachine.Final f ->
    el
      ~attrs:
        [ xtype "FinalState"; id_attr f.Smachine.fs_id;
          name_attr f.Smachine.fs_name ]
      "subvertex" []

let state_machine_xml (sm : Smachine.t) =
  let attrs =
    [ xtype "StateMachine"; id_attr sm.Smachine.sm_id;
      name_attr sm.Smachine.sm_name ]
    @
    match sm.Smachine.sm_context with
    | Some c -> [ ("context", Ident.to_string c) ]
    | None -> []
  in
  el ~attrs "packagedElement" (List.map region_xml sm.Smachine.sm_regions)

(* --- activities ------------------------------------------------------- *)

let activity_node_xml (n : Activityg.node) =
  let head kind extra children =
    let h =
      match n with
      | Activityg.Action a -> a.Activityg.act_head
      | Activityg.Call_behavior c -> c.Activityg.cb_head
      | Activityg.Send_signal e | Activityg.Accept_event e ->
        e.Activityg.ev_head
      | Activityg.Object_node o -> o.Activityg.on_head
      | Activityg.Initial_node h
      | Activityg.Activity_final h
      | Activityg.Flow_final h
      | Activityg.Fork_node h
      | Activityg.Join_node h
      | Activityg.Decision_node h
      | Activityg.Merge_node h ->
        h
    in
    el
      ~attrs:
        ([ xtype kind; id_attr h.Activityg.nd_id;
           name_attr h.Activityg.nd_name ]
        @ extra)
      "node" children
  in
  match n with
  | Activityg.Action a ->
    head "OpaqueAction" (Codec.opt_attr "body" a.Activityg.act_body) []
  | Activityg.Call_behavior c ->
    head "CallBehaviorAction"
      [ ("behavior", Ident.to_string c.Activityg.cb_behavior) ]
      []
  | Activityg.Send_signal e ->
    head "SendSignalAction" [ ("event", e.Activityg.ev_event) ] []
  | Activityg.Accept_event e ->
    head "AcceptEventAction" [ ("event", e.Activityg.ev_event) ] []
  | Activityg.Object_node o ->
    head "CentralBufferNode"
      (Codec.dtype_attrs "type" o.Activityg.on_type
      @
      match o.Activityg.on_upper_bound with
      | Some b -> [ ("upperBound", string_of_int b) ]
      | None -> [])
      []
  | Activityg.Initial_node _ -> head "InitialNode" [] []
  | Activityg.Activity_final _ -> head "ActivityFinalNode" [] []
  | Activityg.Flow_final _ -> head "FlowFinalNode" [] []
  | Activityg.Fork_node _ -> head "ForkNode" [] []
  | Activityg.Join_node _ -> head "JoinNode" [] []
  | Activityg.Decision_node _ -> head "DecisionNode" [] []
  | Activityg.Merge_node _ -> head "MergeNode" [] []

let activity_edge_xml (e : Activityg.edge) =
  let kind = Codec.edge_kind_string e.Activityg.ed_kind in
  let attrs =
    [
      xtype kind;
      id_attr e.Activityg.ed_id;
      ("source", Ident.to_string e.Activityg.ed_source);
      ("target", Ident.to_string e.Activityg.ed_target);
      ("weight", string_of_int e.Activityg.ed_weight);
    ]
    @ Codec.opt_attr "guard" e.Activityg.ed_guard
  in
  el ~attrs "edge" []

let activity_xml (a : Activityg.t) =
  let attrs =
    [ xtype "Activity"; id_attr a.Activityg.ac_id;
      name_attr a.Activityg.ac_name ]
    @
    match a.Activityg.ac_context with
    | Some c -> [ ("context", Ident.to_string c) ]
    | None -> []
  in
  el ~attrs "packagedElement"
    (List.map activity_node_xml a.Activityg.ac_nodes
    @ List.map activity_edge_xml a.Activityg.ac_edges)

(* --- interactions ------------------------------------------------------ *)

let message_sort_string = Codec.message_sort_string

let operator_attrs = function
  | Interaction.Alt -> [ ("operator", "alt") ]
  | Interaction.Opt -> [ ("operator", "opt") ]
  | Interaction.Loop (mn, mx) ->
    [ ("operator", "loop"); ("minint", string_of_int mn) ]
    @ (match mx with
       | Some m -> [ ("maxint", string_of_int m) ]
       | None -> [])
  | Interaction.Par -> [ ("operator", "par") ]
  | Interaction.Strict -> [ ("operator", "strict") ]
  | Interaction.Seq -> [ ("operator", "seq") ]
  | Interaction.Break -> [ ("operator", "break") ]
  | Interaction.Critical -> [ ("operator", "critical") ]
  | Interaction.Neg -> [ ("operator", "neg") ]
  | Interaction.Assert -> [ ("operator", "assert") ]
  | Interaction.Ignore names ->
    [ ("operator", "ignore"); ("messages", String.concat "," names) ]
  | Interaction.Consider names ->
    [ ("operator", "consider"); ("messages", String.concat "," names) ]

let rec interaction_element_xml = function
  | Interaction.Message m ->
    let attrs =
      [
        id_attr m.Interaction.msg_id;
        name_attr m.Interaction.msg_name;
        ("sort", message_sort_string m.Interaction.msg_sort);
        ("from", Ident.to_string m.Interaction.msg_from);
        ("to", Ident.to_string m.Interaction.msg_to);
      ]
    in
    el ~attrs "message"
      (List.map
         (fun v -> el ~attrs:(Codec.vspec_attrs "value" v) "argument" [])
         m.Interaction.msg_arguments)
  | Interaction.Fragment f ->
    el
      ~attrs:(id_attr f.Interaction.fr_id :: operator_attrs f.Interaction.fr_operator)
      "fragment"
      (List.map
         (fun (o : Interaction.operand) ->
           el
             ~attrs:
               (id_attr o.Interaction.opnd_id
               :: Codec.opt_attr "guard" o.Interaction.opnd_guard)
             "operand"
             (List.map interaction_element_xml o.Interaction.opnd_body))
         f.Interaction.fr_operands)

let interaction_xml (i : Interaction.t) =
  el
    ~attrs:
      [ xtype "Interaction"; id_attr i.Interaction.in_id;
        name_attr i.Interaction.in_name ]
    "packagedElement"
    (List.map
       (fun (l : Interaction.lifeline) ->
         el
           ~attrs:
             ([ id_attr l.Interaction.ll_id; name_attr l.Interaction.ll_name ]
             @
             match l.Interaction.ll_represents with
             | Some r -> [ ("represents", Ident.to_string r) ]
             | None -> [])
           "lifeline" [])
       i.Interaction.in_lifelines
    @ List.map interaction_element_xml i.Interaction.in_body)

(* --- use cases ---------------------------------------------------------- *)

let use_case_xml (u : Usecase.t) =
  let refs tag ids =
    List.map (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] tag []) ids
  in
  el
    ~attrs:
      ([ xtype "UseCase"; id_attr u.Usecase.uc_id; name_attr u.Usecase.uc_name ]
      @
      match u.Usecase.uc_subject with
      | Some s -> [ ("subject", Ident.to_string s) ]
      | None -> [])
    "packagedElement"
    (refs "actorRef" u.Usecase.uc_actors
    @ refs "include" u.Usecase.uc_includes
    @ List.map
        (fun (e : Usecase.extend) ->
          el
            ~attrs:
              (("extendedCase", Ident.to_string e.Usecase.ext_extended)
              :: Codec.opt_attr "condition" e.Usecase.ext_condition)
            "extend" [])
        u.Usecase.uc_extends)

(* --- components ---------------------------------------------------------- *)

let component_xml (c : Component.t) =
  let port_xml (p : Component.port) =
    let refs tag ids =
      List.map (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] tag []) ids
    in
    el
      ~attrs:
        ([ id_attr p.Component.port_id; name_attr p.Component.port_name ]
        @ Codec.bool_attr "isBehavior" p.Component.port_is_behavior)
      "ownedPort"
      (refs "provided" p.Component.port_provided
      @ refs "required" p.Component.port_required)
  in
  let part_xml (p : Component.part) =
    el
      ~attrs:
        ([
           id_attr p.Component.part_id;
           name_attr p.Component.part_name;
           ("type", Ident.to_string p.Component.part_type);
         ]
        @ Codec.mult_attrs p.Component.part_mult)
      "ownedPart" []
  in
  let connector_xml (conn : Component.connector) =
    let kind = Codec.connector_kind_string conn.Component.conn_kind in
    el
      ~attrs:
        [
          id_attr conn.Component.conn_id;
          name_attr conn.Component.conn_name;
          ("kind", kind);
        ]
      "ownedConnector"
      (List.map
         (fun (e : Component.connector_end) ->
           el
             ~attrs:
               (("port", Ident.to_string e.Component.cend_port)
               ::
               (match e.Component.cend_part with
                | Some p -> [ ("part", Ident.to_string p) ]
                | None -> []))
             "end" [])
         conn.Component.conn_ends)
  in
  let refs tag ids =
    List.map (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] tag []) ids
  in
  el
    ~attrs:
      [ xtype "Component"; id_attr c.Component.cmp_id;
        name_attr c.Component.cmp_name ]
    "packagedElement"
    (List.map port_xml c.Component.cmp_ports
    @ List.map part_xml c.Component.cmp_parts
    @ List.map connector_xml c.Component.cmp_connectors
    @ refs "realization" c.Component.cmp_realizations
    @ refs "ownedBehavior" c.Component.cmp_behaviors)

(* --- instances ----------------------------------------------------------- *)

let instance_xml (i : Instance.t) =
  el
    ~attrs:
      ([ xtype "InstanceSpecification"; id_attr i.Instance.inst_id;
         name_attr i.Instance.inst_name ]
      @
      match i.Instance.inst_classifier with
      | Some c -> [ ("classifier", Ident.to_string c) ]
      | None -> [])
    "packagedElement"
    (List.map
       (fun (s : Instance.slot) ->
         el
           ~attrs:[ ("feature", s.Instance.slot_feature) ]
           "slot"
           (List.map
              (fun v -> el ~attrs:(Codec.vspec_attrs "value" v) "value" [])
              s.Instance.slot_values))
       i.Instance.inst_slots)

let link_xml (l : Instance.link) =
  let e1, e2 = l.Instance.link_ends in
  el
    ~attrs:
      ([
         xtype "Link";
         id_attr l.Instance.link_id;
         ("end1", Ident.to_string e1);
         ("end2", Ident.to_string e2);
       ]
      @
      match l.Instance.link_association with
      | Some a -> [ ("association", Ident.to_string a) ]
      | None -> [])
    "packagedElement" []

(* --- deployments ----------------------------------------------------------- *)

let node_kind_string = Codec.node_kind_string

let deployment_node_xml (n : Deployment.node) =
  el
    ~attrs:
      [ xtype (node_kind_string n.Deployment.dn_kind);
        id_attr n.Deployment.dn_id; name_attr n.Deployment.dn_name ]
    "packagedElement"
    (List.map
       (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] "nestedNode" [])
       n.Deployment.dn_nested)

let artifact_xml (a : Deployment.artifact) =
  el
    ~attrs:
      [ xtype "Artifact"; id_attr a.Deployment.art_id;
        name_attr a.Deployment.art_name ]
    "packagedElement"
    (List.map
       (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] "manifestation" [])
       a.Deployment.art_manifests)

let deployment_xml (d : Deployment.deployment) =
  el
    ~attrs:
      [
        xtype "Deployment";
        id_attr d.Deployment.dep_id;
        ("artifact", Ident.to_string d.Deployment.dep_artifact);
        ("target", Ident.to_string d.Deployment.dep_target);
      ]
    "packagedElement" []

let communication_path_xml (c : Deployment.communication_path) =
  let n1, n2 = c.Deployment.cpath_ends in
  el
    ~attrs:
      [
        xtype "CommunicationPath";
        id_attr c.Deployment.cpath_id;
        ("end1", Ident.to_string n1);
        ("end2", Ident.to_string n2);
      ]
    "packagedElement" []

(* --- profiles ----------------------------------------------------------- *)

let metaclass_string = Codec.metaclass_string

let profile_xml (p : Profile.t) =
  el
    ~attrs:
      [ xtype "Profile"; id_attr p.Profile.prof_id;
        name_attr p.Profile.prof_name ]
    "packagedElement"
    (List.map
       (fun (s : Profile.stereotype) ->
         el
           ~attrs:[ id_attr s.Profile.ster_id; name_attr s.Profile.ster_name ]
           "ownedStereotype"
           (List.map
              (fun mc ->
                el ~attrs:[ ("metaclass", metaclass_string mc) ] "extension" [])
              s.Profile.ster_extends
           @ List.map
               (fun (t : Profile.tag_definition) ->
                 el
                   ~attrs:
                     ([ name_attr t.Profile.tag_name ]
                     @ Codec.dtype_attrs "type" t.Profile.tag_type
                     @
                     match t.Profile.tag_default with
                     | Some v -> Codec.vspec_attrs "default" v
                     | None -> [])
                   "tagDefinition" [])
               s.Profile.ster_tags))
       p.Profile.prof_stereotypes)

(* --- top level ------------------------------------------------------------- *)

let element_xml = function
  | Model.E_classifier c -> classifier_xml c
  | Model.E_association a -> association_xml a
  | Model.E_package p -> package_xml p
  | Model.E_state_machine sm -> state_machine_xml sm
  | Model.E_activity a -> activity_xml a
  | Model.E_interaction i -> interaction_xml i
  | Model.E_use_case u -> use_case_xml u
  | Model.E_component c -> component_xml c
  | Model.E_instance i -> instance_xml i
  | Model.E_link l -> link_xml l
  | Model.E_deployment_node n -> deployment_node_xml n
  | Model.E_artifact a -> artifact_xml a
  | Model.E_deployment d -> deployment_xml d
  | Model.E_communication_path c -> communication_path_xml c
  | Model.E_profile p -> profile_xml p

let application_xml (a : Profile.application) =
  el
    ~attrs:
      [
        ("element", Ident.to_string a.Profile.app_element);
        ("stereotype", Ident.to_string a.Profile.app_stereotype);
      ]
    "stereotypeApplication"
    (List.map
       (fun (name, v) ->
         el ~attrs:(name_attr name :: Codec.vspec_attrs "value" v) "tagValue" [])
       a.Profile.app_values)

let diagram_kind_string = Codec.diagram_kind_string

let diagram_xml (d : Diagram.t) =
  el
    ~attrs:
      [
        id_attr d.Diagram.dg_id;
        name_attr d.Diagram.dg_name;
        ("kind", diagram_kind_string d.Diagram.dg_kind);
      ]
    "diagram"
    (List.map
       (fun i -> el ~attrs:[ ("ref", Ident.to_string i) ] "elementRef" [])
       d.Diagram.dg_elements)

let to_xml m =
  let model_el =
    el
      ~attrs:[ ("name", Model.name m) ]
      "uml:Model"
      (List.map element_xml (Model.elements m))
  in
  let applications =
    el "applications" (List.map application_xml (Model.applications m))
  in
  let diagrams = el "diagrams" (List.map diagram_xml (Model.diagrams m)) in
  el
    ~attrs:
      [
        ("xmlns:xmi", "http://schema.omg.org/spec/XMI/2.1");
        ("xmlns:uml", "http://schema.omg.org/spec/UML/2.0");
        ("xmi:version", "2.1");
      ]
    "xmi:XMI"
    [ model_el; applications; diagrams ]

let to_string m = Sxml.Doc.to_string (to_xml m) ^ "\n"

let write_file m path =
  let oc = open_out path in
  (match output_string oc (to_string m) with
   | () -> close_out oc
   | exception e ->
     close_out_noerr oc;
     raise e)
