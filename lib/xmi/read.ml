open Uml

exception Import_error of string

let import_error fmt = Printf.ksprintf (fun m -> raise (Import_error m)) fmt

let id_of e = Ident.of_string (Codec.get_attr e "xmi:id")
let name_of e = Codec.get_attr e "name"
let ref_of e = Ident.of_string (Codec.get_attr e "ref")

let xmi_type e =
  match Sxml.Doc.attr e "xmi:type" with
  | Some t when String.length t > 4 && String.sub t 0 4 = "uml:" ->
    String.sub t 4 (String.length t - 4)
  | Some t -> t
  | None -> import_error "<%s> missing xmi:type" e.Sxml.Doc.tag

(* --- classifiers ----------------------------------------------------- *)

(* enum spellings come from the canonical tables in {!Codec}; unknown
   strings raise [Codec.Decode_error], surfaced as [Import_error] by
   [model_of_string] *)
let visibility_of = Codec.visibility_of_string
let direction_of = Codec.direction_of_string

let aggregation_of e =
  match Sxml.Doc.attr e "aggregation" with
  | None -> Classifier.No_aggregation
  | Some s -> Codec.aggregation_of_string s

let property_of e =
  {
    Classifier.prop_id = id_of e;
    prop_name = name_of e;
    prop_type = Codec.dtype_of_attrs "type" e;
    prop_mult = Codec.mult_of_attrs e;
    prop_default = Codec.vspec_of_attrs "default" e;
    prop_visibility =
      (match Sxml.Doc.attr e "visibility" with
       | Some v -> visibility_of v
       | None -> Classifier.Public);
    prop_is_static = Codec.get_bool e "isStatic";
    prop_is_read_only = Codec.get_bool e "isReadOnly";
    prop_aggregation = aggregation_of e;
  }

let parameter_of e =
  {
    Classifier.param_id = id_of e;
    param_name = name_of e;
    param_type = Codec.dtype_of_attrs "type" e;
    param_direction =
      (match Sxml.Doc.attr e "direction" with
       | Some d -> direction_of d
       | None -> Classifier.In);
    param_default = Codec.vspec_of_attrs "default" e;
  }

let operation_of e =
  {
    Classifier.op_id = id_of e;
    op_name = name_of e;
    op_params = List.map parameter_of (Sxml.Doc.find_children e "ownedParameter");
    op_visibility =
      (match Sxml.Doc.attr e "visibility" with
       | Some v -> visibility_of v
       | None -> Classifier.Public);
    op_is_query = Codec.get_bool e "isQuery";
    op_is_abstract = Codec.get_bool e "isAbstract";
    op_body = Codec.get_opt e "body";
  }

let refs_of e tag = List.map ref_of (Sxml.Doc.find_children e tag)

let classifier_of kind e =
  let cl_kind =
    match kind with
    | "Class" -> Classifier.Class
    | "Interface" -> Classifier.Interface
    | "DataType" -> Classifier.Data_type
    | "PrimitiveType" -> Classifier.Primitive_type
    | "Enumeration" ->
      Classifier.Enumeration
        (List.map name_of (Sxml.Doc.find_children e "ownedLiteral"))
    | "Signal" -> Classifier.Signal
    | "Actor" -> Classifier.Actor_kind
    | other -> import_error "unknown classifier kind %s" other
  in
  {
    Classifier.cl_id = id_of e;
    cl_name = name_of e;
    cl_kind;
    cl_is_abstract = Codec.get_bool e "isAbstract";
    cl_is_active = Codec.get_bool e "isActive";
    cl_attributes =
      List.map property_of (Sxml.Doc.find_children e "ownedAttribute");
    cl_operations =
      List.map operation_of (Sxml.Doc.find_children e "ownedOperation");
    cl_receptions =
      List.map
        (fun r ->
          {
            Classifier.recv_id = id_of r;
            recv_signal = Ident.of_string (Codec.get_attr r "signal");
          })
        (Sxml.Doc.find_children e "ownedReception");
    cl_generals = refs_of e "generalization";
    cl_realized = refs_of e "interfaceRealization";
    cl_behaviors = refs_of e "ownedBehavior";
  }

let association_of e =
  let end_of en =
    let prop =
      match Sxml.Doc.find_child en "endProperty" with
      | Some p -> property_of p
      | None -> import_error "memberEnd without endProperty"
    in
    {
      Classifier.end_property = prop;
      end_navigable = Codec.get_bool en "navigable";
    }
  in
  {
    Classifier.assoc_id = id_of e;
    assoc_name = name_of e;
    assoc_ends = List.map end_of (Sxml.Doc.find_children e "memberEnd");
  }

let package_of e =
  {
    Pkg.pkg_id = id_of e;
    pkg_name = name_of e;
    pkg_owned = refs_of e "ownedMember";
    pkg_subpackages = refs_of e "nestedPackage";
    pkg_imports = refs_of e "packageImport";
  }

(* --- state machines --------------------------------------------------- *)

let pseudostate_kind_of = Codec.pseudostate_kind_of_string

let trigger_of e =
  match Codec.get_attr e "kind" with
  | "signal" -> Smachine.Signal_trigger (Codec.get_attr e "event")
  | "time" -> Smachine.Time_trigger (Codec.get_int e "after")
  | "any" -> Smachine.Any_trigger
  | "completion" -> Smachine.Completion
  | other -> import_error "unknown trigger kind %s" other

let transition_of e =
  {
    Smachine.tr_id = id_of e;
    tr_source = Ident.of_string (Codec.get_attr e "source");
    tr_target = Ident.of_string (Codec.get_attr e "target");
    tr_triggers = List.map trigger_of (Sxml.Doc.find_children e "trigger");
    tr_guard = Codec.get_opt e "guard";
    tr_effect = Codec.get_opt e "effect";
    tr_kind =
      (match Sxml.Doc.attr e "kind" with
       | Some k -> Codec.transition_kind_of_string k
       | None -> Smachine.External);
  }

let rec region_of e =
  {
    Smachine.rg_id = id_of e;
    rg_name = name_of e;
    rg_vertices = List.map vertex_of (Sxml.Doc.find_children e "subvertex");
    rg_transitions =
      List.map transition_of (Sxml.Doc.find_children e "transition");
  }

and vertex_of e =
  match xmi_type e with
  | "State" ->
    let deferred =
      List.concat_map
        (fun d -> List.map trigger_of (Sxml.Doc.find_children d "trigger"))
        (Sxml.Doc.find_children e "deferrableTrigger")
    in
    Smachine.State
      {
        Smachine.st_id = id_of e;
        st_name = name_of e;
        st_regions = List.map region_of (Sxml.Doc.find_children e "region");
        st_entry = Codec.get_opt e "entry";
        st_exit = Codec.get_opt e "exit";
        st_do = Codec.get_opt e "doActivity";
        st_deferred = deferred;
      }
  | "Pseudostate" ->
    Smachine.Pseudo
      {
        Smachine.ps_id = id_of e;
        ps_name = name_of e;
        ps_kind = pseudostate_kind_of (Codec.get_attr e "kind");
      }
  | "FinalState" ->
    Smachine.Final { Smachine.fs_id = id_of e; fs_name = name_of e }
  | other -> import_error "unknown vertex type %s" other

let state_machine_of e =
  {
    Smachine.sm_id = id_of e;
    sm_name = name_of e;
    sm_regions = List.map region_of (Sxml.Doc.find_children e "region");
    sm_context = Option.map Ident.of_string (Codec.get_opt e "context");
  }

(* --- activities ------------------------------------------------------- *)

let activity_node_of e =
  let head = { Activityg.nd_id = id_of e; nd_name = name_of e } in
  match xmi_type e with
  | "OpaqueAction" ->
    Activityg.Action
      { Activityg.act_head = head; act_body = Codec.get_opt e "body" }
  | "CallBehaviorAction" ->
    Activityg.Call_behavior
      {
        Activityg.cb_head = head;
        cb_behavior = Ident.of_string (Codec.get_attr e "behavior");
      }
  | "SendSignalAction" ->
    Activityg.Send_signal
      { Activityg.ev_head = head; ev_event = Codec.get_attr e "event" }
  | "AcceptEventAction" ->
    Activityg.Accept_event
      { Activityg.ev_head = head; ev_event = Codec.get_attr e "event" }
  | "CentralBufferNode" ->
    Activityg.Object_node
      {
        Activityg.on_head = head;
        on_type = Codec.dtype_of_attrs "type" e;
        on_upper_bound = Codec.get_int_opt e "upperBound";
      }
  | "InitialNode" -> Activityg.Initial_node head
  | "ActivityFinalNode" -> Activityg.Activity_final head
  | "FlowFinalNode" -> Activityg.Flow_final head
  | "ForkNode" -> Activityg.Fork_node head
  | "JoinNode" -> Activityg.Join_node head
  | "DecisionNode" -> Activityg.Decision_node head
  | "MergeNode" -> Activityg.Merge_node head
  | other -> import_error "unknown activity node type %s" other

let activity_edge_of e =
  {
    Activityg.ed_id = id_of e;
    ed_source = Ident.of_string (Codec.get_attr e "source");
    ed_target = Ident.of_string (Codec.get_attr e "target");
    ed_guard = Codec.get_opt e "guard";
    ed_weight =
      (match Codec.get_int_opt e "weight" with
       | Some w -> w
       | None -> 1);
    ed_kind = Codec.edge_kind_of_string (xmi_type e);
  }

let activity_of e =
  {
    Activityg.ac_id = id_of e;
    ac_name = name_of e;
    ac_nodes = List.map activity_node_of (Sxml.Doc.find_children e "node");
    ac_edges = List.map activity_edge_of (Sxml.Doc.find_children e "edge");
    ac_context = Option.map Ident.of_string (Codec.get_opt e "context");
  }

(* --- interactions ------------------------------------------------------ *)

let message_sort_of = Codec.message_sort_of_string

let operator_of e =
  let names () =
    match Codec.get_opt e "messages" with
    | Some "" | None -> []
    | Some s -> String.split_on_char ',' s
  in
  match Codec.get_attr e "operator" with
  | "alt" -> Interaction.Alt
  | "opt" -> Interaction.Opt
  | "loop" ->
    Interaction.Loop (Codec.get_int e "minint", Codec.get_int_opt e "maxint")
  | "par" -> Interaction.Par
  | "strict" -> Interaction.Strict
  | "seq" -> Interaction.Seq
  | "break" -> Interaction.Break
  | "critical" -> Interaction.Critical
  | "neg" -> Interaction.Neg
  | "assert" -> Interaction.Assert
  | "ignore" -> Interaction.Ignore (names ())
  | "consider" -> Interaction.Consider (names ())
  | other -> import_error "unknown interaction operator %s" other

let rec interaction_element_of e =
  match e.Sxml.Doc.tag with
  | "message" ->
    Interaction.Message
      {
        Interaction.msg_id = id_of e;
        msg_name = name_of e;
        msg_sort = message_sort_of (Codec.get_attr e "sort");
        msg_from = Ident.of_string (Codec.get_attr e "from");
        msg_to = Ident.of_string (Codec.get_attr e "to");
        msg_arguments =
          List.filter_map
            (fun a -> Codec.vspec_of_attrs "value" a)
            (Sxml.Doc.find_children e "argument");
      }
  | "fragment" ->
    Interaction.Fragment
      {
        Interaction.fr_id = id_of e;
        fr_operator = operator_of e;
        fr_operands =
          List.map
            (fun o ->
              {
                Interaction.opnd_id = id_of o;
                opnd_guard = Codec.get_opt o "guard";
                opnd_body =
                  List.map interaction_element_of (Sxml.Doc.child_elements o);
              })
            (Sxml.Doc.find_children e "operand");
      }
  | other -> import_error "unknown interaction element <%s>" other

let interaction_of e =
  let body_elements =
    List.filter
      (fun c -> c.Sxml.Doc.tag = "message" || c.Sxml.Doc.tag = "fragment")
      (Sxml.Doc.child_elements e)
  in
  {
    Interaction.in_id = id_of e;
    in_name = name_of e;
    in_lifelines =
      List.map
        (fun l ->
          {
            Interaction.ll_id = id_of l;
            ll_name = name_of l;
            ll_represents =
              Option.map Ident.of_string (Codec.get_opt l "represents");
          })
        (Sxml.Doc.find_children e "lifeline");
    in_body = List.map interaction_element_of body_elements;
  }

(* --- use cases ---------------------------------------------------------- *)

let use_case_of e =
  {
    Usecase.uc_id = id_of e;
    uc_name = name_of e;
    uc_subject = Option.map Ident.of_string (Codec.get_opt e "subject");
    uc_actors = refs_of e "actorRef";
    uc_includes = refs_of e "include";
    uc_extends =
      List.map
        (fun x ->
          {
            Usecase.ext_extended =
              Ident.of_string (Codec.get_attr x "extendedCase");
            ext_condition = Codec.get_opt x "condition";
          })
        (Sxml.Doc.find_children e "extend");
  }

(* --- components ---------------------------------------------------------- *)

let component_of e =
  let port_of p =
    {
      Component.port_id = id_of p;
      port_name = name_of p;
      port_provided = refs_of p "provided";
      port_required = refs_of p "required";
      port_is_behavior = Codec.get_bool p "isBehavior";
    }
  in
  let part_of p =
    {
      Component.part_id = id_of p;
      part_name = name_of p;
      part_type = Ident.of_string (Codec.get_attr p "type");
      part_mult = Codec.mult_of_attrs p;
    }
  in
  let connector_of c =
    {
      Component.conn_id = id_of c;
      conn_name = name_of c;
      conn_kind = Codec.connector_kind_of_string (Codec.get_attr c "kind");
      conn_ends =
        List.map
          (fun en ->
            {
              Component.cend_part =
                Option.map Ident.of_string (Codec.get_opt en "part");
              cend_port = Ident.of_string (Codec.get_attr en "port");
            })
          (Sxml.Doc.find_children c "end");
    }
  in
  {
    Component.cmp_id = id_of e;
    cmp_name = name_of e;
    cmp_ports = List.map port_of (Sxml.Doc.find_children e "ownedPort");
    cmp_parts = List.map part_of (Sxml.Doc.find_children e "ownedPart");
    cmp_connectors =
      List.map connector_of (Sxml.Doc.find_children e "ownedConnector");
    cmp_realizations = refs_of e "realization";
    cmp_behaviors = refs_of e "ownedBehavior";
  }

(* --- instances ----------------------------------------------------------- *)

let instance_of e =
  {
    Instance.inst_id = id_of e;
    inst_name = name_of e;
    inst_classifier =
      Option.map Ident.of_string (Codec.get_opt e "classifier");
    inst_slots =
      List.map
        (fun s ->
          {
            Instance.slot_feature = Codec.get_attr s "feature";
            slot_values =
              List.filter_map
                (fun v -> Codec.vspec_of_attrs "value" v)
                (Sxml.Doc.find_children s "value");
          })
        (Sxml.Doc.find_children e "slot");
  }

let link_of e =
  {
    Instance.link_id = id_of e;
    link_association =
      Option.map Ident.of_string (Codec.get_opt e "association");
    link_ends =
      ( Ident.of_string (Codec.get_attr e "end1"),
        Ident.of_string (Codec.get_attr e "end2") );
  }

(* --- deployments ----------------------------------------------------------- *)

let deployment_node_of kind e =
  {
    Deployment.dn_id = id_of e;
    dn_name = name_of e;
    dn_kind = Codec.node_kind_of_string kind;
    dn_nested = refs_of e "nestedNode";
  }

let artifact_of e =
  {
    Deployment.art_id = id_of e;
    art_name = name_of e;
    art_manifests = refs_of e "manifestation";
  }

let deployment_of e =
  {
    Deployment.dep_id = id_of e;
    dep_artifact = Ident.of_string (Codec.get_attr e "artifact");
    dep_target = Ident.of_string (Codec.get_attr e "target");
  }

let communication_path_of e =
  {
    Deployment.cpath_id = id_of e;
    cpath_ends =
      ( Ident.of_string (Codec.get_attr e "end1"),
        Ident.of_string (Codec.get_attr e "end2") );
  }

(* --- profiles ----------------------------------------------------------- *)

let metaclass_of = Codec.metaclass_of_string

let profile_of e =
  {
    Profile.prof_id = id_of e;
    prof_name = name_of e;
    prof_stereotypes =
      List.map
        (fun s ->
          {
            Profile.ster_id = id_of s;
            ster_name = name_of s;
            ster_extends =
              List.map
                (fun x -> metaclass_of (Codec.get_attr x "metaclass"))
                (Sxml.Doc.find_children s "extension");
            ster_tags =
              List.map
                (fun t ->
                  {
                    Profile.tag_name = name_of t;
                    tag_type = Codec.dtype_of_attrs "type" t;
                    tag_default = Codec.vspec_of_attrs "default" t;
                  })
                (Sxml.Doc.find_children s "tagDefinition");
          })
        (Sxml.Doc.find_children e "ownedStereotype");
  }

(* --- top level ------------------------------------------------------------- *)

let element_of e =
  match xmi_type e with
  | ("Class" | "Interface" | "DataType" | "PrimitiveType" | "Enumeration"
    | "Signal" | "Actor") as k ->
    Model.E_classifier (classifier_of k e)
  | "Association" -> Model.E_association (association_of e)
  | "Package" -> Model.E_package (package_of e)
  | "StateMachine" -> Model.E_state_machine (state_machine_of e)
  | "Activity" -> Model.E_activity (activity_of e)
  | "Interaction" -> Model.E_interaction (interaction_of e)
  | "UseCase" -> Model.E_use_case (use_case_of e)
  | "Component" -> Model.E_component (component_of e)
  | "InstanceSpecification" -> Model.E_instance (instance_of e)
  | "Link" -> Model.E_link (link_of e)
  | ("Node" | "Device" | "ExecutionEnvironment") as k ->
    Model.E_deployment_node (deployment_node_of k e)
  | "Artifact" -> Model.E_artifact (artifact_of e)
  | "Deployment" -> Model.E_deployment (deployment_of e)
  | "CommunicationPath" ->
    Model.E_communication_path (communication_path_of e)
  | "Profile" -> Model.E_profile (profile_of e)
  | other -> import_error "unknown element type uml:%s" other

let application_of e =
  {
    Profile.app_element = Ident.of_string (Codec.get_attr e "element");
    app_stereotype = Ident.of_string (Codec.get_attr e "stereotype");
    app_values =
      List.map
        (fun t ->
          let v =
            match Codec.vspec_of_attrs "value" t with
            | Some v -> v
            | None -> import_error "tagValue without value"
          in
          (name_of t, v))
        (Sxml.Doc.find_children e "tagValue");
  }

let diagram_kind_of = Codec.diagram_kind_of_string

let diagram_of e =
  {
    Diagram.dg_id = id_of e;
    dg_name = name_of e;
    dg_kind = diagram_kind_of (Codec.get_attr e "kind");
    dg_elements = refs_of e "elementRef";
  }

let of_xml doc =
  let root =
    match doc with
    | Sxml.Doc.Element e when e.Sxml.Doc.tag = "xmi:XMI" -> e
    | Sxml.Doc.Element e -> import_error "expected <xmi:XMI>, got <%s>" e.Sxml.Doc.tag
    | Sxml.Doc.Text _ -> import_error "expected an element"
  in
  let model_el =
    match Sxml.Doc.find_child root "uml:Model" with
    | Some e -> e
    | None -> import_error "missing <uml:Model>"
  in
  let m = Model.create (Codec.get_attr model_el "name") in
  List.iter
    (fun e ->
      if e.Sxml.Doc.tag = "packagedElement" then Model.add m (element_of e))
    (Sxml.Doc.child_elements model_el);
  (match Sxml.Doc.find_child root "applications" with
   | Some apps ->
     List.iter
       (fun a -> Model.add_application m (application_of a))
       (Sxml.Doc.find_children apps "stereotypeApplication")
   | None -> ());
  (match Sxml.Doc.find_child root "diagrams" with
   | Some ds ->
     List.iter
       (fun d -> Model.add_diagram m (diagram_of d))
       (Sxml.Doc.find_children ds "diagram")
   | None -> ());
  m

let model_of_string s =
  match Sxml.Parse.parse_string s with
  | doc -> (
    match of_xml doc with
    | m -> m
    | exception Codec.Decode_error msg -> raise (Import_error msg))
  | exception exn -> (
    match Sxml.Parse.error_message exn with
    | Some m -> raise (Import_error m)
    | None -> raise exn)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  model_of_string s
