exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let bool_attr name b = if b then [ (name, "true") ] else []

let opt_attr name = function
  | Some v -> [ (name, v) ]
  | None -> []

let int_attr name i = [ (name, string_of_int i) ]

let vspec_attrs prefix (v : Uml.Vspec.t) =
  let kind = prefix ^ "Kind" in
  match v with
  | Uml.Vspec.Int_literal i -> [ (kind, "int"); (prefix, string_of_int i) ]
  | Uml.Vspec.Real_literal r -> [ (kind, "real"); (prefix, string_of_float r) ]
  | Uml.Vspec.Bool_literal b -> [ (kind, "bool"); (prefix, string_of_bool b) ]
  | Uml.Vspec.String_literal s -> [ (kind, "string"); (prefix, s) ]
  | Uml.Vspec.Enum_literal s -> [ (kind, "enum"); (prefix, s) ]
  | Uml.Vspec.Null_literal -> [ (kind, "null") ]
  | Uml.Vspec.Opaque_expression s -> [ (kind, "opaque"); (prefix, s) ]

let vspec_of_attrs prefix e =
  let kind = prefix ^ "Kind" in
  match Sxml.Doc.attr e kind with
  | None -> None
  | Some k -> (
    let payload () =
      match Sxml.Doc.attr e prefix with
      | Some p -> p
      | None -> decode_error "missing %s payload for kind %s" prefix k
    in
    match k with
    | "int" -> (
      match int_of_string_opt (payload ()) with
      | Some i -> Some (Uml.Vspec.Int_literal i)
      | None -> decode_error "bad int literal %s" (payload ()))
    | "real" -> (
      match float_of_string_opt (payload ()) with
      | Some r -> Some (Uml.Vspec.Real_literal r)
      | None -> decode_error "bad real literal %s" (payload ()))
    | "bool" -> (
      match payload () with
      | "true" -> Some (Uml.Vspec.Bool_literal true)
      | "false" -> Some (Uml.Vspec.Bool_literal false)
      | other -> decode_error "bad bool literal %s" other)
    | "string" -> Some (Uml.Vspec.String_literal (payload ()))
    | "enum" -> Some (Uml.Vspec.Enum_literal (payload ()))
    | "null" -> Some Uml.Vspec.Null_literal
    | "opaque" -> Some (Uml.Vspec.Opaque_expression (payload ()))
    | other -> decode_error "unknown value kind %s" other)

let dtype_attrs name (ty : Uml.Dtype.t) =
  let kind = name ^ "Kind" in
  match ty with
  | Uml.Dtype.Boolean -> [ (kind, "Boolean") ]
  | Uml.Dtype.Integer -> [ (kind, "Integer") ]
  | Uml.Dtype.Real -> [ (kind, "Real") ]
  | Uml.Dtype.Unlimited_natural -> [ (kind, "UnlimitedNatural") ]
  | Uml.Dtype.String_type -> [ (kind, "String") ]
  | Uml.Dtype.Void -> []
  | Uml.Dtype.Ref id -> [ (kind, "ref"); (name, Uml.Ident.to_string id) ]

let dtype_of_attrs name e =
  let kind = name ^ "Kind" in
  match Sxml.Doc.attr e kind with
  | None -> Uml.Dtype.Void
  | Some "Boolean" -> Uml.Dtype.Boolean
  | Some "Integer" -> Uml.Dtype.Integer
  | Some "Real" -> Uml.Dtype.Real
  | Some "UnlimitedNatural" -> Uml.Dtype.Unlimited_natural
  | Some "String" -> Uml.Dtype.String_type
  | Some "ref" -> (
    match Sxml.Doc.attr e name with
    | Some id -> Uml.Dtype.Ref (Uml.Ident.of_string id)
    | None -> decode_error "type ref without target")
  | Some other -> decode_error "unknown type kind %s" other

let mult_attrs (m : Uml.Mult.t) =
  let upper =
    match m.Uml.Mult.upper with
    | Uml.Mult.Bounded n -> string_of_int n
    | Uml.Mult.Unbounded -> "*"
  in
  [ ("lower", string_of_int m.Uml.Mult.lower); ("upper", upper) ]

let mult_of_attrs e =
  match Sxml.Doc.attr e "lower", Sxml.Doc.attr e "upper" with
  | Some lo, Some up -> (
    let lower =
      match int_of_string_opt lo with
      | Some l -> l
      | None -> decode_error "bad multiplicity lower %s" lo
    in
    match up with
    | "*" -> { Uml.Mult.lower; upper = Uml.Mult.Unbounded }
    | n -> (
      match int_of_string_opt n with
      | Some u -> { Uml.Mult.lower; upper = Uml.Mult.Bounded u }
      | None -> decode_error "bad multiplicity upper %s" n))
  | _missing1, _missing2 -> Uml.Mult.one

let get_attr e name =
  match Sxml.Doc.attr e name with
  | Some v -> v
  | None -> decode_error "element <%s> missing attribute %s" e.Sxml.Doc.tag name

let get_bool e name =
  match Sxml.Doc.attr e name with
  | Some "true" -> true
  | Some "false" | None -> false
  | Some other -> decode_error "bad boolean attribute %s=%s" name other

let get_int e name =
  match int_of_string_opt (get_attr e name) with
  | Some i -> i
  | None -> decode_error "bad integer attribute %s" name

let get_int_opt e name =
  match Sxml.Doc.attr e name with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Some i
    | None -> decode_error "bad integer attribute %s=%s" name v)

let get_opt e name = Sxml.Doc.attr e name

(* --- canonical enum tables ------------------------------------------- *)

(* One exhaustive [_string] match per pure enum (the compiler checks
   coverage), one canonical value list in declaration order, and a
   derived inverse.  {!Read} uses the inverses, {!Write} the matches,
   and the binary snapshot codec ([Snap.Codec]) uses list position as
   its wire tag — a constructor added to the metamodel shows up here as
   a non-exhaustive-match error, not a silent decode failure. *)

let enum_of_string ~what ~to_string all s =
  match List.find_opt (fun v -> String.equal (to_string v) s) all with
  | Some v -> v
  | None -> decode_error "unknown %s %s" what s

let visibility_string = function
  | Uml.Classifier.Public -> "public"
  | Uml.Classifier.Private -> "private"
  | Uml.Classifier.Protected -> "protected"
  | Uml.Classifier.Package_visibility -> "package"

let all_visibilities =
  [ Uml.Classifier.Public; Uml.Classifier.Private; Uml.Classifier.Protected;
    Uml.Classifier.Package_visibility ]

let visibility_of_string s =
  enum_of_string ~what:"visibility" ~to_string:visibility_string
    all_visibilities s

let direction_string = function
  | Uml.Classifier.In -> "in"
  | Uml.Classifier.Out -> "out"
  | Uml.Classifier.Inout -> "inout"
  | Uml.Classifier.Return -> "return"

let all_directions =
  [ Uml.Classifier.In; Uml.Classifier.Out; Uml.Classifier.Inout;
    Uml.Classifier.Return ]

let direction_of_string s =
  enum_of_string ~what:"direction" ~to_string:direction_string all_directions s

let aggregation_string = function
  | Uml.Classifier.No_aggregation -> "none"
  | Uml.Classifier.Shared -> "shared"
  | Uml.Classifier.Composite -> "composite"

let all_aggregations =
  [ Uml.Classifier.No_aggregation; Uml.Classifier.Shared;
    Uml.Classifier.Composite ]

let aggregation_of_string s =
  enum_of_string ~what:"aggregation" ~to_string:aggregation_string
    all_aggregations s

let pseudostate_kind_string = function
  | Uml.Smachine.Initial -> "initial"
  | Uml.Smachine.Deep_history -> "deepHistory"
  | Uml.Smachine.Shallow_history -> "shallowHistory"
  | Uml.Smachine.Join -> "join"
  | Uml.Smachine.Fork -> "fork"
  | Uml.Smachine.Junction -> "junction"
  | Uml.Smachine.Choice -> "choice"
  | Uml.Smachine.Entry_point -> "entryPoint"
  | Uml.Smachine.Exit_point -> "exitPoint"
  | Uml.Smachine.Terminate -> "terminate"

let all_pseudostate_kinds =
  [ Uml.Smachine.Initial; Uml.Smachine.Deep_history;
    Uml.Smachine.Shallow_history; Uml.Smachine.Join; Uml.Smachine.Fork;
    Uml.Smachine.Junction; Uml.Smachine.Choice; Uml.Smachine.Entry_point;
    Uml.Smachine.Exit_point; Uml.Smachine.Terminate ]

let pseudostate_kind_of_string s =
  enum_of_string ~what:"pseudostate kind" ~to_string:pseudostate_kind_string
    all_pseudostate_kinds s

let transition_kind_string = function
  | Uml.Smachine.External -> "external"
  | Uml.Smachine.Internal -> "internal"
  | Uml.Smachine.Local -> "local"

let all_transition_kinds =
  [ Uml.Smachine.External; Uml.Smachine.Internal; Uml.Smachine.Local ]

let transition_kind_of_string s =
  enum_of_string ~what:"transition kind" ~to_string:transition_kind_string
    all_transition_kinds s

let edge_kind_string = function
  | Uml.Activityg.Control_flow -> "ControlFlow"
  | Uml.Activityg.Object_flow -> "ObjectFlow"

let all_edge_kinds = [ Uml.Activityg.Control_flow; Uml.Activityg.Object_flow ]

let edge_kind_of_string s =
  enum_of_string ~what:"edge type" ~to_string:edge_kind_string all_edge_kinds s

let message_sort_string = function
  | Uml.Interaction.Synch_call -> "synchCall"
  | Uml.Interaction.Asynch_call -> "asynchCall"
  | Uml.Interaction.Asynch_signal -> "asynchSignal"
  | Uml.Interaction.Reply -> "reply"
  | Uml.Interaction.Create_message -> "createMessage"
  | Uml.Interaction.Delete_message -> "deleteMessage"

let all_message_sorts =
  [ Uml.Interaction.Synch_call; Uml.Interaction.Asynch_call;
    Uml.Interaction.Asynch_signal; Uml.Interaction.Reply;
    Uml.Interaction.Create_message; Uml.Interaction.Delete_message ]

let message_sort_of_string s =
  enum_of_string ~what:"message sort" ~to_string:message_sort_string
    all_message_sorts s

let connector_kind_string = function
  | Uml.Component.Assembly -> "assembly"
  | Uml.Component.Delegation -> "delegation"

let all_connector_kinds = [ Uml.Component.Assembly; Uml.Component.Delegation ]

let connector_kind_of_string s =
  enum_of_string ~what:"connector kind" ~to_string:connector_kind_string
    all_connector_kinds s

let node_kind_string = function
  | Uml.Deployment.Node -> "Node"
  | Uml.Deployment.Device -> "Device"
  | Uml.Deployment.Execution_environment -> "ExecutionEnvironment"

let all_node_kinds =
  [ Uml.Deployment.Node; Uml.Deployment.Device;
    Uml.Deployment.Execution_environment ]

let node_kind_of_string s =
  enum_of_string ~what:"node kind" ~to_string:node_kind_string all_node_kinds s

let metaclass_string = Uml.Profile.metaclass_name

let all_metaclasses =
  [ Uml.Profile.M_class; Uml.Profile.M_interface; Uml.Profile.M_component;
    Uml.Profile.M_port; Uml.Profile.M_property; Uml.Profile.M_operation;
    Uml.Profile.M_package; Uml.Profile.M_state_machine; Uml.Profile.M_state;
    Uml.Profile.M_transition; Uml.Profile.M_activity; Uml.Profile.M_action;
    Uml.Profile.M_node; Uml.Profile.M_artifact; Uml.Profile.M_connector;
    Uml.Profile.M_any ]

let metaclass_of_string s =
  enum_of_string ~what:"metaclass" ~to_string:metaclass_string all_metaclasses
    s

let diagram_kind_string = function
  | Uml.Diagram.Class_diagram -> "class"
  | Uml.Diagram.Object_diagram -> "object"
  | Uml.Diagram.Package_diagram -> "package"
  | Uml.Diagram.Composite_structure_diagram -> "compositeStructure"
  | Uml.Diagram.Component_diagram -> "component"
  | Uml.Diagram.Deployment_diagram -> "deployment"
  | Uml.Diagram.Use_case_diagram -> "useCase"
  | Uml.Diagram.Activity_diagram -> "activity"
  | Uml.Diagram.State_machine_diagram -> "stateMachine"
  | Uml.Diagram.Sequence_diagram -> "sequence"
  | Uml.Diagram.Communication_diagram -> "communication"
  | Uml.Diagram.Interaction_overview_diagram -> "interactionOverview"
  | Uml.Diagram.Timing_diagram -> "timing"

let all_diagram_kinds = Uml.Diagram.all_kinds

let diagram_kind_of_string s =
  enum_of_string ~what:"diagram kind" ~to_string:diagram_kind_string
    all_diagram_kinds s
