(** Shared attribute encodings between {!Write} and {!Read}.

    Values and type references are stored as two attributes
    ([fooKind] + [foo]) so that every {!Uml.Vspec.t} and {!Uml.Dtype.t}
    round-trips exactly. *)

exception Decode_error of string

val decode_error : ('a, unit, string, 'b) format4 -> 'a

val bool_attr : string -> bool -> (string * string) list
(** Empty when false (false is the default on decode). *)

val opt_attr : string -> string option -> (string * string) list
val int_attr : string -> int -> (string * string) list

val vspec_attrs : string -> Uml.Vspec.t -> (string * string) list
val vspec_of_attrs : string -> Sxml.Doc.element -> Uml.Vspec.t option
(** @raise Decode_error on malformed payloads. *)

val dtype_attrs : string -> Uml.Dtype.t -> (string * string) list
val dtype_of_attrs : string -> Sxml.Doc.element -> Uml.Dtype.t
(** Defaults to [Void] when absent. *)

val mult_attrs : Uml.Mult.t -> (string * string) list
val mult_of_attrs : Sxml.Doc.element -> Uml.Mult.t

val get_attr : Sxml.Doc.element -> string -> string
(** @raise Decode_error when missing. *)

val get_bool : Sxml.Doc.element -> string -> bool
val get_int : Sxml.Doc.element -> string -> int
val get_int_opt : Sxml.Doc.element -> string -> int option
val get_opt : Sxml.Doc.element -> string -> string option

(** {1 Canonical enum tables}

    For every pure (payload-free) enum of the metamodel: the XMI
    attribute spelling ([_string], an exhaustive match), the canonical
    value list in declaration order ([all_]), and the derived inverse
    ([_of_string], raising {!Decode_error} on unknown input).  {!Write}
    and {!Read} share these, and the binary snapshot codec uses the
    position in the [all_] list as its wire tag — so the three formats
    can never disagree on an enum's encoding. *)

val visibility_string : Uml.Classifier.visibility -> string
val all_visibilities : Uml.Classifier.visibility list
val visibility_of_string : string -> Uml.Classifier.visibility
val direction_string : Uml.Classifier.direction -> string
val all_directions : Uml.Classifier.direction list
val direction_of_string : string -> Uml.Classifier.direction
val aggregation_string : Uml.Classifier.aggregation -> string
val all_aggregations : Uml.Classifier.aggregation list
val aggregation_of_string : string -> Uml.Classifier.aggregation
val pseudostate_kind_string : Uml.Smachine.pseudostate_kind -> string
val all_pseudostate_kinds : Uml.Smachine.pseudostate_kind list
val pseudostate_kind_of_string : string -> Uml.Smachine.pseudostate_kind
val transition_kind_string : Uml.Smachine.transition_kind -> string
val all_transition_kinds : Uml.Smachine.transition_kind list
val transition_kind_of_string : string -> Uml.Smachine.transition_kind
val edge_kind_string : Uml.Activityg.edge_kind -> string
val all_edge_kinds : Uml.Activityg.edge_kind list
val edge_kind_of_string : string -> Uml.Activityg.edge_kind
val message_sort_string : Uml.Interaction.message_sort -> string
val all_message_sorts : Uml.Interaction.message_sort list
val message_sort_of_string : string -> Uml.Interaction.message_sort
val connector_kind_string : Uml.Component.connector_kind -> string
val all_connector_kinds : Uml.Component.connector_kind list
val connector_kind_of_string : string -> Uml.Component.connector_kind
val node_kind_string : Uml.Deployment.node_kind -> string
val all_node_kinds : Uml.Deployment.node_kind list
val node_kind_of_string : string -> Uml.Deployment.node_kind
val metaclass_string : Uml.Profile.metaclass -> string
val all_metaclasses : Uml.Profile.metaclass list
val metaclass_of_string : string -> Uml.Profile.metaclass
val diagram_kind_string : Uml.Diagram.kind -> string
val all_diagram_kinds : Uml.Diagram.kind list
val diagram_kind_of_string : string -> Uml.Diagram.kind
