(** Parse-once ASL behaviors.

    The metamodel stores guards and effects as opaque source strings
    (mirroring UML's [OpaqueBehavior]); historically every evaluation
    reparsed its string.  This module compiles a source string to its
    AST exactly once and memoizes the result in a table keyed by the
    source text, so the statechart and activity engines can dispatch
    events without ever touching the parser again.

    Parse errors are captured inside the compiled value rather than
    raised here: a behavior that never runs must not fail at
    compile/warm-up time, exactly as the parse-per-eval scheme only
    surfaced errors on evaluation.  {!Interp.eval_guard_compiled} and
    {!Interp.run_compiled} raise [Interp.Runtime_error] when handed a
    captured error. *)

type guard
(** A compiled boolean guard expression (or its captured parse error). *)

type program
(** A compiled statement sequence (or its captured parse error). *)

val guard : string -> guard
(** Memoized [Parser.parse_expression]: physically the same compiled
    value for the same source string. *)

val program : string -> program
(** Memoized [Parser.parse_program]. *)

val guard_result : guard -> (Ast.expr, string) result
(** The parse outcome; [Error] carries the rendered parse error. *)

val program_result : program -> (Ast.program, string) result

val memo_stats : unit -> int * int
(** [(guards, programs)] currently memoized — for tests and benches. *)

val clear_memo : unit -> unit
(** Drop both memo tables (benchmark cold-start measurements). *)
