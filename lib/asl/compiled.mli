(** Parse-once ASL behaviors.

    The metamodel stores guards and effects as opaque source strings
    (mirroring UML's [OpaqueBehavior]); historically every evaluation
    reparsed its string.  This module compiles a source string to its
    AST exactly once and memoizes the result in a table keyed by the
    source text, so the statechart and activity engines can dispatch
    events without ever touching the parser again.

    Parse errors are captured inside the compiled value rather than
    raised here: a behavior that never runs must not fail at
    compile/warm-up time, exactly as the parse-per-eval scheme only
    surfaced errors on evaluation.  {!Interp.eval_guard_compiled} and
    {!Interp.run_compiled} raise [Interp.Runtime_error] when handed a
    captured error.

    Both memo tables are bounded LRU caches (default cap 4096 entries
    each, see {!set_memo_cap}): a long-running process — notably the
    [socuml serve] daemon — can stream arbitrarily many distinct
    behaviors through the parser without unbounded growth.  Eviction
    never changes a result (compiled values are pure functions of the
    source text); it only costs a re-parse on the next miss. *)

type guard
(** A compiled boolean guard expression (or its captured parse error). *)

type program
(** A compiled statement sequence (or its captured parse error). *)

val guard : string -> guard
(** Memoized [Parser.parse_expression]: physically the same compiled
    value for the same source string while the entry stays resident. *)

val program : string -> program
(** Memoized [Parser.parse_program]. *)

val guard_result : guard -> (Ast.expr, string) result
(** The parse outcome; [Error] carries the rendered parse error. *)

val program_result : program -> (Ast.program, string) result

(** Lifetime statistics of the memo tables (monotonic counters are
    process-global, never reset by eviction or {!clear_memo}). *)
type stats = {
  st_guards : int;  (** guard entries currently resident *)
  st_programs : int;  (** program entries currently resident *)
  st_cap : int;  (** per-table entry cap *)
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

val memo_stats : unit -> stats
(** Current residency, cap and lifetime hit/miss/eviction counts — for
    tests, benches and the [socuml serve] stats endpoint. *)

val memo_cap : unit -> int
(** The per-table entry cap currently in force. *)

val set_memo_cap : int -> unit
(** Change the per-table entry cap (evicting immediately when a table
    is over the new cap).
    @raise Invalid_argument when the cap is below 1. *)

val clear_memo : unit -> unit
(** Drop both memo tables (benchmark cold-start measurements).  The
    lifetime counters are preserved. *)
