type obj = {
  obj_class : string;
  obj_attrs : (string, Value.t) Hashtbl.t;
  mutable obj_alive : bool;
}

type t = {
  mutable next : int;
  objects : (int, obj) Hashtbl.t;
}

let create () = { next = 1; objects = Hashtbl.create 64 }

let alloc t ~class_name ~attrs =
  let r = t.next in
  t.next <- t.next + 1;
  let obj_attrs = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace obj_attrs k v) attrs;
  Hashtbl.replace t.objects r
    { obj_class = class_name; obj_attrs; obj_alive = true };
  r

let lookup t r =
  match Hashtbl.find_opt t.objects r with
  | Some o when o.obj_alive -> Some o
  | Some _ | None -> None

let is_alive t r = lookup t r <> None

let class_of t r =
  match lookup t r with
  | Some o -> Some o.obj_class
  | None -> None

let get_attr t r name =
  match lookup t r with
  | Some o -> Hashtbl.find_opt o.obj_attrs name
  | None -> None

let set_attr t r name v =
  match lookup t r with
  | Some o ->
    Hashtbl.replace o.obj_attrs name v;
    true
  | None -> false

let delete t r =
  match lookup t r with
  | Some o ->
    o.obj_alive <- false;
    true
  | None -> false

(* audited: hash-order folds, output-invisible — [live_count] is a
   commutative sum and [attrs] re-sorts by attribute name *)
let live_count t =
  Hashtbl.fold (fun _ o n -> if o.obj_alive then n + 1 else n) t.objects 0

let attrs t r =
  match lookup t r with
  | Some o ->
    let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.obj_attrs [] in
    List.sort (fun (a, _) (b, _) -> String.compare a b) l
  | None -> []
