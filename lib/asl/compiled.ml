type guard = (Ast.expr, string) result
type program = (Ast.program, string) result

let guards : (string, guard) Hashtbl.t = Hashtbl.create 64
let programs : (string, program) Hashtbl.t = Hashtbl.create 64

(* The memo tables are process-global and reached from every engine that
   parses behaviors, including parallel campaign/lint tasks on worker
   domains — all access goes through this lock.  (Stdlib [Hashtbl] is
   not domain-safe; unsynchronized concurrent [add]s corrupt it.) *)
let memo_lock = Mutex.create ()

let locked f =
  Mutex.lock memo_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_lock) f

let capture parse src =
  match parse src with
  | ast -> Ok ast
  | exception exn -> (
    match Parser.error_message exn with
    | Some m -> Error m
    | None -> raise exn)

let memoize table parse src =
  match locked (fun () -> Hashtbl.find_opt table src) with
  | Some c -> c
  | None ->
    (* parse outside the lock: results are pure functions of [src], so
       two domains racing on a miss just do the work twice and the
       first insert wins — same value either way *)
    let c = capture parse src in
    locked (fun () ->
        match Hashtbl.find_opt table src with
        | Some c' -> c'
        | None ->
          Hashtbl.add table src c;
          c)

let guard src = memoize guards Parser.parse_expression src
let program src = memoize programs Parser.parse_program src
let guard_result c = c
let program_result c = c
let memo_stats () =
  locked (fun () -> (Hashtbl.length guards, Hashtbl.length programs))

let clear_memo () =
  locked (fun () ->
      Hashtbl.reset guards;
      Hashtbl.reset programs)
