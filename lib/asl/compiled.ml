(* Each memo table is a bounded LRU: entries carry a last-use stamp
   from a shared logical tick, and inserting past the cap evicts the
   least-recently-used entry.  Eviction only ever costs a re-parse on
   the next miss — compiled values are pure functions of the source
   text — so a long-running daemon can hold the tables at a fixed
   size without changing any result. *)
type guard = (Ast.expr, string) result
type program = (Ast.program, string) result

type 'a entry = {
  e_value : 'a;
  mutable e_stamp : int;  (** last-use tick, for LRU eviction *)
}

let guards : (string, guard entry) Hashtbl.t = Hashtbl.create 64
let programs : (string, program entry) Hashtbl.t = Hashtbl.create 64

(* The memo tables are process-global and reached from every engine that
   parses behaviors, including parallel campaign/lint tasks on worker
   domains — all access goes through this lock.  (Stdlib [Hashtbl] is
   not domain-safe; unsynchronized concurrent [add]s corrupt it.) *)
let memo_lock = Mutex.create ()

let locked f =
  Mutex.lock memo_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_lock) f

(* all mutable state below is guarded by [memo_lock] *)
let tick = ref 0
let cap = ref 4096
let hits = ref 0
let misses = ref 0
let evictions = ref 0

let next_stamp () =
  incr tick;
  !tick

(* O(size) scan for the minimum stamp: an eviction is always paired
   with a parse (the expensive part), so linear scans at the cap never
   show up on a profile. *)
let evict_lru table =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.e_stamp -> ()
      | Some _ | None -> victim := Some (key, e.e_stamp))
    table;
  match !victim with
  | Some (key, _stamp) ->
    Hashtbl.remove table key;
    incr evictions
  | None -> ()

let capture parse src =
  match parse src with
  | ast -> Ok ast
  | exception exn -> (
    match Parser.error_message exn with
    | Some m -> Error m
    | None -> raise exn)

let memoize table parse src =
  let found =
    locked (fun () ->
        match Hashtbl.find_opt table src with
        | Some e ->
          e.e_stamp <- next_stamp ();
          incr hits;
          Some e.e_value
        | None ->
          incr misses;
          None)
  in
  match found with
  | Some c -> c
  | None ->
    (* parse outside the lock: results are pure functions of [src], so
       two domains racing on a miss just do the work twice and the
       first insert wins — same value either way *)
    let c = capture parse src in
    locked (fun () ->
        match Hashtbl.find_opt table src with
        | Some e ->
          e.e_stamp <- next_stamp ();
          e.e_value
        | None ->
          Hashtbl.add table src { e_value = c; e_stamp = next_stamp () };
          while Hashtbl.length table > !cap do
            evict_lru table
          done;
          c)

let guard src = memoize guards Parser.parse_expression src
let program src = memoize programs Parser.parse_program src
let guard_result c = c
let program_result c = c

type stats = {
  st_guards : int;
  st_programs : int;
  st_cap : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

let memo_stats () =
  locked (fun () ->
      {
        st_guards = Hashtbl.length guards;
        st_programs = Hashtbl.length programs;
        st_cap = !cap;
        st_hits = !hits;
        st_misses = !misses;
        st_evictions = !evictions;
      })

let memo_cap () = locked (fun () -> !cap)

let set_memo_cap n =
  if n < 1 then invalid_arg "Asl.Compiled.set_memo_cap: cap < 1";
  locked (fun () ->
      cap := n;
      while Hashtbl.length guards > !cap do
        evict_lru guards
      done;
      while Hashtbl.length programs > !cap do
        evict_lru programs
      done)

let clear_memo () =
  locked (fun () ->
      Hashtbl.reset guards;
      Hashtbl.reset programs)
