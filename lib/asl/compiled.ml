type guard = (Ast.expr, string) result
type program = (Ast.program, string) result

let guards : (string, guard) Hashtbl.t = Hashtbl.create 64
let programs : (string, program) Hashtbl.t = Hashtbl.create 64

let capture parse src =
  match parse src with
  | ast -> Ok ast
  | exception exn -> (
    match Parser.error_message exn with
    | Some m -> Error m
    | None -> raise exn)

let memoize table parse src =
  match Hashtbl.find_opt table src with
  | Some c -> c
  | None ->
    let c = capture parse src in
    Hashtbl.add table src c;
    c

let guard src = memoize guards Parser.parse_expression src
let program src = memoize programs Parser.parse_program src
let guard_result c = c
let program_result c = c
let memo_stats () = (Hashtbl.length guards, Hashtbl.length programs)

let clear_memo () =
  Hashtbl.reset guards;
  Hashtbl.reset programs
