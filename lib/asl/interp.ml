exception Runtime_error of string

type signal_out = {
  sig_name : string;
  sig_args : Value.t list;
  sig_target : Value.t option;
}

type method_impl =
  | Builtin of (t -> self:Value.t -> Value.t list -> Value.t)
  | Body of string list * Ast.program

and t = {
  istore : Store.t;
  resolve : string -> string -> method_impl option;
  attr_defaults : string -> (string * Value.t) list;
  initial_fuel : int;
  mutable fuel : int;
  mutable signals : signal_out list;  (** reverse order *)
  mutable out_lines : string list;  (** reverse order *)
  i_metrics : Telemetry.Metrics.t;
  m_stmts : Telemetry.Metrics.counter;
  m_reads : Telemetry.Metrics.counter;
  m_writes : Telemetry.Metrics.counter;
}

(* A frame: local variables of one body execution.  [Return] is
   implemented with an exception carrying the value. *)
exception Returning of Value.t option

type frame = {
  locals : (string, Value.t) Hashtbl.t;
  self_ : Value.t;
}

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

let create ?(fuel = 1_000_000) ?resolve ?attr_defaults
    ?(metrics = Telemetry.Metrics.null) istore =
  let resolve =
    match resolve with
    | Some r -> r
    | None -> fun _class _op -> None
  in
  let attr_defaults =
    match attr_defaults with
    | Some f -> f
    | None -> fun _class -> []
  in
  {
    istore;
    resolve;
    attr_defaults;
    initial_fuel = fuel;
    fuel;
    signals = [];
    out_lines = [];
    i_metrics = metrics;
    m_stmts = Telemetry.Metrics.counter metrics "asl.statements";
    m_reads = Telemetry.Metrics.counter metrics "asl.store_reads";
    m_writes = Telemetry.Metrics.counter metrics "asl.store_writes";
  }

let store t = t.istore
let metrics t = t.i_metrics

let tick t =
  if t.fuel <= 0 then fail "out of fuel (non-terminating model behavior?)";
  t.fuel <- t.fuel - 1

let as_int = function
  | Value.V_int i -> i
  | v -> fail "expected Integer, got %s" (Value.type_name v)

let as_bool = function
  | Value.V_bool b -> b
  | v -> fail "expected Boolean, got %s" (Value.type_name v)

let as_obj t = function
  | Value.V_obj r ->
    if Store.is_alive t.istore r then r else fail "access to deleted object"
  | v -> fail "expected an object, got %s" (Value.type_name v)

let num2 name v1 v2 int_case real_case =
  match v1, v2 with
  | Value.V_int a, Value.V_int b -> Value.V_int (int_case a b)
  | Value.V_int a, Value.V_real b -> Value.V_real (real_case (float_of_int a) b)
  | Value.V_real a, Value.V_int b -> Value.V_real (real_case a (float_of_int b))
  | Value.V_real a, Value.V_real b -> Value.V_real (real_case a b)
  | v1, v2 ->
    fail "arithmetic %s on %s and %s" name (Value.type_name v1)
      (Value.type_name v2)

let cmp2 name v1 v2 =
  match v1, v2 with
  | Value.V_int a, Value.V_int b -> compare a b
  | Value.V_real a, Value.V_real b -> compare a b
  | Value.V_int a, Value.V_real b -> compare (float_of_int a) b
  | Value.V_real a, Value.V_int b -> compare a (float_of_int b)
  | Value.V_string a, Value.V_string b -> String.compare a b
  | v1, v2 ->
    fail "ordering %s on %s and %s" name (Value.type_name v1)
      (Value.type_name v2)

let value_eq v1 v2 =
  match v1, v2 with
  | Value.V_int a, Value.V_real b -> float_of_int a = b
  | Value.V_real a, Value.V_int b -> a = float_of_int b
  | v1, v2 -> Value.equal v1 v2

let rec eval_expr t frame (e : Ast.expr) : Value.t =
  tick t;
  match e with
  | Ast.Int_lit i -> Value.V_int i
  | Ast.Real_lit r -> Value.V_real r
  | Ast.Bool_lit b -> Value.V_bool b
  | Ast.String_lit s -> Value.V_string s
  | Ast.Null_lit -> Value.V_null
  | Ast.Self -> frame.self_
  | Ast.Var name -> (
    match Hashtbl.find_opt frame.locals name with
    | Some v -> v
    | None -> fail "unbound variable %s" name)
  | Ast.New class_name ->
    let attrs = t.attr_defaults class_name in
    Value.V_obj (Store.alloc t.istore ~class_name ~attrs)
  | Ast.Attr (obj_e, attr) -> (
    let r = as_obj t (eval_expr t frame obj_e) in
    Telemetry.Metrics.incr t.m_reads;
    match Store.get_attr t.istore r attr with
    | Some v -> v
    | None -> fail "object has no attribute %s" attr)
  | Ast.Unop (Ast.Neg, e1) -> (
    match eval_expr t frame e1 with
    | Value.V_int i -> Value.V_int (-i)
    | Value.V_real r -> Value.V_real (-.r)
    | v -> fail "unary minus on %s" (Value.type_name v))
  | Ast.Unop (Ast.Not, e1) ->
    Value.V_bool (not (as_bool (eval_expr t frame e1)))
  | Ast.Binop (Ast.And, e1, e2) ->
    (* short-circuit *)
    if as_bool (eval_expr t frame e1) then
      Value.V_bool (as_bool (eval_expr t frame e2))
    else Value.V_bool false
  | Ast.Binop (Ast.Or, e1, e2) ->
    if as_bool (eval_expr t frame e1) then Value.V_bool true
    else Value.V_bool (as_bool (eval_expr t frame e2))
  | Ast.Binop (op, e1, e2) ->
    let v1 = eval_expr t frame e1 in
    let v2 = eval_expr t frame e2 in
    eval_binop t op v1 v2
  | Ast.Call (recv, name, args) -> eval_call t frame recv name args

and eval_binop _t op v1 v2 =
  match op with
  | Ast.Add -> num2 "+" v1 v2 ( + ) ( +. )
  | Ast.Sub -> num2 "-" v1 v2 ( - ) ( -. )
  | Ast.Mul -> num2 "*" v1 v2 ( * ) ( *. )
  | Ast.Div -> (
    match v1, v2 with
    | _any, Value.V_int 0 -> fail "division by zero"
    | _any, Value.V_real 0. -> fail "division by zero"
    | v1, v2 -> num2 "/" v1 v2 ( / ) ( /. ))
  | Ast.Mod -> (
    match v1, v2 with
    | Value.V_int _, Value.V_int 0 -> fail "modulo by zero"
    | Value.V_int a, Value.V_int b -> Value.V_int (((a mod b) + b) mod b)
    | v1, v2 ->
      fail "mod on %s and %s" (Value.type_name v1) (Value.type_name v2))
  | Ast.Concat -> Value.V_string (Value.to_string v1 ^ Value.to_string v2)
  | Ast.Eq -> Value.V_bool (value_eq v1 v2)
  | Ast.Ne -> Value.V_bool (not (value_eq v1 v2))
  | Ast.Lt -> Value.V_bool (cmp2 "<" v1 v2 < 0)
  | Ast.Le -> Value.V_bool (cmp2 "<=" v1 v2 <= 0)
  | Ast.Gt -> Value.V_bool (cmp2 ">" v1 v2 > 0)
  | Ast.Ge -> Value.V_bool (cmp2 ">=" v1 v2 >= 0)
  | Ast.And | Ast.Or -> assert false (* handled in eval_expr *)

and eval_call t frame recv name args =
  let arg_values = List.map (eval_expr t frame) args in
  match recv, name, arg_values with
  | None, "abs", [ Value.V_int i ] -> Value.V_int (abs i)
  | None, "abs", [ Value.V_real r ] -> Value.V_real (Float.abs r)
  | None, "min", [ v1; v2 ] -> if cmp2 "min" v1 v2 <= 0 then v1 else v2
  | None, "max", [ v1; v2 ] -> if cmp2 "max" v1 v2 >= 0 then v1 else v2
  | None, "to_string", [ v ] -> Value.V_string (Value.to_string v)
  | None, "print", [ v ] ->
    t.out_lines <- Value.to_string v :: t.out_lines;
    Value.V_null
  | _other ->
    let self_value =
      match recv with
      | None -> frame.self_
      | Some r -> eval_expr t frame r
    in
    let class_name =
      match self_value with
      | Value.V_obj r -> (
        match Store.class_of t.istore r with
        | Some c -> c
        | None -> fail "operation call on deleted object")
      | v -> fail "operation call on %s" (Value.type_name v)
    in
    (match t.resolve class_name name with
     | None -> fail "class %s has no operation %s" class_name name
     | Some (Builtin f) -> f t ~self:self_value arg_values
     | Some (Body (param_names, body)) ->
       if List.length param_names <> List.length arg_values then
         fail "operation %s.%s expects %d arguments, got %d" class_name name
           (List.length param_names) (List.length arg_values);
       let locals = Hashtbl.create 8 in
       List.iter2
         (fun p v -> Hashtbl.replace locals p v)
         param_names arg_values;
       let callee = { locals; self_ = self_value } in
       (match exec_block t callee body with
        | () -> Value.V_null
        | exception Returning v -> (
          match v with
          | Some v -> v
          | None -> Value.V_null)))

and exec_block t frame stmts = List.iter (exec_stmt t frame) stmts

and exec_stmt t frame (s : Ast.stmt) =
  tick t;
  Telemetry.Metrics.incr t.m_stmts;
  match s with
  | Ast.Skip -> ()
  | Ast.Var_decl (name, e) ->
    Hashtbl.replace frame.locals name (eval_expr t frame e)
  | Ast.Assign (Ast.L_var name, e) ->
    Hashtbl.replace frame.locals name (eval_expr t frame e)
  | Ast.Assign (Ast.L_attr (obj_e, attr), e) ->
    let r = as_obj t (eval_expr t frame obj_e) in
    let v = eval_expr t frame e in
    Telemetry.Metrics.incr t.m_writes;
    if not (Store.set_attr t.istore r attr v) then
      fail "attribute write on deleted object"
  | Ast.Expr_stmt e ->
    let _v = eval_expr t frame e in
    ()
  | Ast.If (cond, then_branch, else_branch) ->
    if as_bool (eval_expr t frame cond) then exec_block t frame then_branch
    else exec_block t frame else_branch
  | Ast.While (cond, body) ->
    let rec loop () =
      tick t;
      if as_bool (eval_expr t frame cond) then begin
        exec_block t frame body;
        loop ()
      end
    in
    loop ()
  | Ast.For (name, low, high, body) ->
    let lo = as_int (eval_expr t frame low) in
    let hi = as_int (eval_expr t frame high) in
    let rec loop i =
      if i <= hi then begin
        tick t;
        Hashtbl.replace frame.locals name (Value.V_int i);
        exec_block t frame body;
        loop (i + 1)
      end
    in
    loop lo
  | Ast.Return None -> raise (Returning None)
  | Ast.Return (Some e) -> raise (Returning (Some (eval_expr t frame e)))
  | Ast.Send (signal, args, target) ->
    let arg_values = List.map (eval_expr t frame) args in
    let target_value =
      match target with
      | None -> None
      | Some e -> Some (eval_expr t frame e)
    in
    t.signals <-
      { sig_name = signal; sig_args = arg_values; sig_target = target_value }
      :: t.signals
  | Ast.Delete e ->
    let r = as_obj t (eval_expr t frame e) in
    let _was_alive = Store.delete t.istore r in
    ()

let make_frame ?(self_ = Value.V_null) ?(params = []) () =
  let locals = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace locals k v) params;
  { locals; self_ }

let run ?self_ ?params t prog =
  t.fuel <- t.initial_fuel;
  let frame = make_frame ?self_ ?params () in
  match exec_block t frame prog with
  | () -> None
  | exception Returning v -> v

let run_compiled ?self_ ?params t prog =
  match Compiled.program_result prog with
  | Ok p -> run ?self_ ?params t p
  | Error m -> raise (Runtime_error m)

let run_source ?self_ ?params t src =
  run_compiled ?self_ ?params t (Compiled.program src)

let eval ?self_ ?params t e =
  t.fuel <- t.initial_fuel;
  let frame = make_frame ?self_ ?params () in
  eval_expr t frame e

let eval_guard_compiled ?self_ ?params t g =
  match Compiled.guard_result g with
  | Ok e -> as_bool (eval ?self_ ?params t e)
  | Error m -> raise (Runtime_error m)

let eval_guard ?self_ ?params t src =
  eval_guard_compiled ?self_ ?params t (Compiled.guard src)

let drain_signals t =
  let out = List.rev t.signals in
  t.signals <- [];
  out

let output t = List.rev t.out_lines
let clear_output t = t.out_lines <- []
