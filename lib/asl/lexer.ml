type token =
  | INT of int
  | REAL of float
  | STRING of string
  | IDENT of string
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_END
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_TO
  | KW_VAR
  | KW_RETURN
  | KW_SEND
  | KW_NEW
  | KW_DELETE
  | KW_SELF
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_MOD
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | AMP
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | EOF
[@@deriving eq, show]

exception Lex_error of {
  position : int;
  message : string;
}

let keyword_of = function
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "end" -> Some KW_END
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "var" -> Some KW_VAR
  | "return" -> Some KW_RETURN
  | "send" -> Some KW_SEND
  | "new" -> Some KW_NEW
  | "delete" -> Some KW_DELETE
  | "self" -> Some KW_SELF
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "null" -> Some KW_NULL
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "mod" -> Some KW_MOD
  | _other -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let rec loop pos acc =
    if pos >= n then List.rev (EOF :: acc)
    else
      let c = src.[pos] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (pos + 1) acc
      else if c = '/' && pos + 1 < n && src.[pos + 1] = '/' then
        let rec skip p = if p < n && src.[p] <> '\n' then skip (p + 1) else p in
        loop (skip pos) acc
      else if is_digit c then begin
        let rec scan p = if p < n && is_digit src.[p] then scan (p + 1) else p in
        let int_end = scan pos in
        if
          int_end < n
          && src.[int_end] = '.'
          && int_end + 1 < n
          && is_digit src.[int_end + 1]
        then begin
          let frac_end = scan (int_end + 1) in
          let lit = String.sub src pos (frac_end - pos) in
          match float_of_string_opt lit with
          | Some r -> loop frac_end (REAL r :: acc)
          | None ->
            raise
              (Lex_error
                 {
                   position = pos;
                   message =
                     Printf.sprintf "real literal %s out of range" lit;
                 })
        end
        else
          let lit = String.sub src pos (int_end - pos) in
          match int_of_string_opt lit with
          | Some i -> loop int_end (INT i :: acc)
          | None ->
            raise
              (Lex_error
                 {
                   position = pos;
                   message =
                     Printf.sprintf "integer literal %s out of range" lit;
                 })
      end
      else if is_ident_start c then begin
        let rec scan p =
          if p < n && is_ident_char src.[p] then scan (p + 1) else p
        in
        let stop = scan pos in
        let word = String.sub src pos (stop - pos) in
        let tok =
          match keyword_of word with
          | Some kw -> kw
          | None -> IDENT word
        in
        loop stop (tok :: acc)
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec scan p =
          if p >= n then
            raise (Lex_error { position = pos; message = "unterminated string" })
          else if src.[p] = '"' then p + 1
          else if src.[p] = '\\' && p + 1 < n then begin
            (match src.[p + 1] with
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | other -> Buffer.add_char buf other);
            scan (p + 2)
          end
          else begin
            Buffer.add_char buf src.[p];
            scan (p + 1)
          end
        in
        let stop = scan (pos + 1) in
        loop stop (STRING (Buffer.contents buf) :: acc)
      end
      else
        let two = if pos + 1 < n then String.sub src pos 2 else "" in
        match two with
        | ":=" -> loop (pos + 2) (ASSIGN :: acc)
        | "<>" -> loop (pos + 2) (NE :: acc)
        | "<=" -> loop (pos + 2) (LE :: acc)
        | ">=" -> loop (pos + 2) (GE :: acc)
        | _other -> (
          match c with
          | '+' -> loop (pos + 1) (PLUS :: acc)
          | '-' -> loop (pos + 1) (MINUS :: acc)
          | '*' -> loop (pos + 1) (STAR :: acc)
          | '/' -> loop (pos + 1) (SLASH :: acc)
          | '&' -> loop (pos + 1) (AMP :: acc)
          | '=' -> loop (pos + 1) (EQ :: acc)
          | '<' -> loop (pos + 1) (LT :: acc)
          | '>' -> loop (pos + 1) (GT :: acc)
          | '(' -> loop (pos + 1) (LPAREN :: acc)
          | ')' -> loop (pos + 1) (RPAREN :: acc)
          | ',' -> loop (pos + 1) (COMMA :: acc)
          | ';' -> loop (pos + 1) (SEMI :: acc)
          | '.' -> loop (pos + 1) (DOT :: acc)
          | other ->
            raise
              (Lex_error
                 {
                   position = pos;
                   message = Printf.sprintf "unexpected character %C" other;
                 }))
  in
  loop 0 []

let token_name = function
  | INT i -> string_of_int i
  | REAL r -> string_of_float r
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_END -> "end"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_TO -> "to"
  | KW_VAR -> "var"
  | KW_RETURN -> "return"
  | KW_SEND -> "send"
  | KW_NEW -> "new"
  | KW_DELETE -> "delete"
  | KW_SELF -> "self"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_MOD -> "mod"
  | ASSIGN -> ":="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | AMP -> "&"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | EOF -> "<eof>"
