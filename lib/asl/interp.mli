(** ASL interpreter.

    Executes programs against an object {!Store}, an environment of
    local variables, and a method registry.  Signals raised by [send]
    are collected in an outbox for the behavioral engines (statechart,
    activity) to dispatch; [print] output is collected as lines.

    Execution is fuel-limited so that model-supplied programs cannot
    hang the host: each evaluated statement or expression node costs one
    unit. *)

exception Runtime_error of string

type signal_out = {
  sig_name : string;
  sig_args : Value.t list;
  sig_target : Value.t option;
}

(** How an operation body is provided. *)
type method_impl =
  | Builtin of (t -> self:Value.t -> Value.t list -> Value.t)
  | Body of string list * Ast.program
      (** parameter names and parsed body *)

and t

val create :
  ?fuel:int ->
  ?resolve:(string -> string -> method_impl option) ->
  ?attr_defaults:(string -> (string * Value.t) list) ->
  ?metrics:Telemetry.Metrics.t ->
  Store.t ->
  t
(** [create store] builds an interpreter.  [fuel] (default 1_000_000)
    bounds the total number of evaluation steps per [run]/[eval] call.
    [resolve class op] supplies operation bodies.  [attr_defaults class]
    supplies initial attribute values for [new].  [metrics] (default
    {!Telemetry.Metrics.null}) receives the [asl.statements],
    [asl.store_reads] and [asl.store_writes] counters. *)

val store : t -> Store.t

val metrics : t -> Telemetry.Metrics.t
(** The registry supplied at creation time. *)

val run :
  ?self_:Value.t -> ?params:(string * Value.t) list -> t -> Ast.program ->
  Value.t option
(** Execute; [Some v] when a [return v] was executed.
    @raise Runtime_error on a dynamic error or fuel exhaustion. *)

val run_source :
  ?self_:Value.t -> ?params:(string * Value.t) list -> t -> string ->
  Value.t option
(** Parse (memoized via {!Compiled.program}) then {!run}.
    @raise Runtime_error also on parse errors. *)

val run_compiled :
  ?self_:Value.t -> ?params:(string * Value.t) list -> t ->
  Compiled.program -> Value.t option
(** {!run} a precompiled program.
    @raise Runtime_error when the compiled value captured a parse
    error. *)

val eval :
  ?self_:Value.t -> ?params:(string * Value.t) list -> t -> Ast.expr ->
  Value.t

val eval_guard :
  ?self_:Value.t -> ?params:(string * Value.t) list -> t -> string -> bool
(** Parse (memoized via {!Compiled.guard}) and evaluate a boolean guard.
    @raise Runtime_error if the result is not a boolean. *)

val eval_guard_compiled :
  ?self_:Value.t -> ?params:(string * Value.t) list -> t ->
  Compiled.guard -> bool
(** Evaluate a precompiled guard.
    @raise Runtime_error if the result is not a boolean or the compiled
    value captured a parse error. *)

val drain_signals : t -> signal_out list
(** Signals emitted since the last drain, oldest first. *)

val output : t -> string list
(** [print] lines so far, oldest first. *)

val clear_output : t -> unit
