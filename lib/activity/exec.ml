open Uml

type t = {
  act : Activityg.t;
  exec_interp : Asl.Interp.t;
  self_ : Asl.Value.t;
  mutable marking : int Map.Make(String).t;
  mutable done_ : bool;
  mutable gating : bool;
  mutable pending_events : string list;
  mutable signals : string list;  (** reverse order *)
  x_metrics : Telemetry.Metrics.t;
  m_firings : Telemetry.Metrics.counter;
  m_token_moves : Telemetry.Metrics.counter;
}

module SM = Map.Make (String)

let tokens_at t p =
  match SM.find_opt p t.marking with
  | Some n -> n
  | None -> 0

let add_tokens t p n =
  let v = tokens_at t p + n in
  t.marking <- (if v = 0 then SM.remove p t.marking else SM.add p v t.marking)

(* Parse all edge guards and action bodies once at engine construction;
   firing then runs on the memoized compiled forms (parse errors stay
   captured until the behavior actually evaluates). *)
let precompile_behaviors (act : Activityg.t) =
  let opt compile = function
    | None -> ()
    | Some src -> ignore (compile src)
  in
  List.iter
    (fun (e : Activityg.edge) -> opt Asl.Compiled.guard e.Activityg.ed_guard)
    act.Activityg.ac_edges;
  List.iter
    (fun n ->
      match n with
      | Activityg.Action a -> opt Asl.Compiled.program a.Activityg.act_body
      | Activityg.Call_behavior _ | Activityg.Send_signal _
      | Activityg.Accept_event _ | Activityg.Object_node _
      | Activityg.Initial_node _ | Activityg.Activity_final _
      | Activityg.Flow_final _ | Activityg.Fork_node _
      | Activityg.Join_node _ | Activityg.Decision_node _
      | Activityg.Merge_node _ ->
        ())
    act.Activityg.ac_nodes

let create ?interp ?(self_ = Asl.Value.V_null)
    ?(metrics = Telemetry.Metrics.null) act =
  precompile_behaviors act;
  let exec_interp =
    match interp with
    | Some i -> i
    | None -> Asl.Interp.create ~metrics (Asl.Store.create ())
  in
  let t =
    {
      act;
      exec_interp;
      self_;
      marking = SM.empty;
      done_ = false;
      gating = false;
      pending_events = [];
      signals = [];
      x_metrics = metrics;
      m_firings = Telemetry.Metrics.counter metrics "activity.firings";
      m_token_moves = Telemetry.Metrics.counter metrics "activity.token_moves";
    }
  in
  List.iter
    (fun n ->
      match n with
      | Activityg.Initial_node h ->
        add_tokens t (Translate.start_place h.Activityg.nd_id) 1
      | _other -> ())
    act.Activityg.ac_nodes;
  t

let activity t = t.act
let interp t = t.exec_interp
let metrics t = t.x_metrics

let tokens t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) (SM.bindings t.marking)

let finished t = t.done_
let set_event_gating t b = t.gating <- b
let offer_event t name = t.pending_events <- t.pending_events @ [ name ]

let guard_passes t = function
  | None -> true
  | Some src -> (
    match
      Asl.Interp.eval_guard_compiled ~self_:t.self_ t.exec_interp
        (Asl.Compiled.guard src)
    with
    | b -> b
    | exception Asl.Interp.Runtime_error _ -> false)

(* Enabled firings with the inputs/outputs they would consume/produce. *)
type firing = {
  fr_label : string;
  fr_node : Activityg.node;
  fr_consume : (string * int) list;
  fr_produce : string list;  (** one token each *)
  fr_is_final : bool;
}

let firings_of_node t n =
  let open Activityg in
  let id = node_id n in
  let ins = incoming t.act id in
  let outs = outgoing t.act id in
  let in_ok () =
    List.for_all
      (fun e -> tokens_at t (Translate.place_of_edge e.ed_id) >= e.ed_weight)
      ins
    && List.for_all (fun e -> guard_passes t e.ed_guard) ins
  in
  let consume_all =
    List.map (fun e -> (Translate.place_of_edge e.ed_id, e.ed_weight)) ins
  in
  let produce_all = List.map (fun e -> Translate.place_of_edge e.ed_id) outs in
  match n with
  | Initial_node h ->
    let sp = Translate.start_place h.nd_id in
    if tokens_at t sp >= 1 then
      [
        {
          fr_label = Translate.transition_of_node id;
          fr_node = n;
          fr_consume = [ (sp, 1) ];
          fr_produce = produce_all;
          fr_is_final = false;
        };
      ]
    else []
  | Decision_node _ ->
    if ins = [] || not (in_ok ()) then []
    else
      List.filter_map
        (fun out_e ->
          if guard_passes t out_e.ed_guard then
            Some
              {
                fr_label = Translate.decision_branch id out_e.ed_id;
                fr_node = n;
                fr_consume = consume_all;
                fr_produce = [ Translate.place_of_edge out_e.ed_id ];
                fr_is_final = false;
              }
          else None)
        outs
  | Merge_node _ ->
    List.filter_map
      (fun in_e ->
        if
          tokens_at t (Translate.place_of_edge in_e.ed_id) >= in_e.ed_weight
          && guard_passes t in_e.ed_guard
        then
          Some
            {
              fr_label = Translate.merge_branch id in_e.ed_id;
              fr_node = n;
              fr_consume =
                [ (Translate.place_of_edge in_e.ed_id, in_e.ed_weight) ];
              fr_produce = produce_all;
              fr_is_final = false;
            }
        else None)
      ins
  | Activity_final _ ->
    if ins <> [] && in_ok () then
      [
        {
          fr_label = Translate.transition_of_node id;
          fr_node = n;
          fr_consume = consume_all;
          fr_produce = [ Translate.done_place ];
          fr_is_final = true;
        };
      ]
    else []
  | Flow_final _ ->
    if ins <> [] && in_ok () then
      [
        {
          fr_label = Translate.transition_of_node id;
          fr_node = n;
          fr_consume = consume_all;
          fr_produce = [];
          fr_is_final = false;
        };
      ]
    else []
  | Accept_event ev ->
    let event_ready =
      (not t.gating) || List.mem ev.ev_event t.pending_events
    in
    if ins <> [] && in_ok () && event_ready then
      [
        {
          fr_label = Translate.transition_of_node id;
          fr_node = n;
          fr_consume = consume_all;
          fr_produce = produce_all;
          fr_is_final = false;
        };
      ]
    else []
  | Object_node o ->
    let capacity_ok =
      match o.on_upper_bound with
      | None -> true
      | Some b ->
        (* tokens buffered downstream of this node *)
        List.fold_left
          (fun acc e -> acc + tokens_at t (Translate.place_of_edge e.ed_id))
          0 outs
        < b
    in
    if ins <> [] && in_ok () && capacity_ok then
      [
        {
          fr_label = Translate.transition_of_node id;
          fr_node = n;
          fr_consume = consume_all;
          fr_produce = produce_all;
          fr_is_final = false;
        };
      ]
    else []
  | Action _ | Call_behavior _ | Send_signal _ | Fork_node _ | Join_node _ ->
    if ins <> [] && in_ok () then
      [
        {
          fr_label = Translate.transition_of_node id;
          fr_node = n;
          fr_consume = consume_all;
          fr_produce = produce_all;
          fr_is_final = false;
        };
      ]
    else []

let all_firings t =
  if t.done_ then []
  else List.concat_map (firings_of_node t) t.act.Activityg.ac_nodes

let enabled_firings t = List.map (fun f -> f.fr_label) (all_firings t)
let stuck t = (not t.done_) && all_firings t = []

let run_node_behavior t n =
  let open Activityg in
  match n with
  | Action a -> (
    match a.act_body with
    | None -> ()
    | Some src -> (
      match
        Asl.Interp.run_compiled ~self_:t.self_ t.exec_interp
          (Asl.Compiled.program src)
      with
      | _result ->
        let sent = Asl.Interp.drain_signals t.exec_interp in
        List.iter
          (fun s -> t.signals <- s.Asl.Interp.sig_name :: t.signals)
          sent
      | exception Asl.Interp.Runtime_error _ -> ()))
  | Send_signal ev -> t.signals <- ev.ev_event :: t.signals
  | Accept_event ev ->
    if t.gating then begin
      (* consume one pending instance *)
      let rec remove = function
        | [] -> []
        | e :: rest when e = ev.ev_event -> rest
        | e :: rest -> e :: remove rest
      in
      t.pending_events <- remove t.pending_events
    end
  | Call_behavior _ | Object_node _ | Initial_node _ | Activity_final _
  | Flow_final _ | Fork_node _ | Join_node _ | Decision_node _
  | Merge_node _ ->
    ()

let apply_firing t f =
  Telemetry.Metrics.incr t.m_firings;
  let consumed = List.fold_left (fun acc (_, w) -> acc + w) 0 f.fr_consume in
  Telemetry.Metrics.incr ~by:(consumed + List.length f.fr_produce)
    t.m_token_moves;
  if Telemetry.Metrics.live t.x_metrics then
    Telemetry.Metrics.event t.x_metrics ~scope:"activity" "fire"
      [
        ("label", Telemetry.Metrics.F_str f.fr_label);
        ("consumed", Telemetry.Metrics.F_int consumed);
        ("produced", Telemetry.Metrics.F_int (List.length f.fr_produce));
      ];
  List.iter (fun (p, w) -> add_tokens t p (-w)) f.fr_consume;
  run_node_behavior t f.fr_node;
  List.iter (fun p -> add_tokens t p 1) f.fr_produce;
  if f.fr_is_final then t.done_ <- true

let fire t label =
  match List.find_opt (fun f -> f.fr_label = label) (all_firings t) with
  | Some f ->
    apply_firing t f;
    Ok ()
  | None -> Error (Printf.sprintf "firing %s not enabled" label)

let adjust_tokens t place delta =
  let v = max 0 (tokens_at t place + delta) in
  t.marking <-
    (if v = 0 then SM.remove place t.marking else SM.add place v t.marking)

let run_status ?(seed = 1) ?(max_steps = 10_000) t =
  let state = ref (seed land 0x3FFFFFFF) in
  let choose bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let rec loop steps acc =
    if steps >= max_steps then (List.rev acc, `Exhausted)
    else
      match all_firings t with
      | [] -> (List.rev acc, if t.done_ then `Completed else `Stuck)
      | firings ->
        let f = List.nth firings (choose (List.length firings)) in
        apply_firing t f;
        loop (steps + 1) (f.fr_label :: acc)
  in
  loop 0 []

let run ?seed ?max_steps t = fst (run_status ?seed ?max_steps t)

let sent_signals t = List.rev t.signals
let output_of t = Asl.Interp.output t.exec_interp
