(** Token-flow execution engine for activities (UML 2.0 semantics).

    Tokens live on edges.  A node is enabled when every incoming edge
    offers enough tokens ([weight]); decision and merge nodes are the
    exception and fire per-edge.  Firing consumes the tokens, runs the
    node's behavior (ASL action bodies, signal sends) and offers one
    token on outgoing edges (all of them for fork/actions, exactly one
    chosen branch for decisions).

    Every firing is labelled with the {!Translate} transition name, so a
    run is checkable as an occurrence sequence of the translated Petri
    net — the differential oracle used by tests and experiment E3. *)

type t

val create :
  ?interp:Asl.Interp.t ->
  ?self_:Asl.Value.t ->
  ?metrics:Telemetry.Metrics.t ->
  Uml.Activityg.t ->
  t
(** The engine starts with tokens as per initial nodes.  [metrics]
    (default {!Telemetry.Metrics.null}) receives the
    [activity.firings] and [activity.token_moves] counters plus one
    structured ["activity/fire"] event per firing; an internally created
    interpreter is instrumented with the same registry. *)

val activity : t -> Uml.Activityg.t
val interp : t -> Asl.Interp.t

val metrics : t -> Telemetry.Metrics.t
(** The registry supplied at creation time. *)

val tokens : t -> (string * int) list
(** Current marking as (Petri place name, tokens), sorted; includes
    unconsumed start places and the done place. *)

val finished : t -> bool
(** An activity-final node has fired. *)

val stuck : t -> bool
(** No node is enabled (and not finished). *)

val enabled_firings : t -> string list
(** Labels of all currently enabled firings, deterministic order. *)

val fire : t -> string -> (unit, string) result
(** Fire the labelled transition, if enabled. *)

val offer_event : t -> string -> unit
(** Make an event available for [Accept_event] nodes.  If none is
    pending, accept nodes do not block (they fire immediately) — the
    offered-event set only gates nodes when [event_gating] was enabled
    at creation time via {!set_event_gating}. *)

val set_event_gating : t -> bool -> unit

val run : ?seed:int -> ?max_steps:int -> t -> string list
(** Run to completion (or stuck/step bound), choosing among enabled
    firings with a deterministic seeded LCG; returns firing labels in
    order.  Default [max_steps] is 10_000. *)

val run_status :
  ?seed:int ->
  ?max_steps:int ->
  t ->
  string list * [ `Completed | `Stuck | `Exhausted ]
(** {!run} with a structured stop verdict: [`Completed] when an
    activity-final node fired, [`Stuck] when no firing was enabled
    before that, [`Exhausted] when [max_steps] ran out — the graceful
    resource guard fault campaigns classify as truncated. *)

val adjust_tokens : t -> string -> int -> unit
(** Fault-injection hook: add [delta] tokens (may be negative) to a
    Petri place of the current marking, clamped at zero.  Does not
    count as engine token traffic — campaigns account for it under
    their own [fault.*] telemetry. *)

val sent_signals : t -> string list
(** Names of signals emitted by [Send_signal] nodes and ASL [send]
    statements, oldest first. *)

val output_of : t -> string list
(** [print] lines produced by action bodies, oldest first. *)
