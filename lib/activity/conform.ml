type report = {
  steps : int;
  conforms : bool;
  mismatch : string option;
}

(* Replays run on the compiled net: labels are interned once and each
   firing is array arithmetic instead of arc-list scans. *)
let check_trace act labels =
  let net, m0 = Translate.to_petri act in
  let c = Petri.Compiled.of_net net in
  let cm0, _residue = Petri.Compiled.split c m0 in
  let rec replay m n = function
    | [] -> (n, Ok m)
    | label :: rest -> (
      match Petri.Compiled.fire_by_id c m label with
      | Some m' -> replay m' (n + 1) rest
      | None -> (n, Error label))
  in
  match replay cm0 0 labels with
  | n, Ok _m -> { steps = n; conforms = true; mismatch = None }
  | n, Error label ->
    {
      steps = n;
      conforms = false;
      mismatch =
        Some (Printf.sprintf "label %s not enabled in net after %d steps" label n);
    }

let run_and_check ?seed ?max_steps act =
  let engine = Exec.create act in
  let labels = Exec.run ?seed ?max_steps engine in
  let net, m0 = Translate.to_petri act in
  let c = Petri.Compiled.of_net net in
  let cm0, residue = Petri.Compiled.split c m0 in
  let rec replay m = function
    | [] -> Ok m
    | label :: rest -> (
      match Petri.Compiled.fire_by_id c m label with
      | Some m' -> replay m' rest
      | None -> Error label)
  in
  match replay cm0 labels with
  | Error label ->
    {
      steps = List.length labels;
      conforms = false;
      mismatch = Some (Printf.sprintf "label %s not enabled in net" label);
    }
  | Ok final_compiled_marking ->
    let net_marking =
      Petri.Marking.to_list
        (Petri.Compiled.export c residue final_compiled_marking)
    in
    let engine_marking = Exec.tokens engine in
    if net_marking = engine_marking then
      { steps = List.length labels; conforms = true; mismatch = None }
    else
      {
        steps = List.length labels;
        conforms = false;
        mismatch =
          Some
            (Printf.sprintf "final markings differ: net %s vs engine %s"
               (String.concat ","
                  (List.map (fun (p, n) -> Printf.sprintf "%s:%d" p n) net_marking))
               (String.concat ","
                  (List.map
                     (fun (p, n) -> Printf.sprintf "%s:%d" p n)
                     engine_marking)));
      }
