(** Value-change-dump (VCD) waveform writer.

    Records snapshots of a running simulation per timestep and renders
    the standard VCD text format accepted by GTKWave and friends.  The
    writer reads through an engine-neutral {!Probe}, so it works
    identically over the reference interpreter ({!Sim}) and the
    compiled engine ({!Fast}) — two engines simulating the same values
    render byte-identical dumps. *)

type t

val create : Sim.t -> t
(** Register every signal of the reference simulator. *)

val create_fast : Fast.t -> t
(** Register every signal of the compiled simulator. *)

val of_probe : Probe.t -> t
(** Register every signal visible through the probe. *)

val sample : t -> time:int -> unit
(** Record current values at the given time (only changes are stored). *)

val render : t -> string
(** Full VCD file contents. *)

val write_file : t -> string -> unit
