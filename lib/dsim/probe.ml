type t = {
  pr_module : Hdl.Module_.t;
  pr_get : string -> int;
  pr_signals : (string * Hdl.Htype.t) list;
}
