(** Engine-neutral read access to a running simulation.

    The waveform ({!Vcd}) and timing-diagram ({!Timing}) renderers only
    ever *read* signal values; a probe packages exactly that surface so
    they work identically over the reference interpreter ({!Sim}) and
    the compiled engine ({!Fast}).  Both engines expose a [probe]
    accessor; renderers built from either produce byte-identical output
    when the simulated values agree. *)

type t = {
  pr_module : Hdl.Module_.t;  (** the simulated flat module *)
  pr_get : string -> int;
      (** current value of a signal or port; raises the owning engine's
          [Simulation_error] for unknown names *)
  pr_signals : (string * Hdl.Htype.t) list;
      (** all simulated signals (ports first), declaration order *)
}
