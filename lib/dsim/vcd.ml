type t = {
  probe : Probe.t;
  ids : (string * string * Hdl.Htype.t) list;  (** signal, vcd id, type *)
  mutable last : (string * int) list;  (** last sampled values *)
  mutable changes : (int * (string * int) list) list;  (** reverse order *)
}

let vcd_id i =
  (* printable identifier characters ! .. ~ *)
  let base = 94 in
  let rec build i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build i ""

let of_probe probe =
  let ids =
    List.mapi
      (fun i (name, ty) -> (name, vcd_id i, ty))
      probe.Probe.pr_signals
  in
  { probe; ids; last = []; changes = [] }

let create sim = of_probe (Sim.probe sim)
let create_fast fast = of_probe (Fast.probe fast)

let sample t ~time =
  let current =
    List.map (fun (name, _, _) -> (name, t.probe.Probe.pr_get name)) t.ids
  in
  let changed =
    List.filter
      (fun (name, v) ->
        match List.assoc_opt name t.last with
        | Some old -> old <> v
        | None -> true)
      current
  in
  if changed <> [] then t.changes <- (time, changed) :: t.changes;
  t.last <- current

let binary_string width v =
  let buf = Bytes.make width '0' in
  for i = 0 to width - 1 do
    if (v lsr (width - 1 - i)) land 1 = 1 then Bytes.set buf i '1'
  done;
  Bytes.to_string buf

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date socuml $end\n";
  Buffer.add_string buf "$version socuml dsim $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$scope module %s $end\n"
       t.probe.Probe.pr_module.Hdl.Module_.mod_name);
  List.iter
    (fun (name, id, ty) ->
      let w = Hdl.Htype.width ty in
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" w id name))
    t.ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let emit (time, changes) =
    Buffer.add_string buf (Printf.sprintf "#%d\n" time);
    List.iter
      (fun (name, v) ->
        match List.find_opt (fun (n, _, _) -> n = name) t.ids with
        | Some (_, id, ty) ->
          let w = Hdl.Htype.width ty in
          if w = 1 then Buffer.add_string buf (Printf.sprintf "%d%s\n" (v land 1) id)
          else
            Buffer.add_string buf
              (Printf.sprintf "b%s %s\n" (binary_string w v) id)
        | None -> ())
      changes
  in
  List.iter emit (List.rev t.changes);
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  (match output_string oc (render t) with
   | () -> close_out oc
   | exception e ->
     close_out_noerr oc;
     raise e)
