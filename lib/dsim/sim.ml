open Hdl

exception Simulation_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Simulation_error m)) fmt

type t = {
  m : Module_.t;
  values : (string, int) Hashtbl.t;
  types : (string, Htype.t) Hashtbl.t;
  enum_of_lit : (string, int) Hashtbl.t;  (** literal -> index *)
  order : (string * Htype.t) list;  (** declaration order *)
  snap_order : string list;  (** names sorted, deduplicated *)
  mutable event_count : int;
  mutable delta_count : int;
  s_metrics : Telemetry.Metrics.t;
  m_events : Telemetry.Metrics.counter;
  m_deltas : Telemetry.Metrics.counter;
}

(* All-ones mask for a width; [1 lsl w] overflows the native int sign
   for w >= 62, so wide values use the identity mask (raw ints). *)
let mask_bits w = if w >= 62 then -1 else (1 lsl w) - 1

let mask ty v = v land mask_bits (Htype.width ty)

let module_of t = t.m

let declared_value t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> err "unknown signal %s" name

let get t name = declared_value t name

let get_enum t name =
  match Hashtbl.find_opt t.types name with
  | Some (Htype.Enum lits) -> (
    let v = declared_value t name in
    match List.nth_opt lits v with
    | Some l -> l
    | None -> err "enum value %d out of range for %s" v name)
  | Some _ -> err "%s is not enum-typed" name
  | None -> err "unknown signal %s" name

let rec eval t (e : Expr.t) =
  match e with
  | Expr.Const (v, ty) -> mask ty v
  | Expr.Enum_lit lit -> (
    match Hashtbl.find_opt t.enum_of_lit lit with
    | Some i -> i
    | None -> err "unknown enum literal %s" lit)
  | Expr.Ref name -> declared_value t name
  | Expr.Unop (Expr.Not, e1) -> (
    let v = eval t e1 in
    match type_of t e1 with
    | Some ty -> mask ty (lnot v)
    | None -> lnot v land 1)
  | Expr.Unop (Expr.Reduce_or, e1) -> if eval t e1 <> 0 then 1 else 0
  | Expr.Unop (Expr.Reduce_and, e1) -> (
    let v = eval t e1 in
    match type_of t e1 with
    | Some ty -> if v = Htype.max_value ty then 1 else 0
    | None -> v land 1)
  | Expr.Binop (op, e1, e2) -> eval_binop t op e1 e2
  | Expr.Mux (c, a, b) -> if eval t c <> 0 then eval t a else eval t b
  | Expr.Slice (e1, hi, lo) ->
    let v = eval t e1 in
    (v lsr lo) land mask_bits (hi - lo + 1)
  | Expr.Concat (e1, e2) -> (
    let v1 = eval t e1 in
    let v2 = eval t e2 in
    match type_of t e2 with
    | Some ty2 -> (v1 lsl Htype.width ty2) lor mask ty2 v2
    | None -> (v1 lsl 1) lor (v2 land 1))
  | Expr.Resize (e1, w) -> eval t e1 land mask_bits w

and eval_binop t op e1 e2 =
  let v1 = eval t e1 in
  let v2 = eval t e2 in
  let wide =
    match type_of t e1, type_of t e2 with
    | Some t1, Some t2 ->
      Htype.Unsigned (max (Htype.width t1) (Htype.width t2))
    | Some t1, None -> t1
    | None, Some t2 -> t2
    | None, None -> Htype.Unsigned 62
  in
  match op with
  | Expr.And -> v1 land v2
  | Expr.Or -> v1 lor v2
  | Expr.Xor -> v1 lxor v2
  | Expr.Add -> mask wide (v1 + v2)
  | Expr.Sub -> mask wide (v1 - v2)
  | Expr.Mul -> mask wide (v1 * v2)
  | Expr.Eq -> if v1 = v2 then 1 else 0
  | Expr.Neq -> if v1 <> v2 then 1 else 0
  | Expr.Lt -> if v1 < v2 then 1 else 0
  | Expr.Le -> if v1 <= v2 then 1 else 0
  | Expr.Gt -> if v1 > v2 then 1 else 0
  | Expr.Ge -> if v1 >= v2 then 1 else 0
  | Expr.Shl -> mask wide (v1 lsl min v2 62)
  | Expr.Shr -> v1 lsr min v2 62

and type_of t (e : Expr.t) =
  match e with
  | Expr.Const (_, ty) -> Some ty
  | Expr.Ref name -> Hashtbl.find_opt t.types name
  | Expr.Enum_lit _ -> None
  | Expr.Unop (Expr.Not, e1) -> type_of t e1
  | Expr.Unop ((Expr.Reduce_or | Expr.Reduce_and), _) -> Some Htype.Bit
  | Expr.Binop (op, e1, e2) ->
    if Expr.is_boolean_op op then Some Htype.Bit
    else (
      match type_of t e1, type_of t e2 with
      | Some t1, Some t2 ->
        Some (Htype.Unsigned (max (Htype.width t1) (Htype.width t2)))
      | only1, only2 -> (
        match only1 with
        | Some _ -> only1
        | None -> only2))
  | Expr.Mux (_, a, b) -> (
    match type_of t a with
    | Some _ as ty -> ty
    | None -> type_of t b)
  | Expr.Slice (_, hi, lo) ->
    Some (if hi = lo then Htype.Bit else Htype.Unsigned (hi - lo + 1))
  | Expr.Concat (e1, e2) -> (
    match type_of t e1, type_of t e2 with
    | Some t1, Some t2 ->
      Some (Htype.Unsigned (Htype.width t1 + Htype.width t2))
    | _other1, _other2 -> None)
  | Expr.Resize (_, w) ->
    Some (if w = 1 then Htype.Bit else Htype.Unsigned w)

(* Execute statements; [write] receives assignments. *)
let rec exec t write (s : Stmt.t) =
  match s with
  | Stmt.Null -> ()
  | Stmt.Assign (target, e) -> write target (eval t e)
  | Stmt.If (c, t_branch, e_branch) ->
    if eval t c <> 0 then List.iter (exec t write) t_branch
    else List.iter (exec t write) e_branch
  | Stmt.Case (sel, branches, default) -> (
    let v = eval t sel in
    let matches (choice, _) =
      match choice with
      | Stmt.Ch_int i -> i = v
      | Stmt.Ch_enum lit -> (
        match Hashtbl.find_opt t.enum_of_lit lit with
        | Some i -> i = v
        | None -> err "unknown enum literal %s" lit)
    in
    match List.find_opt matches branches with
    | Some (_, body) -> List.iter (exec t write) body
    | None -> (
      match default with
      | Some body -> List.iter (exec t write) body
      | None -> ()))

let write_now t name v =
  let ty =
    match Hashtbl.find_opt t.types name with
    | Some ty -> ty
    | None -> err "assignment to unknown signal %s" name
  in
  let v = mask ty v in
  let old = declared_value t name in
  if old <> v then begin
    Hashtbl.replace t.values name v;
    t.event_count <- t.event_count + 1;
    Telemetry.Metrics.incr t.m_events;
    true
  end
  else false

(* Settle combinational processes: evaluate every comb process; repeat
   while anything changed (delta cycles), bounded. *)
let settle t =
  let rec loop rounds =
    if rounds > 1000 then err "combinational logic did not settle";
    let changed = ref false in
    List.iter
      (fun p ->
        match p with
        | Module_.Comb cp ->
          t.event_count <- t.event_count + 1;
          Telemetry.Metrics.incr t.m_events;
          let write name v = if write_now t name v then changed := true in
          List.iter (exec t write) cp.Module_.cp_body
        | Module_.Seq _ -> ())
      t.m.Module_.mod_processes;
    t.delta_count <- t.delta_count + 1;
    Telemetry.Metrics.incr t.m_deltas;
    if !changed then loop (rounds + 1)
  in
  loop 0

let create ?(metrics = Telemetry.Metrics.null) m =
  let order =
    List.map
      (fun (p : Module_.port) -> (p.Module_.port_name, p.Module_.port_type))
      m.Module_.mod_ports
    @ List.map
        (fun (s : Module_.signal) -> (s.Module_.sig_name, s.Module_.sig_type))
        m.Module_.mod_signals
  in
  let t =
    {
      m;
      values = Hashtbl.create 64;
      types = Hashtbl.create 64;
      enum_of_lit = Hashtbl.create 16;
      order;
      snap_order = List.sort_uniq String.compare (List.map fst order);
      event_count = 0;
      delta_count = 0;
      s_metrics = metrics;
      m_events = Telemetry.Metrics.counter metrics "dsim.events";
      m_deltas = Telemetry.Metrics.counter metrics "dsim.delta_cycles";
    }
  in
  let declare name ty init =
    Hashtbl.replace t.types name ty;
    Hashtbl.replace t.values name (mask ty init);
    match ty with
    | Htype.Enum lits ->
      List.iteri (fun i l -> Hashtbl.replace t.enum_of_lit l i) lits
    | Htype.Bit | Htype.Unsigned _ -> ()
  in
  List.iter
    (fun (p : Module_.port) -> declare p.Module_.port_name p.Module_.port_type 0)
    m.Module_.mod_ports;
  List.iter
    (fun (s : Module_.signal) ->
      let init =
        match s.Module_.sig_init with
        | Some v -> v
        | None -> 0
      in
      declare s.Module_.sig_name s.Module_.sig_type init)
    m.Module_.mod_signals;
  settle t;
  t

let set_input t name v =
  let _changed = write_now t name v in
  settle t

let clock_edge t clock =
  (* sample phase: sequential processes write into a buffer *)
  let pending = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match p with
      | Module_.Seq sp when sp.Module_.sp_clock = clock ->
        t.event_count <- t.event_count + 1;
        Telemetry.Metrics.incr t.m_events;
        let write name v = Hashtbl.replace pending name v in
        let in_reset =
          match sp.Module_.sp_reset with
          | Some (rst, reset_body) when declared_value t rst <> 0 ->
            List.iter (exec t write) reset_body;
            true
          | Some _ | None -> false
        in
        if not in_reset then List.iter (exec t write) sp.Module_.sp_body
      | Module_.Seq _ | Module_.Comb _ -> ())
    t.m.Module_.mod_processes;
  (* commit phase, in declaration order ([t.order]): committing by
     [Hashtbl.iter] would make the winner of two same-edge writers (and
     the resulting event/delta counts) depend on hash-table internals.
     This engine is the oracle [Dsim.Fast] is differentially tested
     against, so its output must not vary with bucket layout. *)
  List.iter
    (fun (name, _ty) ->
      match Hashtbl.find_opt pending name with
      | Some v ->
        ignore (write_now t name v);
        Hashtbl.remove pending name
      | None -> ())
    t.order;
  (* anything left targets an undeclared signal; surface [write_now]'s
     diagnostic for the smallest such name *)
  if Hashtbl.length pending <> 0 then begin
    let names = Hashtbl.fold (fun name _v acc -> name :: acc) pending [] in
    let name = List.fold_left min (List.hd names) names in
    ignore (write_now t name (Hashtbl.find pending name))
  end;
  settle t

let cycle ?(inputs = []) t clock =
  List.iter (fun (name, v) -> ignore (write_now t name v)) inputs;
  settle t;
  clock_edge t clock

let run t ~clock ~cycles =
  for _ = 1 to cycles do
    clock_edge t clock
  done

let events t = t.event_count
let delta_cycles t = t.delta_count
let metrics t = t.s_metrics
let signals t = t.order

(* [snap_order] is precomputed at [create] (sorted by name, duplicates
   removed), so a snapshot is one O(n) walk instead of rebuilding and
   re-sorting the whole table per call. *)
let snapshot t =
  List.map (fun name -> (name, declared_value t name)) t.snap_order

let probe t =
  {
    Probe.pr_module = t.m;
    pr_get = (fun name -> declared_value t name);
    pr_signals = t.order;
  }
