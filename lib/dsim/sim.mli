(** Discrete-event simulator for flat RTL modules.

    Executes the output of {!Hdl.Elaborate.flatten}: combinational
    processes settle through delta cycles (re-evaluated until no signal
    changes); sequential processes sample current values on
    {!clock_edge} and commit next values atomically, like non-blocking
    assignment.

    The simulator counts events (process evaluations and effective
    signal updates) for the performance experiments. *)

exception Simulation_error of string

type t

val create : ?metrics:Telemetry.Metrics.t -> Hdl.Module_.t -> t
(** @raise Simulation_error when the module has unresolved names or a
    combinational loop prevents settling.  [metrics] (default
    {!Telemetry.Metrics.null}) receives the [dsim.events] and
    [dsim.delta_cycles] counters. *)

val module_of : t -> Hdl.Module_.t

val get : t -> string -> int
(** Current value of a signal or port.
    @raise Simulation_error for unknown names. *)

val get_enum : t -> string -> string
(** Current value of an enum-typed signal, as its literal name. *)

val set_input : t -> string -> int -> unit
(** Drive an input port (masked to the port width); combinational logic
    settles immediately. *)

val clock_edge : t -> string -> unit
(** One rising edge of the named clock: run all sequential processes on
    that clock, commit, settle combinational logic. *)

val cycle : ?inputs:(string * int) list -> t -> string -> unit
(** [cycle t clk] = apply inputs, then one {!clock_edge}. *)

val run : t -> clock:string -> cycles:int -> unit

val events : t -> int
(** Total events processed so far. *)

val delta_cycles : t -> int
(** Total delta cycles used by settling so far. *)

val metrics : t -> Telemetry.Metrics.t
(** The registry supplied at creation time. *)

val signals : t -> (string * Hdl.Htype.t) list
(** All simulated signals (ports first), declaration order. *)

val snapshot : t -> (string * int) list
(** All current values, sorted by name (order precomputed at creation,
    so each call is a single linear walk). *)

val probe : t -> Probe.t
(** Read-only view for the {!Vcd} and {!Timing} renderers. *)
