open Hdl

let err fmt = Printf.ksprintf (fun m -> raise (Sim.Simulation_error m)) fmt

type t = {
  nl : Netlist.t;
  vals : int array;
  settle_budget : int;
  budget : Exec.Budget.t;
  (* event-driven settling state: which comb processes must re-run *)
  dirty : bool array;
  mutable ndirty : int;
  gen : int array;  (* scratch for one worklist generation *)
  (* non-blocking assignment buffer for clock_edge *)
  pending_val : int array;
  pending_set : bool array;
  mutable pending_touched : int list;  (* reverse first-touch order *)
  mutable event_count : int;
  mutable delta_count : int;
  mutable skipped_count : int;
  s_signals : (string * Htype.t) list;
  s_metrics : Telemetry.Metrics.t;
  m_events : Telemetry.Metrics.counter;
  m_deltas : Telemetry.Metrics.counter;
  m_skipped : Telemetry.Metrics.counter;
}

let mark_dirty t p =
  if not t.dirty.(p) then begin
    t.dirty.(p) <- true;
    t.ndirty <- t.ndirty + 1
  end

(* Masked store; on an effective change, wake every reader. *)
let write_now t i v =
  let v = v land t.nl.Netlist.nl_mask.(i) in
  if t.vals.(i) <> v then begin
    t.vals.(i) <- v;
    t.event_count <- t.event_count + 1;
    Telemetry.Metrics.incr t.m_events;
    Array.iter (fun p -> mark_dirty t p) t.nl.Netlist.nl_fanout.(i)
  end

let eval_comb t p =
  t.dirty.(p) <- false;
  t.ndirty <- t.ndirty - 1;
  t.event_count <- t.event_count + 1;
  Telemetry.Metrics.incr t.m_events;
  let c = t.nl.Netlist.nl_comb.(p) in
  c.Netlist.c_body t.vals (fun i v -> write_now t i v)

let count_pass t ~evaluated =
  let ncomb = Array.length t.nl.Netlist.nl_comb in
  t.delta_count <- t.delta_count + 1;
  Telemetry.Metrics.incr t.m_deltas;
  let skipped = ncomb - evaluated in
  if skipped > 0 then begin
    t.skipped_count <- t.skipped_count + skipped;
    Telemetry.Metrics.incr ~by:skipped t.m_skipped
  end

(* Acyclic case: one pass in topological order settles.  Processes
   dirtied mid-pass always sit later in [order], so they are reached
   before the pass ends. *)
let settle_levelized t order =
  let evaluated = ref 0 in
  Array.iter
    (fun p ->
      if t.dirty.(p) then begin
        eval_comb t p;
        incr evaluated
      end)
    order;
  count_pass t ~evaluated:!evaluated

(* Signals written by still-dirty processes: the actionable part of a
   non-settling diagnostic (an injected oscillation names its loop). *)
let unstable_signals t =
  let names = ref [] in
  Array.iteri
    (fun p (c : Netlist.comb) ->
      if t.dirty.(p) then
        Array.iter
          (fun i -> names := t.nl.Netlist.nl_names.(i) :: !names)
          c.Netlist.c_writes)
    t.nl.Netlist.nl_comb;
  List.sort_uniq String.compare !names

(* Cyclic fallback: evaluate the dirty generation in process order,
   repeat until quiescent, within the configurable round budget
   (default matches the reference engine's 1000-round bound). *)
let settle_worklist t =
  let ncomb = Array.length t.nl.Netlist.nl_comb in
  if t.ndirty = 0 then count_pass t ~evaluated:0
  else begin
    let rounds = ref 0 in
    while t.ndirty > 0 do
      incr rounds;
      if !rounds > t.settle_budget then
        err "combinational logic did not settle after %d rounds (unstable: %s)"
          t.settle_budget
          (String.concat ", " (unstable_signals t));
      let k = ref 0 in
      for p = 0 to ncomb - 1 do
        if t.dirty.(p) then begin
          t.gen.(!k) <- p;
          incr k
        end
      done;
      for j = 0 to !k - 1 do
        eval_comb t t.gen.(j)
      done;
      count_pass t ~evaluated:!k
    done
  end

let settle t =
  Exec.Budget.check t.budget;
  match t.nl.Netlist.nl_levels with
  | Some order -> settle_levelized t order
  | None -> settle_worklist t

let of_netlist ?(metrics = Telemetry.Metrics.null) ?(settle_budget = 1000)
    ?(budget = Exec.Budget.unlimited) nl =
  if settle_budget <= 0 then invalid_arg "Fast.create: settle_budget <= 0";
  let n = Array.length nl.Netlist.nl_names in
  let ncomb = Array.length nl.Netlist.nl_comb in
  let s_signals =
    List.init n (fun i -> (nl.Netlist.nl_names.(i), nl.Netlist.nl_types.(i)))
  in
  let t =
    {
      nl;
      vals = Array.copy nl.Netlist.nl_init;
      settle_budget;
      budget;
      dirty = Array.make (max ncomb 1) true;
      ndirty = ncomb;
      gen = Array.make (max ncomb 1) 0;
      pending_val = Array.make (max n 1) 0;
      pending_set = Array.make (max n 1) false;
      pending_touched = [];
      event_count = 0;
      delta_count = 0;
      skipped_count = 0;
      s_signals;
      s_metrics = metrics;
      m_events = Telemetry.Metrics.counter metrics "dsim.events";
      m_deltas = Telemetry.Metrics.counter metrics "dsim.delta_cycles";
      m_skipped = Telemetry.Metrics.counter metrics "dsim.skipped_evals";
    }
  in
  settle t;
  t

let create ?metrics ?settle_budget ?budget m =
  of_netlist ?metrics ?settle_budget ?budget (Netlist.compile m)

let module_of t = t.nl.Netlist.nl_module

let read_index t name =
  match Netlist.index t.nl name with
  | Some i -> i
  | None -> err "unknown signal %s" name

let get t name = t.vals.(read_index t name)

let get_enum t name =
  let i = read_index t name in
  let v = t.vals.(i) in
  match t.nl.Netlist.nl_types.(i) with
  | Htype.Enum lits -> (
    match List.nth_opt lits v with
    | Some lit -> lit
    | None -> err "enum value %d out of range for %s" v name)
  | Htype.Bit | Htype.Unsigned _ -> err "%s is not enum-typed" name

let set_input t name v =
  match Netlist.index t.nl name with
  | Some i ->
    write_now t i v;
    settle t
  | None -> err "assignment to unknown signal %s" name

(* Same mechanics as [set_input], but meant for fault injection: the
   target may be any signal, not just an input port.  A forced value on
   a comb-driven signal only survives until its driver re-evaluates —
   exactly the transient-fault semantics campaigns want. *)
let force t name v = set_input t name v

(* Non-blocking semantics: all sequential bodies read pre-edge values;
   writes land in the pending buffer and commit together afterwards
   (last write to a signal wins, first-touch order kept for
   determinism). *)
let pend t i v =
  if not t.pending_set.(i) then begin
    t.pending_set.(i) <- true;
    t.pending_touched <- i :: t.pending_touched
  end;
  t.pending_val.(i) <- v

let clock_edge t clock =
  Array.iter
    (fun (q : Netlist.seq) ->
      if String.equal q.Netlist.q_clock clock then begin
        t.event_count <- t.event_count + 1;
        Telemetry.Metrics.incr t.m_events;
        match q.Netlist.q_reset with
        | Some (ri, reset_body) when t.vals.(ri) <> 0 ->
          reset_body t.vals (fun i v -> pend t i v)
        | Some _ | None -> q.Netlist.q_body t.vals (fun i v -> pend t i v)
      end)
    t.nl.Netlist.nl_seq;
  List.iter
    (fun i ->
      t.pending_set.(i) <- false;
      write_now t i t.pending_val.(i))
    (List.rev t.pending_touched);
  t.pending_touched <- [];
  settle t

let cycle ?(inputs = []) t clock =
  List.iter
    (fun (name, v) ->
      match Netlist.index t.nl name with
      | Some i -> write_now t i v
      | None -> err "assignment to unknown signal %s" name)
    inputs;
  settle t;
  clock_edge t clock

let run t ~clock ~cycles =
  for _ = 1 to cycles do
    clock_edge t clock
  done

let events t = t.event_count
let delta_cycles t = t.delta_count
let skipped_evals t = t.skipped_count

let levelized t =
  match t.nl.Netlist.nl_levels with
  | Some _ -> true
  | None -> false

let metrics t = t.s_metrics
let signals t = t.s_signals

let snapshot t =
  Array.to_list
    (Array.map
       (fun i -> (t.nl.Netlist.nl_names.(i), t.vals.(i)))
       t.nl.Netlist.nl_snapshot)

let probe t =
  {
    Probe.pr_module = module_of t;
    pr_get = (fun name -> get t name);
    pr_signals = signals t;
  }
