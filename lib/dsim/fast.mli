(** Compiled event-driven simulator for flat RTL modules.

    Drop-in replacement for the reference interpreter {!Sim} (same
    surface, same [Sim.Simulation_error]), built on {!Netlist}: the
    module is lowered once to an integer-indexed netlist, and settling
    is sensitivity-driven — a signal→fanout map feeds only the
    combinational processes whose read set actually changed, instead of
    re-evaluating every process per delta cycle.  When the
    combinational dependency graph is acyclic (the common case for
    generated designs) one topologically ordered pass settles; cyclic
    graphs fall back to bounded worklist iteration with the same
    1000-round divergence guard as the reference.

    {!Sim} remains in-tree as the differential-testing oracle:
    [test/test_dsim_fast.ml] asserts byte-equal {!snapshot}s between
    the two engines under random stimulus, and E14 (bench) measures the
    throughput gap.

    {2 Telemetry semantics}

    The counters mirror the reference engine's names but count what the
    compiled engine actually does:

    - [dsim.events] — combinational/sequential process evaluations
      {e performed} plus effective signal updates (value actually
      changed).  Because settling skips clean processes, this grows
      slower than the reference engine's counter on the same stimulus.
    - [dsim.delta_cycles] — settling passes: exactly one per settle in
      levelized mode, one per worklist generation in fallback mode.
    - [dsim.skipped_evals] — process evaluations the all-processes
      reference strategy would have performed but event-driven settling
      skipped (per pass: processes minus evaluations).

    All three are monotonically non-decreasing over the life of the
    simulator; the test suite asserts this. *)

type t

val create :
  ?metrics:Telemetry.Metrics.t ->
  ?settle_budget:int ->
  ?budget:Exec.Budget.t ->
  Hdl.Module_.t ->
  t
(** Compile and settle.  [metrics] (default {!Telemetry.Metrics.null})
    receives the [dsim.events], [dsim.delta_cycles] and
    [dsim.skipped_evals] counters.  [settle_budget] (default 1000)
    bounds the worklist-fallback rounds per settle for cyclic comb
    graphs; exceeding it raises a [Sim.Simulation_error] that names the
    still-unstable signals.  [budget] (default
    {!Exec.Budget.unlimited}) is checkpointed once per settle pass —
    every [set_input]/[clock_edge]/[cycle] step, and the initial
    settle — so a cancelled simulation unwinds with
    {!Exec.Budget.Expired} before the next pass starts.
    @raise Sim.Simulation_error when the module has unresolved names or
    unknown enum literals (reported eagerly, at compile time), or when
    a combinational loop prevents settling within the budget.
    @raise Invalid_argument when [settle_budget <= 0]. *)

val of_netlist :
  ?metrics:Telemetry.Metrics.t ->
  ?settle_budget:int ->
  ?budget:Exec.Budget.t ->
  Netlist.t ->
  t
(** {!create} from an already-compiled netlist, skipping the lowering
    entirely — the warm path of the [socuml serve] artifact cache.  The
    netlist is shared, never mutated: simulator state lives in a
    private copy of the value array, so any number of simulators can
    run over one compiled netlist.
    @raise Sim.Simulation_error when a combinational loop prevents the
    initial settle within the budget.
    @raise Invalid_argument when [settle_budget <= 0]. *)

val module_of : t -> Hdl.Module_.t

val get : t -> string -> int
(** Current value of a signal or port.
    @raise Sim.Simulation_error for unknown names. *)

val get_enum : t -> string -> string
(** Current value of an enum-typed signal, as its literal name. *)

val set_input : t -> string -> int -> unit
(** Drive an input port (masked to the port width); affected
    combinational logic settles immediately. *)

val force : t -> string -> int -> unit
(** Fault-injection write: like {!set_input} but intended for any
    signal, including registers and comb-driven wires.  A forced value
    on a comb-driven signal only survives until its driver re-evaluates
    — transient-fault semantics.  Forcing a register flips stored state
    until the next clock edge overwrites it.
    @raise Sim.Simulation_error for unknown names. *)

val clock_edge : t -> string -> unit
(** One rising edge of the named clock: run all sequential processes on
    that clock, commit atomically, settle affected combinational
    logic. *)

val cycle : ?inputs:(string * int) list -> t -> string -> unit
(** [cycle t clk] = apply inputs, then one {!clock_edge}. *)

val run : t -> clock:string -> cycles:int -> unit

val events : t -> int
(** Evaluations performed + effective updates so far (see the telemetry
    note above). *)

val delta_cycles : t -> int
(** Settling passes so far. *)

val skipped_evals : t -> int
(** Evaluations avoided by event-driven settling so far. *)

val levelized : t -> bool
(** Whether the one-pass topological settling strategy is active
    (false: worklist fallback for a cyclic comb graph). *)

val metrics : t -> Telemetry.Metrics.t
(** The registry supplied at creation time. *)

val signals : t -> (string * Hdl.Htype.t) list
(** All simulated signals (ports first), declaration order. *)

val snapshot : t -> (string * int) list
(** All current values, sorted by name — byte-compatible with
    {!Sim.snapshot}. *)

val probe : t -> Probe.t
(** Read-only view for the {!Vcd} and {!Timing} renderers. *)
