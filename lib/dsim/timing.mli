(** Timing-diagram rendering (UML's 13th diagram type, grounded in the
    simulator).

    Records selected signals cycle by cycle and renders an ASCII timing
    diagram: bit signals as waveform lanes, vectors as value lanes with
    transitions marked.  Rendering reads through an engine-neutral
    {!Probe}, so the reference interpreter ({!Sim}) and the compiled
    engine ({!Fast}) produce byte-identical diagrams for identical
    simulated values.

    {v
      clk   : _#_#_#_#
      tick  : ______#_
      count :  0 1 2 3
    v} *)

type t

val create : ?signals:string list -> Sim.t -> t
(** Track the given signals (default: all ports, declaration order).
    @raise Sim.Simulation_error for unknown names. *)

val create_fast : ?signals:string list -> Fast.t -> t
(** Same, over the compiled engine. *)

val of_probe : ?signals:string list -> Probe.t -> t
(** Same, over any probe. *)

val sample : t -> unit
(** Record the current values as the next time step. *)

val length : t -> int
(** Samples recorded so far. *)

val render : t -> string
(** The diagram; one lane per signal, one column (or value cell) per
    sample. *)
