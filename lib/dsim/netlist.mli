(** Integer-indexed compiled form of a flat RTL module.

    {!Sim} is fully interpretive: every [Expr.Ref] is a string-keyed
    hash lookup, [type_of] re-walks the expression tree on every [eval]
    to recover widths, and settling re-evaluates every combinational
    process per delta cycle.  This module performs the whole of that
    work {e once}, at compile time:

    - signals and ports are interned to dense integer indices
      (declaration order, ports first), with per-signal write masks;
    - every expression is compiled to a closure over the value array,
      with widths, masks and enum encodings resolved statically — the
      hot path never consults a type again;
    - every process carries a precomputed read set and write set, from
      which a signal→readers fanout map is derived for event-driven
      settling;
    - the combinational processes are levelized: when the
      process-dependency graph is acyclic, [nl_levels] holds a
      topological evaluation order under which one ordered pass
      settles; a cyclic graph (e.g. latch-style processes that read
      their own outputs) yields [None] and the engine falls back to
      bounded worklist iteration.

    Value semantics are locked to the reference interpreter: the
    differential qcheck suite in [test/test_dsim_fast.ml] asserts
    byte-equal snapshots between {!Sim} and {!Fast} under random
    stimulus.  Compilation is stricter only about errors: names and
    enum literals that the interpreter would reject lazily at first
    evaluation are rejected eagerly at compile time
    (raising {!Sim.Simulation_error}). *)

type body = int array -> (int -> int -> unit) -> unit
(** A compiled statement list: [body vals write] evaluates over the
    current value array, emitting [(signal index, raw value)] pairs
    through [write].  Masking to the target width is the writer's
    responsibility (see [nl_mask]). *)

type comb = {
  c_name : string;
  c_reads : int array;  (** signal indices read anywhere in the body *)
  c_writes : int array;  (** signal indices assigned anywhere *)
  c_body : body;
}

type seq = {
  q_name : string;
  q_clock : string;  (** rising-edge clock signal name *)
  q_reads : int array;
      (** signal indices read anywhere in the clocked body (the reset
          branch is excluded — clock-domain analysis cares about the
          data path, not the reset path) *)
  q_writes : int array;  (** signal indices assigned in the clocked body *)
  q_reset : (int * body) option;
      (** synchronous reset signal index and compiled reset body *)
  q_body : body;
}

type t = {
  nl_module : Hdl.Module_.t;  (** the module this was compiled from *)
  nl_names : string array;  (** dense index -> name, declaration order *)
  nl_types : Hdl.Htype.t array;
  nl_index : (string, int) Hashtbl.t;  (** name -> dense index *)
  nl_init : int array;  (** masked initial values *)
  nl_mask : int array;
      (** per-signal write mask; [-1] (identity) for widths >= 62 *)
  nl_comb : comb array;  (** process-list order *)
  nl_seq : seq array;  (** process-list order *)
  nl_fanout : int array array;
      (** signal index -> indices into [nl_comb] whose read set
          contains it, ascending *)
  nl_levels : int array option;
      (** topological order over [nl_comb] indices, or [None] when the
          comb dependency graph has a cycle *)
  nl_snapshot : int array;
      (** signal indices sorted by name, duplicates removed — the
          iteration order of {!Fast.snapshot} *)
}

val mask_bits : int -> int
(** All-ones mask for a width: [(1 lsl w) - 1], or [-1] (every bit) for
    [w >= 62] where the shift would overflow OCaml's native int. *)

val compile : Hdl.Module_.t -> t
(** @raise Sim.Simulation_error on unresolved signal names, unknown
    enum literals, or assignments to undeclared targets — the same
    failures the interpreter reports, surfaced eagerly.  Callers must
    treat every array of the result as read-only. *)

val index : t -> string -> int option
(** Dense index of a signal or port name. *)
