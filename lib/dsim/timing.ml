type t = {
  probe : Probe.t;
  tracked : (string * Hdl.Htype.t) list;
  mutable samples : (string * int) list list;  (** reverse order *)
}

let of_probe ?signals probe =
  let tracked =
    match signals with
    | Some names ->
      List.map
        (fun name ->
          (* validate and fetch the type via the engine *)
          let _v = probe.Probe.pr_get name in
          let ty =
            match List.assoc_opt name probe.Probe.pr_signals with
            | Some ty -> ty
            | None -> Hdl.Htype.Bit
          in
          (name, ty))
        names
    | None ->
      List.map
        (fun (p : Hdl.Module_.port) ->
          (p.Hdl.Module_.port_name, p.Hdl.Module_.port_type))
        probe.Probe.pr_module.Hdl.Module_.mod_ports
  in
  { probe; tracked; samples = [] }

let create ?signals sim = of_probe ?signals (Sim.probe sim)
let create_fast ?signals fast = of_probe ?signals (Fast.probe fast)

let sample t =
  let snapshot =
    List.map (fun (name, _ty) -> (name, t.probe.Probe.pr_get name)) t.tracked
  in
  t.samples <- snapshot :: t.samples

let length t = List.length t.samples

let render t =
  let samples = List.rev t.samples in
  let buf = Buffer.create 1024 in
  let name_width =
    List.fold_left
      (fun acc (name, _) -> max acc (String.length name))
      3 t.tracked
  in
  let hex_width ty = max 1 ((Hdl.Htype.width ty + 3) / 4) in
  List.iter
    (fun (name, ty) ->
      Buffer.add_string buf (Printf.sprintf "%-*s : " name_width name);
      let is_bit = Hdl.Htype.width ty = 1 in
      let w = hex_width ty in
      let previous = ref None in
      List.iter
        (fun snapshot ->
          let v =
            match List.assoc_opt name snapshot with
            | Some v -> v
            | None -> 0
          in
          if is_bit then Buffer.add_char buf (if v = 0 then '_' else '#')
          else begin
            (match !previous with
             | Some old when old = v ->
               Buffer.add_string buf (String.make (w + 1) ' ')
             | Some _ | None ->
               Buffer.add_string buf (Printf.sprintf "|%0*X" w v));
            previous := Some v
          end)
        samples;
      Buffer.add_char buf '\n')
    t.tracked;
  Buffer.contents buf
