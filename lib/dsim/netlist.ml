open Hdl

let err fmt = Printf.ksprintf (fun m -> raise (Sim.Simulation_error m)) fmt

type body = int array -> (int -> int -> unit) -> unit

type comb = {
  c_name : string;
  c_reads : int array;
  c_writes : int array;
  c_body : body;
}

type seq = {
  q_name : string;
  q_clock : string;
  q_reads : int array;
  q_writes : int array;
  q_reset : (int * body) option;
  q_body : body;
}

type t = {
  nl_module : Module_.t;
  nl_names : string array;
  nl_types : Htype.t array;
  nl_index : (string, int) Hashtbl.t;
  nl_init : int array;
  nl_mask : int array;
  nl_comb : comb array;
  nl_seq : seq array;
  nl_fanout : int array array;
  nl_levels : int array option;
  nl_snapshot : int array;
}

(* OCaml's native int has 63 value bits; [1 lsl w] overflows the sign
   for w >= 62, so wide signals use the identity mask (raw ints), the
   same rule as [Sim.mask]. *)
let mask_bits w = if w >= 62 then -1 else (1 lsl w) - 1

(* Interning environment threaded through compilation. *)
type env = {
  e_index : (string, int) Hashtbl.t;
  e_types : Htype.t array;
  e_enum_of_lit : (string, int) Hashtbl.t;
}

let find env name = Hashtbl.find_opt env.e_index name

let read_index env name =
  match find env name with
  | Some i -> i
  | None -> err "unknown signal %s" name

let write_index env name =
  match find env name with
  | Some i -> i
  | None -> err "assignment to unknown signal %s" name

let enum_index env lit =
  match Hashtbl.find_opt env.e_enum_of_lit lit with
  | Some i -> i
  | None -> err "unknown enum literal %s" lit

(* Static replica of [Sim.type_of]: same joins, same [None] cases, so
   the compiled masks match the interpreter's dynamic ones exactly. *)
let rec static_type env (e : Expr.t) =
  match e with
  | Expr.Const (_, ty) -> Some ty
  | Expr.Ref name -> (
    match find env name with
    | Some i -> Some env.e_types.(i)
    | None -> None)
  | Expr.Enum_lit _ -> None
  | Expr.Unop (Expr.Not, e1) -> static_type env e1
  | Expr.Unop ((Expr.Reduce_or | Expr.Reduce_and), _) -> Some Htype.Bit
  | Expr.Binop (op, e1, e2) ->
    if Expr.is_boolean_op op then Some Htype.Bit
    else (
      match static_type env e1, static_type env e2 with
      | Some t1, Some t2 ->
        Some (Htype.Unsigned (max (Htype.width t1) (Htype.width t2)))
      | only1, only2 -> (
        match only1 with
        | Some _ -> only1
        | None -> only2))
  | Expr.Mux (_, a, b) -> (
    match static_type env a with
    | Some _ as ty -> ty
    | None -> static_type env b)
  | Expr.Slice (_, hi, lo) ->
    Some (if hi = lo then Htype.Bit else Htype.Unsigned (hi - lo + 1))
  | Expr.Concat (e1, e2) -> (
    match static_type env e1, static_type env e2 with
    | Some t1, Some t2 ->
      Some (Htype.Unsigned (Htype.width t1 + Htype.width t2))
    | _other1, _other2 -> None)
  | Expr.Resize (_, w) ->
    Some (if w = 1 then Htype.Bit else Htype.Unsigned w)

let type_mask ty = mask_bits (Htype.width ty)

(* Compile an expression to a closure over the value array.  Every
   branch resolves widths, masks and enum encodings here, once. *)
let rec compile_expr env (e : Expr.t) : int array -> int =
  match e with
  | Expr.Const (v, ty) ->
    let c = v land type_mask ty in
    fun _vals -> c
  | Expr.Enum_lit lit ->
    let i = enum_index env lit in
    fun _vals -> i
  | Expr.Ref name ->
    let i = read_index env name in
    fun vals -> Array.unsafe_get vals i
  | Expr.Unop (Expr.Not, e1) -> (
    let f = compile_expr env e1 in
    match static_type env e1 with
    | Some ty ->
      let m = type_mask ty in
      fun vals -> lnot (f vals) land m
    | None -> fun vals -> lnot (f vals) land 1)
  | Expr.Unop (Expr.Reduce_or, e1) ->
    let f = compile_expr env e1 in
    fun vals -> if f vals <> 0 then 1 else 0
  | Expr.Unop (Expr.Reduce_and, e1) -> (
    let f = compile_expr env e1 in
    match static_type env e1 with
    | Some ty ->
      let top = Htype.max_value ty in
      fun vals -> if f vals = top then 1 else 0
    | None -> fun vals -> f vals land 1)
  | Expr.Binop (op, e1, e2) -> compile_binop env op e1 e2
  | Expr.Mux (c, a, b) ->
    let fc = compile_expr env c in
    let fa = compile_expr env a in
    let fb = compile_expr env b in
    fun vals -> if fc vals <> 0 then fa vals else fb vals
  | Expr.Slice (e1, hi, lo) ->
    let f = compile_expr env e1 in
    let m = mask_bits (hi - lo + 1) in
    fun vals -> (f vals lsr lo) land m
  | Expr.Concat (e1, e2) -> (
    let f1 = compile_expr env e1 in
    let f2 = compile_expr env e2 in
    match static_type env e2 with
    | Some ty2 ->
      let shift = Htype.width ty2 in
      let m2 = type_mask ty2 in
      fun vals -> (f1 vals lsl shift) lor (f2 vals land m2)
    | None -> fun vals -> (f1 vals lsl 1) lor (f2 vals land 1))
  | Expr.Resize (e1, w) ->
    let f = compile_expr env e1 in
    let m = mask_bits w in
    fun vals -> f vals land m

and compile_binop env op e1 e2 =
  let f1 = compile_expr env e1 in
  let f2 = compile_expr env e2 in
  let wide =
    match static_type env e1, static_type env e2 with
    | Some t1, Some t2 ->
      Htype.Unsigned (max (Htype.width t1) (Htype.width t2))
    | Some t1, None -> t1
    | None, Some t2 -> t2
    | None, None -> Htype.Unsigned 62
  in
  let m = type_mask wide in
  match op with
  | Expr.And -> fun vals -> f1 vals land f2 vals
  | Expr.Or -> fun vals -> f1 vals lor f2 vals
  | Expr.Xor -> fun vals -> f1 vals lxor f2 vals
  | Expr.Add -> fun vals -> (f1 vals + f2 vals) land m
  | Expr.Sub -> fun vals -> (f1 vals - f2 vals) land m
  | Expr.Mul -> fun vals -> f1 vals * f2 vals land m
  | Expr.Eq -> fun vals -> if f1 vals = f2 vals then 1 else 0
  | Expr.Neq -> fun vals -> if f1 vals <> f2 vals then 1 else 0
  | Expr.Lt -> fun vals -> if f1 vals < f2 vals then 1 else 0
  | Expr.Le -> fun vals -> if f1 vals <= f2 vals then 1 else 0
  | Expr.Gt -> fun vals -> if f1 vals > f2 vals then 1 else 0
  | Expr.Ge -> fun vals -> if f1 vals >= f2 vals then 1 else 0
  | Expr.Shl -> fun vals -> (f1 vals lsl min (f2 vals) 62) land m
  | Expr.Shr -> fun vals -> f1 vals lsr min (f2 vals) 62

let rec compile_stmt env (s : Stmt.t) : body =
  match s with
  | Stmt.Null -> fun _vals _write -> ()
  | Stmt.Assign (target, e) ->
    let ti = write_index env target in
    let f = compile_expr env e in
    fun vals write -> write ti (f vals)
  | Stmt.If (c, t_branch, e_branch) ->
    let fc = compile_expr env c in
    let ft = compile_body env t_branch in
    let fe = compile_body env e_branch in
    fun vals write ->
      if fc vals <> 0 then ft vals write else fe vals write
  | Stmt.Case (sel, branches, default) ->
    let fsel = compile_expr env sel in
    let comp =
      Array.of_list
        (List.map
           (fun (choice, branch_body) ->
             let v =
               match choice with
               | Stmt.Ch_int i -> i
               | Stmt.Ch_enum lit -> enum_index env lit
             in
             (v, compile_body env branch_body))
           branches)
    in
    let fdefault =
      match default with
      | Some d -> compile_body env d
      | None -> fun _vals _write -> ()
    in
    let n = Array.length comp in
    fun vals write ->
      let v = fsel vals in
      let rec scan i =
        if i >= n then fdefault vals write
        else (
          let choice, branch = comp.(i) in
          if choice = v then branch vals write else scan (i + 1))
      in
      scan 0

and compile_body env stmts : body =
  match List.map (compile_stmt env) stmts with
  | [] -> fun _vals _write -> ()
  | [ one ] -> one
  | many ->
    let arr = Array.of_list many in
    fun vals write -> Array.iter (fun s -> s vals write) arr

(* Read/write sets as sorted, deduplicated index arrays. *)
let index_set env names =
  let ids = List.filter_map (fun n -> find env n) names in
  Array.of_list (List.sort_uniq compare ids)

(* Topological order over comb processes (edge p -> q when p writes a
   signal q reads, including self-loops); [None] on any cycle.  The
   repeated min-index scan keeps the order deterministic; process
   counts are small enough that O(n^2) is irrelevant. *)
let levelize (comb : comb array) nsignals =
  let n = Array.length comb in
  let writers = Array.make nsignals [] in
  Array.iteri
    (fun p c ->
      Array.iter (fun s -> writers.(s) <- p :: writers.(s)) c.c_writes)
    comb;
  let succs = Array.make n [] in
  let indegree = Array.make n 0 in
  Array.iteri
    (fun q c ->
      Array.iter
        (fun s ->
          List.iter
            (fun p ->
              if not (List.mem q succs.(p)) then begin
                succs.(p) <- q :: succs.(p);
                indegree.(q) <- indegree.(q) + 1
              end)
            writers.(s))
        c.c_reads)
    comb;
  let order = Array.make n 0 in
  let placed = Array.make n false in
  let exception Cyclic in
  match
    for slot = 0 to n - 1 do
      let next = ref (-1) in
      for p = n - 1 downto 0 do
        if (not placed.(p)) && indegree.(p) = 0 then next := p
      done;
      if !next < 0 then raise Cyclic;
      placed.(!next) <- true;
      order.(slot) <- !next;
      List.iter (fun q -> indegree.(q) <- indegree.(q) - 1) succs.(!next)
    done
  with
  | () -> Some order
  | exception Cyclic -> None

let compile (m : Module_.t) =
  let decls =
    List.map
      (fun (p : Module_.port) -> (p.Module_.port_name, p.Module_.port_type, 0))
      m.Module_.mod_ports
    @ List.map
        (fun (s : Module_.signal) ->
          let init =
            match s.Module_.sig_init with
            | Some v -> v
            | None -> 0
          in
          (s.Module_.sig_name, s.Module_.sig_type, init))
        m.Module_.mod_signals
  in
  let n = List.length decls in
  let names = Array.make n "" in
  let types = Array.make n Htype.Bit in
  let init = Array.make n 0 in
  let masks = Array.make n 0 in
  let index = Hashtbl.create (2 * n) in
  let enum_of_lit = Hashtbl.create 16 in
  List.iteri
    (fun i (name, ty, v) ->
      names.(i) <- name;
      types.(i) <- ty;
      masks.(i) <- type_mask ty;
      init.(i) <- v land masks.(i);
      (* duplicate declarations resolve to the later slot, matching the
         interpreter's Hashtbl.replace *)
      Hashtbl.replace index name i;
      match ty with
      | Htype.Enum lits ->
        List.iteri (fun k l -> Hashtbl.replace enum_of_lit l k) lits
      | Htype.Bit | Htype.Unsigned _ -> ())
    decls;
  let env = { e_index = index; e_types = types; e_enum_of_lit = enum_of_lit } in
  let comb = ref [] in
  let seq = ref [] in
  List.iter
    (fun p ->
      match p with
      | Module_.Comb cp ->
        comb :=
          {
            c_name = cp.Module_.cp_name;
            c_reads = index_set env (Stmt.read cp.Module_.cp_body);
            c_writes = index_set env (Stmt.assigned cp.Module_.cp_body);
            c_body = compile_body env cp.Module_.cp_body;
          }
          :: !comb
      | Module_.Seq sp ->
        seq :=
          {
            q_name = sp.Module_.sp_name;
            q_clock = sp.Module_.sp_clock;
            q_reads = index_set env (Stmt.read sp.Module_.sp_body);
            q_writes = index_set env (Stmt.assigned sp.Module_.sp_body);
            q_reset =
              (match sp.Module_.sp_reset with
               | Some (rst, reset_body) ->
                 Some (read_index env rst, compile_body env reset_body)
               | None -> None);
            q_body = compile_body env sp.Module_.sp_body;
          }
          :: !seq)
    m.Module_.mod_processes;
  let comb = Array.of_list (List.rev !comb) in
  let seq = Array.of_list (List.rev !seq) in
  let fanout_lists = Array.make n [] in
  Array.iteri
    (fun p c ->
      Array.iter
        (fun s -> fanout_lists.(s) <- p :: fanout_lists.(s))
        c.c_reads)
    comb;
  let fanout =
    Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) fanout_lists
  in
  let snapshot =
    let by_name =
      List.sort_uniq String.compare (Array.to_list names)
    in
    Array.of_list (List.map (fun name -> Hashtbl.find index name) by_name)
  in
  {
    nl_module = m;
    nl_names = names;
    nl_types = types;
    nl_index = index;
    nl_init = init;
    nl_mask = masks;
    nl_comb = comb;
    nl_seq = seq;
    nl_fanout = fanout;
    nl_levels = levelize comb n;
    nl_snapshot = snapshot;
  }

let index t name = Hashtbl.find_opt t.nl_index name
