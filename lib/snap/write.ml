let to_string m =
  let e = Wire.Enc.create () in
  Codec.enc_model e m;
  Wire.Enc.contents e

let write_file m path =
  let oc = open_out_bin path in
  (match output_string oc (to_string m) with
   | () -> close_out oc
   | exception e ->
     close_out_noerr oc;
     raise e)
