(** Binary wire substrate for model snapshots.

    A snapshot is [magic] + one version byte + an interned string table
    + the body.  The table holds every distinct string once, in first
    encode order; the body refers to strings by table index, so
    identifiers and names repeated across references cost one varint.
    Both sides are fully deterministic: the same model always produces
    the same bytes (the write∘read∘write identity tested in
    [test_snap]). *)

val magic : string
(** First bytes of every snapshot; starts with a non-ASCII byte so no
    XMI/XML document can collide. *)

val format_version : int
(** Version byte written after the magic; {!Read.model_of_string}
    rejects everything else. *)

exception Decode_error of string

val decode_error : ('a, unit, string, 'b) format4 -> 'a

val add_varint : Buffer.t -> int -> unit
(** Unsigned LEB128.  @raise Invalid_argument on negative input. *)

(** Encoder: primitives append to an internal body buffer; {!Enc.str}
    interns.  {!Enc.contents} assembles header + table + body. *)
module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  val int : t -> int -> unit
  (** Arbitrary-sign integers: zigzag onto the full 63-bit pattern
      space, then LEB128 — every [int] round-trips, [min_int] and
      [max_int] included. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  (** IEEE bits, big-endian — round-trips every float exactly. *)

  val str : t -> string -> unit
  (** Interned: writes the table index, adding the string on first use. *)

  val opt : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val string_count : t -> int
  val body_bytes : t -> int
  val contents : t -> string
end

(** Decoder over a raw byte string; every primitive bounds-checks and
    raises {!Decode_error} on truncation or malformed input. *)
module Dec : sig
  type t

  val make : ?pos:int -> string -> t
  val set_table : t -> string array -> unit
  val pos : t -> int
  val at_end : t -> bool
  val u8 : t -> int

  val varint : t -> int
  (** Always non-negative: encodings that set bit 62 (the native sign
      bit) raise {!Decode_error}, so counts, lengths and table indices
      decoded through this can never go negative. *)

  val int : t -> int
  (** Full-range signed int (inverse of {!Enc.int}). *)

  val bool : t -> bool
  val float : t -> float
  val raw_string : t -> string
  (** Length-prefixed bytes (used only for the table itself). *)

  val string_table : t -> int -> unit
  (** Bulk-decode [count] length-prefixed strings at the current
      position and install them as the reference table for {!str}.
      Equivalent to [count] calls to {!raw_string} + {!set_table}, but
      one tight loop.  @raise Decode_error on truncation. *)

  val str : t -> string
  (** Table reference; bounds-checked. *)

  val opt : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
end
