(** Per-type binary codecs for the full {!Uml.Model} metamodel.

    Mirrors the structure of [Xmi.Codec]/[Xmi.Write]/[Xmi.Read]: one
    [enc_]/[dec_] pair per metamodel type, composed bottom-up from the
    {!Wire} primitives.  Variants with payloads carry an explicit one-byte
    tag in declaration order; pure enums reuse the canonical
    [Xmi.Codec.all_*] lists (wire tag = list position), so the binary and
    XMI formats can never disagree on an enum inventory.  Decoders raise
    {!Wire.Decode_error} on unknown tags; {!Read} wraps that (and the
    duplicate-identifier [Invalid_argument] from [Uml.Model.add]) into its
    own [Import_error]. *)

val enc_ident : Wire.Enc.t -> Uml.Ident.t -> unit
val dec_ident : Wire.Dec.t -> Uml.Ident.t
val enc_vspec : Wire.Enc.t -> Uml.Vspec.t -> unit
val dec_vspec : Wire.Dec.t -> Uml.Vspec.t
val enc_dtype : Wire.Enc.t -> Uml.Dtype.t -> unit
val dec_dtype : Wire.Dec.t -> Uml.Dtype.t
val enc_mult : Wire.Enc.t -> Uml.Mult.t -> unit
val dec_mult : Wire.Dec.t -> Uml.Mult.t
val enc_property : Wire.Enc.t -> Uml.Classifier.property -> unit
val dec_property : Wire.Dec.t -> Uml.Classifier.property
val enc_operation : Wire.Enc.t -> Uml.Classifier.operation -> unit
val dec_operation : Wire.Dec.t -> Uml.Classifier.operation
val enc_classifier : Wire.Enc.t -> Uml.Classifier.t -> unit
val dec_classifier : Wire.Dec.t -> Uml.Classifier.t
val enc_association : Wire.Enc.t -> Uml.Classifier.association -> unit
val dec_association : Wire.Dec.t -> Uml.Classifier.association
val enc_package : Wire.Enc.t -> Uml.Pkg.t -> unit
val dec_package : Wire.Dec.t -> Uml.Pkg.t
val enc_trigger : Wire.Enc.t -> Uml.Smachine.trigger -> unit
val dec_trigger : Wire.Dec.t -> Uml.Smachine.trigger
val enc_vertex : Wire.Enc.t -> Uml.Smachine.vertex -> unit
val dec_vertex : Wire.Dec.t -> Uml.Smachine.vertex
val enc_state_machine : Wire.Enc.t -> Uml.Smachine.t -> unit
val dec_state_machine : Wire.Dec.t -> Uml.Smachine.t
val enc_activity : Wire.Enc.t -> Uml.Activityg.t -> unit
val dec_activity : Wire.Dec.t -> Uml.Activityg.t
val enc_interaction : Wire.Enc.t -> Uml.Interaction.t -> unit
val dec_interaction : Wire.Dec.t -> Uml.Interaction.t
val enc_use_case : Wire.Enc.t -> Uml.Usecase.t -> unit
val dec_use_case : Wire.Dec.t -> Uml.Usecase.t
val enc_component : Wire.Enc.t -> Uml.Component.t -> unit
val dec_component : Wire.Dec.t -> Uml.Component.t
val enc_instance : Wire.Enc.t -> Uml.Instance.t -> unit
val dec_instance : Wire.Dec.t -> Uml.Instance.t
val enc_link : Wire.Enc.t -> Uml.Instance.link -> unit
val dec_link : Wire.Dec.t -> Uml.Instance.link
val enc_deployment_node : Wire.Enc.t -> Uml.Deployment.node -> unit
val dec_deployment_node : Wire.Dec.t -> Uml.Deployment.node
val enc_profile : Wire.Enc.t -> Uml.Profile.t -> unit
val dec_profile : Wire.Dec.t -> Uml.Profile.t
val enc_application : Wire.Enc.t -> Uml.Profile.application -> unit
val dec_application : Wire.Dec.t -> Uml.Profile.application
val enc_diagram : Wire.Enc.t -> Uml.Diagram.t -> unit
val dec_diagram : Wire.Dec.t -> Uml.Diagram.t
val enc_element : Wire.Enc.t -> Uml.Model.element -> unit
val dec_element : Wire.Dec.t -> Uml.Model.element

val enc_model : Wire.Enc.t -> Uml.Model.t -> unit
(** Encode the whole model body (name, elements, applications,
    diagrams) into the encoder; header and string table are added by
    [Wire.Enc.contents]. *)

val dec_model : Wire.Dec.t -> Uml.Model.t
(** Inverse of {!enc_model}; assumes the string table is installed.
    @raise Wire.Decode_error on malformed input.
    @raise Invalid_argument on duplicate element identifiers. *)
