let magic = "\xd3SUMB"
let format_version = 1

exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let add_varint buf v =
  if v < 0 then invalid_arg "Snap.Wire.add_varint: negative value";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* LEB128 over a raw 63-bit pattern: zigzag maps |v| >= 2^61 onto
   patterns with bit 62 (the native sign bit) set, so the loop shifts
   with [lsr] to stay total on "negative" inputs.  Emits the same bytes
   as [add_varint] whenever the pattern is non-negative. *)
let add_varint63 buf v =
  let rec go v =
    if 0 <= v && v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

module Enc = struct
  type t = {
    body : Buffer.t;
    index : (string, int) Hashtbl.t;
    mutable pool : string list;  (* interned strings, reverse index order *)
    mutable next : int;
  }

  let create () =
    { body = Buffer.create 4096; index = Hashtbl.create 256; pool = [];
      next = 0 }

  let intern e s =
    match Hashtbl.find_opt e.index s with
    | Some i -> i
    | None ->
      let i = e.next in
      Hashtbl.add e.index s i;
      e.pool <- s :: e.pool;
      e.next <- i + 1;
      i

  let u8 e v = Buffer.add_char e.body (Char.chr (v land 0xff))
  let varint e v = add_varint e.body v

  (* zigzag: order-preserving bijection from int onto the 63-bit
     pattern space, so small magnitudes of either sign stay short.
     [v lsl 1] intentionally wraps for |v| >= 2^61 — the xor folds the
     sign back in and [add_varint63] carries the full pattern, so every
     int round-trips, [min_int] and [max_int] included. *)
  let int e v = add_varint63 e.body ((v lsl 1) lxor (v asr 62))
  let bool e b = u8 e (if b then 1 else 0)

  let float e f =
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.bits_of_float f);
    Buffer.add_bytes e.body b

  let str e s = varint e (intern e s)

  let opt e f v =
    match v with
    | None -> bool e false
    | Some v ->
      bool e true;
      f e v

  let list e f vs =
    varint e (List.length vs);
    List.iter (f e) vs

  let string_count e = e.next
  let body_bytes e = Buffer.length e.body

  let contents e =
    let out = Buffer.create (Buffer.length e.body + 1024) in
    Buffer.add_string out magic;
    Buffer.add_char out (Char.chr format_version);
    add_varint out e.next;
    List.iter
      (fun s ->
        add_varint out (String.length s);
        Buffer.add_string out s)
      (List.rev e.pool);
    Buffer.add_buffer out e.body;
    Buffer.contents out
end

module Dec = struct
  type t = {
    data : string;
    len : int;
    mutable pos : int;
    mutable table : string array;
  }

  let make ?(pos = 0) data = { data; len = String.length data; pos; table = [||] }
  let set_table d table = d.table <- table
  let pos d = d.pos
  let at_end d = d.pos >= d.len

  let u8 d =
    if d.pos >= d.len then
      decode_error "truncated snapshot (input ends at byte %d)" d.pos;
    (* in bounds by the check above *)
    let c = Char.code (String.unsafe_get d.data d.pos) in
    d.pos <- d.pos + 1;
    c

  let rec varint_loop d pos shift acc =
    if pos >= d.len then
      decode_error "truncated snapshot (input ends at byte %d)" pos;
    if shift > 62 then decode_error "varint overflow at byte %d" pos;
    let b = Char.code (String.unsafe_get d.data pos) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then begin
      d.pos <- pos + 1;
      acc
    end
    else varint_loop d (pos + 1) (shift + 7) acc

  let varint d =
    (* fast path: one-byte varints dominate every stream (tags, small
       counts, string references), so skip the loop setup for them *)
    let pos = d.pos in
    if pos >= d.len then
      decode_error "truncated snapshot (input ends at byte %d)" pos;
    let b = Char.code (String.unsafe_get d.data pos) in
    if b < 0x80 then begin
      d.pos <- pos + 1;
      b
    end
    else begin
      let v = varint_loop d pos 0 0 in
      (* bit 62 is the native sign bit: a 9-byte varint whose top
         payload bit is set decodes negative and would sail through
         every [<= bound] check downstream (negative list counts,
         negative string references) — reject it here *)
      if v < 0 then decode_error "varint overflow at byte %d" pos;
      v
    end

  (* like [varint] but admits patterns with bit 62 set: zigzag ints
     occupy the full 63-bit space, and the unzigzag in [int] is a
     bijection on it, so no sign check applies *)
  let varint63 d =
    let pos = d.pos in
    if pos >= d.len then
      decode_error "truncated snapshot (input ends at byte %d)" pos;
    let b = Char.code (String.unsafe_get d.data pos) in
    if b < 0x80 then begin
      d.pos <- pos + 1;
      b
    end
    else varint_loop d pos 0 0

  let int d =
    let u = varint63 d in
    (u lsr 1) lxor (-(u land 1))

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | other -> decode_error "bad boolean byte 0x%02x" other

  let float d =
    if d.pos + 8 > d.len then
      decode_error "truncated snapshot (float at byte %d)" d.pos;
    let bits = String.get_int64_be d.data d.pos in
    d.pos <- d.pos + 8;
    Int64.float_of_bits bits

  let raw_string d =
    let n = varint d in
    (* subtraction, not [d.pos + n > d.len]: the addition can wrap for
       n near max_int and slip past the check ([varint] keeps n >= 0) *)
    if n > d.len - d.pos then
      decode_error "truncated snapshot (string of %d bytes at byte %d)" n
        d.pos;
    let s = String.sub d.data d.pos n in
    d.pos <- d.pos + n;
    s

  let str d =
    let i = varint d in
    (* [varint] already rejects negative results; the [i < 0] leg is
       belt-and-braces for the unsafe_get below *)
    if i < 0 || i >= Array.length d.table then
      decode_error "string reference %d out of range (table has %d)" i
        (Array.length d.table);
    (* in bounds by the check above *)
    Array.unsafe_get d.table i

  (* Bulk string-table decode: one allocation per interned string makes
     this the hottest single loop in a load, so the one-byte length
     fast path is inlined rather than going through [raw_string]. *)
  let string_table d count =
    let data = d.data and len = d.len in
    let table = Array.make count "" in
    let pos = ref d.pos in
    for i = 0 to count - 1 do
      let p = !pos in
      if p >= len then
        decode_error "truncated snapshot (input ends at byte %d)" p;
      let b = Char.code (String.unsafe_get data p) in
      let n, p =
        if b < 0x80 then (b, p + 1)
        else begin
          d.pos <- p;
          let n = varint d in
          (n, d.pos)
        end
      in
      if n > len - p then
        decode_error "truncated snapshot (string of %d bytes at byte %d)" n p;
      Array.unsafe_set table i (String.sub data p n);
      pos := p + n
    done;
    d.pos <- !pos;
    d.table <- table

  let opt d f = if bool d then Some (f d) else None

  (* Top-level recursion, not closures nested in [list]: a nested
     [let rec] capturing [f] and [d] allocates per call, and list decode
     runs several times per record.  Direct construction keeps the cost
     at one cons per item; accumulate-and-reverse would double it.
     Hostile counts can reach the input length, so deep lists fall back
     to the tail-recursive shape to bound the stack. *)
  let rec list_direct d f k =
    if k = 0 then []
    else
      let x = f d in
      x :: list_direct d f (k - 1)

  let rec list_deep d f k acc =
    if k = 0 then List.rev acc else list_deep d f (k - 1) (f d :: acc)

  let list d f =
    let n = varint d in
    if n = 0 then []
    else if n <= 4096 then list_direct d f n
    else list_deep d f n []
end
