exception Import_error of string

let import_error fmt = Printf.ksprintf (fun m -> raise (Import_error m)) fmt

let is_snapshot data =
  let n = String.length Wire.magic in
  String.length data >= n && String.equal (String.sub data 0 n) Wire.magic

let model_of_string data =
  if not (is_snapshot data) then
    import_error "not a model snapshot (bad magic bytes)";
  let d = Wire.Dec.make ~pos:(String.length Wire.magic) data in
  match
    let version = Wire.Dec.u8 d in
    if version <> Wire.format_version then
      Wire.decode_error
        "unsupported snapshot format version %d (this build reads version %d)"
        version Wire.format_version;
    let count = Wire.Dec.varint d in
    (* each table entry costs at least one byte, so a count beyond the
       remaining input is hostile — reject before allocating *)
    if count > String.length data - Wire.Dec.pos d then
      Wire.decode_error "string table count %d exceeds input size" count;
    Wire.Dec.string_table d count;
    let m = Codec.dec_model d in
    if not (Wire.Dec.at_end d) then
      Wire.decode_error "trailing bytes after model body (at byte %d)"
        (Wire.Dec.pos d);
    m
  with
  | m -> m
  | exception Wire.Decode_error msg ->
    import_error "corrupt snapshot: %s" msg
  | exception Invalid_argument msg ->
    (* duplicate element identifier from [Uml.Model.add] *)
    import_error "corrupt snapshot: %s" msg

let read_file path =
  let ic = open_in_bin path in
  let data =
    match really_input_string ic (in_channel_length ic) with
    | data ->
      close_in ic;
      data
    | exception e ->
      close_in_noerr ic;
      raise e
  in
  model_of_string data
