open Uml
module Enc = Wire.Enc
module Dec = Wire.Dec

(* --- primitives -------------------------------------------------------- *)

let enc_ident e id = Enc.str e (Ident.to_string id)
let dec_ident d = Ident.of_string (Dec.str d)
let enc_ident_pair e (a, b) = enc_ident e a; enc_ident e b
let dec_ident_pair d =
  let a = dec_ident d in
  let b = dec_ident d in
  (a, b)

(* Pure enums carry no payload, so their wire tag is the position in the
   canonical [Xmi.Codec.all_*] list — one byte, and provably the same
   inventory the XMI reader/writer uses.  [Stdlib.(=)] is safe here:
   every canonical list holds constant constructors only. *)
let tag_index all v =
  let rec go i = function
    | [] -> invalid_arg "Snap.Codec.enc_tag: value not in canonical list"
    | x :: rest -> if x = v then i else go (i + 1) rest
  in
  go 0 all

let enc_tag e all v = Enc.u8 e (tag_index all v)

(* The decoder indexes the canonical lists as arrays: tag decode sits on
   the hot path of every record, and [List.nth_opt] both walks the list
   and allocates an option per call. *)
let dec_tag d what all =
  let t = Dec.u8 d in
  if t >= Array.length all then
    Wire.decode_error "unknown %s tag %d" what t;
  Array.unsafe_get all t

let arr_visibilities = Array.of_list Xmi.Codec.all_visibilities
let arr_aggregations = Array.of_list Xmi.Codec.all_aggregations
let arr_directions = Array.of_list Xmi.Codec.all_directions
let arr_transition_kinds = Array.of_list Xmi.Codec.all_transition_kinds
let arr_pseudostate_kinds = Array.of_list Xmi.Codec.all_pseudostate_kinds
let arr_edge_kinds = Array.of_list Xmi.Codec.all_edge_kinds
let arr_message_sorts = Array.of_list Xmi.Codec.all_message_sorts
let arr_connector_kinds = Array.of_list Xmi.Codec.all_connector_kinds
let arr_node_kinds = Array.of_list Xmi.Codec.all_node_kinds
let arr_metaclasses = Array.of_list Xmi.Codec.all_metaclasses
let arr_diagram_kinds = Array.of_list Xmi.Codec.all_diagram_kinds

(* --- values, types, multiplicities ------------------------------------ *)

let enc_vspec e (v : Vspec.t) =
  match v with
  | Vspec.Int_literal i -> Enc.u8 e 0; Enc.int e i
  | Vspec.Real_literal r -> Enc.u8 e 1; Enc.float e r
  | Vspec.Bool_literal b -> Enc.u8 e 2; Enc.bool e b
  | Vspec.String_literal s -> Enc.u8 e 3; Enc.str e s
  | Vspec.Enum_literal s -> Enc.u8 e 4; Enc.str e s
  | Vspec.Null_literal -> Enc.u8 e 5
  | Vspec.Opaque_expression s -> Enc.u8 e 6; Enc.str e s

let dec_vspec d : Vspec.t =
  match Dec.u8 d with
  | 0 -> Vspec.Int_literal (Dec.int d)
  | 1 -> Vspec.Real_literal (Dec.float d)
  | 2 -> Vspec.Bool_literal (Dec.bool d)
  | 3 -> Vspec.String_literal (Dec.str d)
  | 4 -> Vspec.Enum_literal (Dec.str d)
  | 5 -> Vspec.Null_literal
  | 6 -> Vspec.Opaque_expression (Dec.str d)
  | n -> Wire.decode_error "unknown value tag %d" n

let enc_dtype e (t : Dtype.t) =
  match t with
  | Dtype.Boolean -> Enc.u8 e 0
  | Dtype.Integer -> Enc.u8 e 1
  | Dtype.Real -> Enc.u8 e 2
  | Dtype.Unlimited_natural -> Enc.u8 e 3
  | Dtype.String_type -> Enc.u8 e 4
  | Dtype.Void -> Enc.u8 e 5
  | Dtype.Ref id -> Enc.u8 e 6; enc_ident e id

let dec_dtype d : Dtype.t =
  match Dec.u8 d with
  | 0 -> Dtype.Boolean
  | 1 -> Dtype.Integer
  | 2 -> Dtype.Real
  | 3 -> Dtype.Unlimited_natural
  | 4 -> Dtype.String_type
  | 5 -> Dtype.Void
  | 6 -> Dtype.Ref (dec_ident d)
  | n -> Wire.decode_error "unknown type tag %d" n

let enc_mult e (m : Mult.t) =
  Enc.int e m.Mult.lower;
  match m.Mult.upper with
  | Mult.Bounded n -> Enc.u8 e 0; Enc.int e n
  | Mult.Unbounded -> Enc.u8 e 1

let dec_mult d : Mult.t =
  let lower = Dec.int d in
  let upper =
    match Dec.u8 d with
    | 0 -> Mult.Bounded (Dec.int d)
    | 1 -> Mult.Unbounded
    | n -> Wire.decode_error "unknown multiplicity bound tag %d" n
  in
  { Mult.lower; upper }

(* --- classifiers ------------------------------------------------------- *)

(* Hot record types (properties, parameters, operations, classifiers —
   the bulk of every structural model) pack their enum tags, booleans
   and option/common-case markers into one flags byte instead of one
   byte-read per field: record decode is call-bound, not byte-bound,
   and this roughly halves the per-record primitive reads.  The decoder
   rejects flag patterns outside the canonical inventories (and the
   writer can never produce them), so hostile bytes still fail fast. *)

let mult_1_1 : Mult.t = { Mult.lower = 1; upper = Mult.Bounded 1 }

let enc_property e (p : Classifier.property) =
  enc_ident e p.Classifier.prop_id;
  Enc.str e p.Classifier.prop_name;
  enc_dtype e p.Classifier.prop_type;
  let flags =
    tag_index Xmi.Codec.all_visibilities p.Classifier.prop_visibility
    lor (if p.Classifier.prop_is_static then 0x04 else 0)
    lor (if p.Classifier.prop_is_read_only then 0x08 else 0)
    lor (tag_index Xmi.Codec.all_aggregations p.Classifier.prop_aggregation
         lsl 4)
    lor (match p.Classifier.prop_default with None -> 0 | Some _ -> 0x40)
    lor (if Mult.equal p.Classifier.prop_mult mult_1_1 then 0 else 0x80)
  in
  Enc.u8 e flags;
  if flags land 0x80 <> 0 then enc_mult e p.Classifier.prop_mult;
  match p.Classifier.prop_default with
  | None -> ()
  | Some v -> enc_vspec e v

let dec_property d =
  let prop_id = dec_ident d in
  let prop_name = Dec.str d in
  let prop_type = dec_dtype d in
  let flags = Dec.u8 d in
  let aggr = (flags lsr 4) land 0x03 in
  if aggr >= Array.length arr_aggregations then
    Wire.decode_error "unknown aggregation tag %d" aggr;
  let prop_mult = if flags land 0x80 <> 0 then dec_mult d else mult_1_1 in
  let prop_default =
    if flags land 0x40 <> 0 then Some (dec_vspec d) else None
  in
  { Classifier.prop_id; prop_name; prop_type; prop_mult; prop_default;
    prop_visibility = Array.unsafe_get arr_visibilities (flags land 0x03);
    prop_is_static = flags land 0x04 <> 0;
    prop_is_read_only = flags land 0x08 <> 0;
    prop_aggregation = Array.unsafe_get arr_aggregations aggr }

let enc_parameter e (p : Classifier.parameter) =
  enc_ident e p.Classifier.param_id;
  Enc.str e p.Classifier.param_name;
  enc_dtype e p.Classifier.param_type;
  let flags =
    tag_index Xmi.Codec.all_directions p.Classifier.param_direction
    lor (match p.Classifier.param_default with None -> 0 | Some _ -> 0x04)
  in
  Enc.u8 e flags;
  match p.Classifier.param_default with
  | None -> ()
  | Some v -> enc_vspec e v

let dec_parameter d =
  let param_id = dec_ident d in
  let param_name = Dec.str d in
  let param_type = dec_dtype d in
  let flags = Dec.u8 d in
  if flags land 0xf8 <> 0 then
    Wire.decode_error "unknown parameter flag byte 0x%02x" flags;
  let param_default =
    if flags land 0x04 <> 0 then Some (dec_vspec d) else None
  in
  { Classifier.param_id; param_name; param_type;
    param_direction = Array.unsafe_get arr_directions (flags land 0x03);
    param_default }

let enc_operation e (o : Classifier.operation) =
  enc_ident e o.Classifier.op_id;
  Enc.str e o.Classifier.op_name;
  Enc.list e enc_parameter o.Classifier.op_params;
  let flags =
    tag_index Xmi.Codec.all_visibilities o.Classifier.op_visibility
    lor (if o.Classifier.op_is_query then 0x04 else 0)
    lor (if o.Classifier.op_is_abstract then 0x08 else 0)
    lor (match o.Classifier.op_body with None -> 0 | Some _ -> 0x10)
  in
  Enc.u8 e flags;
  match o.Classifier.op_body with
  | None -> ()
  | Some b -> Enc.str e b

let dec_operation d =
  let op_id = dec_ident d in
  let op_name = Dec.str d in
  let op_params = Dec.list d dec_parameter in
  let flags = Dec.u8 d in
  if flags land 0xe0 <> 0 then
    Wire.decode_error "unknown operation flag byte 0x%02x" flags;
  let op_body = if flags land 0x10 <> 0 then Some (Dec.str d) else None in
  { Classifier.op_id; op_name; op_params;
    op_visibility = Array.unsafe_get arr_visibilities (flags land 0x03);
    op_is_query = flags land 0x04 <> 0;
    op_is_abstract = flags land 0x08 <> 0; op_body }

let classifier_kind_tag (k : Classifier.kind) =
  match k with
  | Classifier.Class -> 0
  | Classifier.Interface -> 1
  | Classifier.Data_type -> 2
  | Classifier.Primitive_type -> 3
  | Classifier.Enumeration _ -> 4
  | Classifier.Signal -> 5
  | Classifier.Actor_kind -> 6

let enc_reception e (r : Classifier.reception) =
  enc_ident e r.Classifier.recv_id;
  enc_ident e r.Classifier.recv_signal

let dec_reception d =
  let recv_id = dec_ident d in
  let recv_signal = dec_ident d in
  { Classifier.recv_id; recv_signal }

let enc_classifier e (c : Classifier.t) =
  enc_ident e c.Classifier.cl_id;
  Enc.str e c.Classifier.cl_name;
  let flags =
    classifier_kind_tag c.Classifier.cl_kind
    lor (if c.Classifier.cl_is_abstract then 0x08 else 0)
    lor (if c.Classifier.cl_is_active then 0x10 else 0)
  in
  Enc.u8 e flags;
  (match c.Classifier.cl_kind with
  | Classifier.Enumeration lits -> Enc.list e Enc.str lits
  | Classifier.Class | Classifier.Interface | Classifier.Data_type
  | Classifier.Primitive_type | Classifier.Signal | Classifier.Actor_kind ->
    ());
  Enc.list e enc_property c.Classifier.cl_attributes;
  Enc.list e enc_operation c.Classifier.cl_operations;
  Enc.list e enc_reception c.Classifier.cl_receptions;
  Enc.list e enc_ident c.Classifier.cl_generals;
  Enc.list e enc_ident c.Classifier.cl_realized;
  Enc.list e enc_ident c.Classifier.cl_behaviors

let dec_classifier d =
  let cl_id = dec_ident d in
  let cl_name = Dec.str d in
  let flags = Dec.u8 d in
  if flags land 0xe0 <> 0 then
    Wire.decode_error "unknown classifier flag byte 0x%02x" flags;
  let cl_kind : Classifier.kind =
    match flags land 0x07 with
    | 0 -> Classifier.Class
    | 1 -> Classifier.Interface
    | 2 -> Classifier.Data_type
    | 3 -> Classifier.Primitive_type
    | 4 -> Classifier.Enumeration (Dec.list d Dec.str)
    | 5 -> Classifier.Signal
    | 6 -> Classifier.Actor_kind
    | n -> Wire.decode_error "unknown classifier kind tag %d" n
  in
  let cl_is_abstract = flags land 0x08 <> 0 in
  let cl_is_active = flags land 0x10 <> 0 in
  let cl_attributes = Dec.list d dec_property in
  let cl_operations = Dec.list d dec_operation in
  let cl_receptions = Dec.list d dec_reception in
  let cl_generals = Dec.list d dec_ident in
  let cl_realized = Dec.list d dec_ident in
  let cl_behaviors = Dec.list d dec_ident in
  { Classifier.cl_id; cl_name; cl_kind; cl_is_abstract; cl_is_active;
    cl_attributes; cl_operations; cl_receptions; cl_generals; cl_realized;
    cl_behaviors }

let enc_association e (a : Classifier.association) =
  enc_ident e a.Classifier.assoc_id;
  Enc.str e a.Classifier.assoc_name;
  Enc.list e
    (fun e (en : Classifier.association_end) ->
      enc_property e en.Classifier.end_property;
      Enc.bool e en.Classifier.end_navigable)
    a.Classifier.assoc_ends

let dec_association d =
  let assoc_id = dec_ident d in
  let assoc_name = Dec.str d in
  let assoc_ends =
    Dec.list d (fun d ->
        let end_property = dec_property d in
        let end_navigable = Dec.bool d in
        { Classifier.end_property; end_navigable })
  in
  { Classifier.assoc_id; assoc_name; assoc_ends }

(* --- packages ---------------------------------------------------------- *)

let enc_package e (p : Pkg.t) =
  enc_ident e p.Pkg.pkg_id;
  Enc.str e p.Pkg.pkg_name;
  Enc.list e enc_ident p.Pkg.pkg_owned;
  Enc.list e enc_ident p.Pkg.pkg_subpackages;
  Enc.list e enc_ident p.Pkg.pkg_imports

let dec_package d =
  let pkg_id = dec_ident d in
  let pkg_name = Dec.str d in
  let pkg_owned = Dec.list d dec_ident in
  let pkg_subpackages = Dec.list d dec_ident in
  let pkg_imports = Dec.list d dec_ident in
  { Pkg.pkg_id; pkg_name; pkg_owned; pkg_subpackages; pkg_imports }

(* --- state machines ----------------------------------------------------- *)

let enc_trigger e (t : Smachine.trigger) =
  match t with
  | Smachine.Signal_trigger s -> Enc.u8 e 0; Enc.str e s
  | Smachine.Time_trigger n -> Enc.u8 e 1; Enc.int e n
  | Smachine.Any_trigger -> Enc.u8 e 2
  | Smachine.Completion -> Enc.u8 e 3

let dec_trigger d : Smachine.trigger =
  match Dec.u8 d with
  | 0 -> Smachine.Signal_trigger (Dec.str d)
  | 1 -> Smachine.Time_trigger (Dec.int d)
  | 2 -> Smachine.Any_trigger
  | 3 -> Smachine.Completion
  | n -> Wire.decode_error "unknown trigger tag %d" n

let enc_transition e (t : Smachine.transition) =
  enc_ident e t.Smachine.tr_id;
  enc_ident e t.Smachine.tr_source;
  enc_ident e t.Smachine.tr_target;
  Enc.list e enc_trigger t.Smachine.tr_triggers;
  Enc.opt e Enc.str t.Smachine.tr_guard;
  Enc.opt e Enc.str t.Smachine.tr_effect;
  enc_tag e Xmi.Codec.all_transition_kinds t.Smachine.tr_kind

let dec_transition d =
  let tr_id = dec_ident d in
  let tr_source = dec_ident d in
  let tr_target = dec_ident d in
  let tr_triggers = Dec.list d dec_trigger in
  let tr_guard = Dec.opt d Dec.str in
  let tr_effect = Dec.opt d Dec.str in
  let tr_kind = dec_tag d "transition kind" arr_transition_kinds in
  { Smachine.tr_id; tr_source; tr_target; tr_triggers; tr_guard; tr_effect;
    tr_kind }

let rec enc_region e (r : Smachine.region) =
  enc_ident e r.Smachine.rg_id;
  Enc.str e r.Smachine.rg_name;
  Enc.list e enc_vertex r.Smachine.rg_vertices;
  Enc.list e enc_transition r.Smachine.rg_transitions

and enc_vertex e (v : Smachine.vertex) =
  match v with
  | Smachine.State s ->
    Enc.u8 e 0;
    enc_ident e s.Smachine.st_id;
    Enc.str e s.Smachine.st_name;
    Enc.list e enc_region s.Smachine.st_regions;
    Enc.opt e Enc.str s.Smachine.st_entry;
    Enc.opt e Enc.str s.Smachine.st_exit;
    Enc.opt e Enc.str s.Smachine.st_do;
    Enc.list e enc_trigger s.Smachine.st_deferred
  | Smachine.Pseudo p ->
    Enc.u8 e 1;
    enc_ident e p.Smachine.ps_id;
    Enc.str e p.Smachine.ps_name;
    enc_tag e Xmi.Codec.all_pseudostate_kinds p.Smachine.ps_kind
  | Smachine.Final f ->
    Enc.u8 e 2;
    enc_ident e f.Smachine.fs_id;
    Enc.str e f.Smachine.fs_name

let rec dec_region d =
  let rg_id = dec_ident d in
  let rg_name = Dec.str d in
  let rg_vertices = Dec.list d dec_vertex in
  let rg_transitions = Dec.list d dec_transition in
  { Smachine.rg_id; rg_name; rg_vertices; rg_transitions }

and dec_vertex d : Smachine.vertex =
  match Dec.u8 d with
  | 0 ->
    let st_id = dec_ident d in
    let st_name = Dec.str d in
    let st_regions = Dec.list d dec_region in
    let st_entry = Dec.opt d Dec.str in
    let st_exit = Dec.opt d Dec.str in
    let st_do = Dec.opt d Dec.str in
    let st_deferred = Dec.list d dec_trigger in
    Smachine.State
      { Smachine.st_id; st_name; st_regions; st_entry; st_exit; st_do;
        st_deferred }
  | 1 ->
    let ps_id = dec_ident d in
    let ps_name = Dec.str d in
    let ps_kind = dec_tag d "pseudostate kind" arr_pseudostate_kinds in
    Smachine.Pseudo { Smachine.ps_id; ps_name; ps_kind }
  | 2 ->
    let fs_id = dec_ident d in
    let fs_name = Dec.str d in
    Smachine.Final { Smachine.fs_id; fs_name }
  | n -> Wire.decode_error "unknown vertex tag %d" n

let enc_state_machine e (sm : Smachine.t) =
  enc_ident e sm.Smachine.sm_id;
  Enc.str e sm.Smachine.sm_name;
  Enc.list e enc_region sm.Smachine.sm_regions;
  Enc.opt e enc_ident sm.Smachine.sm_context

let dec_state_machine d =
  let sm_id = dec_ident d in
  let sm_name = Dec.str d in
  let sm_regions = Dec.list d dec_region in
  let sm_context = Dec.opt d dec_ident in
  { Smachine.sm_id; sm_name; sm_regions; sm_context }

(* --- activities --------------------------------------------------------- *)

let enc_node_head e (h : Activityg.node_head) =
  enc_ident e h.Activityg.nd_id;
  Enc.str e h.Activityg.nd_name

let dec_node_head d =
  let nd_id = dec_ident d in
  let nd_name = Dec.str d in
  { Activityg.nd_id; nd_name }

let enc_activity_node e (n : Activityg.node) =
  match n with
  | Activityg.Action a ->
    Enc.u8 e 0;
    enc_node_head e a.Activityg.act_head;
    Enc.opt e Enc.str a.Activityg.act_body
  | Activityg.Call_behavior c ->
    Enc.u8 e 1;
    enc_node_head e c.Activityg.cb_head;
    enc_ident e c.Activityg.cb_behavior
  | Activityg.Send_signal ev ->
    Enc.u8 e 2;
    enc_node_head e ev.Activityg.ev_head;
    Enc.str e ev.Activityg.ev_event
  | Activityg.Accept_event ev ->
    Enc.u8 e 3;
    enc_node_head e ev.Activityg.ev_head;
    Enc.str e ev.Activityg.ev_event
  | Activityg.Object_node o ->
    Enc.u8 e 4;
    enc_node_head e o.Activityg.on_head;
    enc_dtype e o.Activityg.on_type;
    Enc.opt e Enc.int o.Activityg.on_upper_bound
  | Activityg.Initial_node h -> Enc.u8 e 5; enc_node_head e h
  | Activityg.Activity_final h -> Enc.u8 e 6; enc_node_head e h
  | Activityg.Flow_final h -> Enc.u8 e 7; enc_node_head e h
  | Activityg.Fork_node h -> Enc.u8 e 8; enc_node_head e h
  | Activityg.Join_node h -> Enc.u8 e 9; enc_node_head e h
  | Activityg.Decision_node h -> Enc.u8 e 10; enc_node_head e h
  | Activityg.Merge_node h -> Enc.u8 e 11; enc_node_head e h

let dec_activity_node d : Activityg.node =
  match Dec.u8 d with
  | 0 ->
    let act_head = dec_node_head d in
    let act_body = Dec.opt d Dec.str in
    Activityg.Action { Activityg.act_head; act_body }
  | 1 ->
    let cb_head = dec_node_head d in
    let cb_behavior = dec_ident d in
    Activityg.Call_behavior { Activityg.cb_head; cb_behavior }
  | 2 ->
    let ev_head = dec_node_head d in
    let ev_event = Dec.str d in
    Activityg.Send_signal { Activityg.ev_head; ev_event }
  | 3 ->
    let ev_head = dec_node_head d in
    let ev_event = Dec.str d in
    Activityg.Accept_event { Activityg.ev_head; ev_event }
  | 4 ->
    let on_head = dec_node_head d in
    let on_type = dec_dtype d in
    let on_upper_bound = Dec.opt d Dec.int in
    Activityg.Object_node { Activityg.on_head; on_type; on_upper_bound }
  | 5 -> Activityg.Initial_node (dec_node_head d)
  | 6 -> Activityg.Activity_final (dec_node_head d)
  | 7 -> Activityg.Flow_final (dec_node_head d)
  | 8 -> Activityg.Fork_node (dec_node_head d)
  | 9 -> Activityg.Join_node (dec_node_head d)
  | 10 -> Activityg.Decision_node (dec_node_head d)
  | 11 -> Activityg.Merge_node (dec_node_head d)
  | n -> Wire.decode_error "unknown activity node tag %d" n

let enc_activity_edge e (ed : Activityg.edge) =
  enc_ident e ed.Activityg.ed_id;
  enc_ident e ed.Activityg.ed_source;
  enc_ident e ed.Activityg.ed_target;
  Enc.opt e Enc.str ed.Activityg.ed_guard;
  Enc.int e ed.Activityg.ed_weight;
  enc_tag e Xmi.Codec.all_edge_kinds ed.Activityg.ed_kind

let dec_activity_edge d =
  let ed_id = dec_ident d in
  let ed_source = dec_ident d in
  let ed_target = dec_ident d in
  let ed_guard = Dec.opt d Dec.str in
  let ed_weight = Dec.int d in
  let ed_kind = dec_tag d "edge kind" arr_edge_kinds in
  { Activityg.ed_id; ed_source; ed_target; ed_guard; ed_weight; ed_kind }

let enc_activity e (a : Activityg.t) =
  enc_ident e a.Activityg.ac_id;
  Enc.str e a.Activityg.ac_name;
  Enc.list e enc_activity_node a.Activityg.ac_nodes;
  Enc.list e enc_activity_edge a.Activityg.ac_edges;
  Enc.opt e enc_ident a.Activityg.ac_context

let dec_activity d =
  let ac_id = dec_ident d in
  let ac_name = Dec.str d in
  let ac_nodes = Dec.list d dec_activity_node in
  let ac_edges = Dec.list d dec_activity_edge in
  let ac_context = Dec.opt d dec_ident in
  { Activityg.ac_id; ac_name; ac_nodes; ac_edges; ac_context }

(* --- interactions ------------------------------------------------------- *)

let enc_operator e (op : Interaction.interaction_operator) =
  match op with
  | Interaction.Alt -> Enc.u8 e 0
  | Interaction.Opt -> Enc.u8 e 1
  | Interaction.Loop (mn, mx) ->
    Enc.u8 e 2;
    Enc.int e mn;
    Enc.opt e Enc.int mx
  | Interaction.Par -> Enc.u8 e 3
  | Interaction.Strict -> Enc.u8 e 4
  | Interaction.Seq -> Enc.u8 e 5
  | Interaction.Break -> Enc.u8 e 6
  | Interaction.Critical -> Enc.u8 e 7
  | Interaction.Neg -> Enc.u8 e 8
  | Interaction.Assert -> Enc.u8 e 9
  | Interaction.Ignore names -> Enc.u8 e 10; Enc.list e Enc.str names
  | Interaction.Consider names -> Enc.u8 e 11; Enc.list e Enc.str names

let dec_operator d : Interaction.interaction_operator =
  match Dec.u8 d with
  | 0 -> Interaction.Alt
  | 1 -> Interaction.Opt
  | 2 ->
    let mn = Dec.int d in
    let mx = Dec.opt d Dec.int in
    Interaction.Loop (mn, mx)
  | 3 -> Interaction.Par
  | 4 -> Interaction.Strict
  | 5 -> Interaction.Seq
  | 6 -> Interaction.Break
  | 7 -> Interaction.Critical
  | 8 -> Interaction.Neg
  | 9 -> Interaction.Assert
  | 10 -> Interaction.Ignore (Dec.list d Dec.str)
  | 11 -> Interaction.Consider (Dec.list d Dec.str)
  | n -> Wire.decode_error "unknown interaction operator tag %d" n

let enc_message e (m : Interaction.message) =
  enc_ident e m.Interaction.msg_id;
  Enc.str e m.Interaction.msg_name;
  enc_tag e Xmi.Codec.all_message_sorts m.Interaction.msg_sort;
  enc_ident e m.Interaction.msg_from;
  enc_ident e m.Interaction.msg_to;
  Enc.list e enc_vspec m.Interaction.msg_arguments

let dec_message d =
  let msg_id = dec_ident d in
  let msg_name = Dec.str d in
  let msg_sort = dec_tag d "message sort" arr_message_sorts in
  let msg_from = dec_ident d in
  let msg_to = dec_ident d in
  let msg_arguments = Dec.list d dec_vspec in
  { Interaction.msg_id; msg_name; msg_sort; msg_from; msg_to; msg_arguments }

let rec enc_interaction_element e (el : Interaction.element) =
  match el with
  | Interaction.Message m -> Enc.u8 e 0; enc_message e m
  | Interaction.Fragment f ->
    Enc.u8 e 1;
    enc_ident e f.Interaction.fr_id;
    enc_operator e f.Interaction.fr_operator;
    Enc.list e
      (fun e (o : Interaction.operand) ->
        enc_ident e o.Interaction.opnd_id;
        Enc.opt e Enc.str o.Interaction.opnd_guard;
        Enc.list e enc_interaction_element o.Interaction.opnd_body)
      f.Interaction.fr_operands

let rec dec_interaction_element d : Interaction.element =
  match Dec.u8 d with
  | 0 -> Interaction.Message (dec_message d)
  | 1 ->
    let fr_id = dec_ident d in
    let fr_operator = dec_operator d in
    let fr_operands =
      Dec.list d (fun d ->
          let opnd_id = dec_ident d in
          let opnd_guard = Dec.opt d Dec.str in
          let opnd_body = Dec.list d dec_interaction_element in
          { Interaction.opnd_id; opnd_guard; opnd_body })
    in
    Interaction.Fragment { Interaction.fr_id; fr_operator; fr_operands }
  | n -> Wire.decode_error "unknown interaction element tag %d" n

let enc_interaction e (i : Interaction.t) =
  enc_ident e i.Interaction.in_id;
  Enc.str e i.Interaction.in_name;
  Enc.list e
    (fun e (l : Interaction.lifeline) ->
      enc_ident e l.Interaction.ll_id;
      Enc.str e l.Interaction.ll_name;
      Enc.opt e enc_ident l.Interaction.ll_represents)
    i.Interaction.in_lifelines;
  Enc.list e enc_interaction_element i.Interaction.in_body

let dec_interaction d =
  let in_id = dec_ident d in
  let in_name = Dec.str d in
  let in_lifelines =
    Dec.list d (fun d ->
        let ll_id = dec_ident d in
        let ll_name = Dec.str d in
        let ll_represents = Dec.opt d dec_ident in
        { Interaction.ll_id; ll_name; ll_represents })
  in
  let in_body = Dec.list d dec_interaction_element in
  { Interaction.in_id; in_name; in_lifelines; in_body }

(* --- use cases ---------------------------------------------------------- *)

let enc_use_case e (u : Usecase.t) =
  enc_ident e u.Usecase.uc_id;
  Enc.str e u.Usecase.uc_name;
  Enc.opt e enc_ident u.Usecase.uc_subject;
  Enc.list e enc_ident u.Usecase.uc_actors;
  Enc.list e enc_ident u.Usecase.uc_includes;
  Enc.list e
    (fun e (x : Usecase.extend) ->
      enc_ident e x.Usecase.ext_extended;
      Enc.opt e Enc.str x.Usecase.ext_condition)
    u.Usecase.uc_extends

let dec_use_case d =
  let uc_id = dec_ident d in
  let uc_name = Dec.str d in
  let uc_subject = Dec.opt d dec_ident in
  let uc_actors = Dec.list d dec_ident in
  let uc_includes = Dec.list d dec_ident in
  let uc_extends =
    Dec.list d (fun d ->
        let ext_extended = dec_ident d in
        let ext_condition = Dec.opt d Dec.str in
        { Usecase.ext_extended; ext_condition })
  in
  { Usecase.uc_id; uc_name; uc_subject; uc_actors; uc_includes; uc_extends }

(* --- components ---------------------------------------------------------- *)

let enc_component e (c : Component.t) =
  enc_ident e c.Component.cmp_id;
  Enc.str e c.Component.cmp_name;
  Enc.list e
    (fun e (p : Component.port) ->
      enc_ident e p.Component.port_id;
      Enc.str e p.Component.port_name;
      Enc.list e enc_ident p.Component.port_provided;
      Enc.list e enc_ident p.Component.port_required;
      Enc.bool e p.Component.port_is_behavior)
    c.Component.cmp_ports;
  Enc.list e
    (fun e (p : Component.part) ->
      enc_ident e p.Component.part_id;
      Enc.str e p.Component.part_name;
      enc_ident e p.Component.part_type;
      enc_mult e p.Component.part_mult)
    c.Component.cmp_parts;
  Enc.list e
    (fun e (conn : Component.connector) ->
      enc_ident e conn.Component.conn_id;
      Enc.str e conn.Component.conn_name;
      enc_tag e Xmi.Codec.all_connector_kinds conn.Component.conn_kind;
      Enc.list e
        (fun e (en : Component.connector_end) ->
          Enc.opt e enc_ident en.Component.cend_part;
          enc_ident e en.Component.cend_port)
        conn.Component.conn_ends)
    c.Component.cmp_connectors;
  Enc.list e enc_ident c.Component.cmp_realizations;
  Enc.list e enc_ident c.Component.cmp_behaviors

let dec_component d =
  let cmp_id = dec_ident d in
  let cmp_name = Dec.str d in
  let cmp_ports =
    Dec.list d (fun d ->
        let port_id = dec_ident d in
        let port_name = Dec.str d in
        let port_provided = Dec.list d dec_ident in
        let port_required = Dec.list d dec_ident in
        let port_is_behavior = Dec.bool d in
        { Component.port_id; port_name; port_provided; port_required;
          port_is_behavior })
  in
  let cmp_parts =
    Dec.list d (fun d ->
        let part_id = dec_ident d in
        let part_name = Dec.str d in
        let part_type = dec_ident d in
        let part_mult = dec_mult d in
        { Component.part_id; part_name; part_type; part_mult })
  in
  let cmp_connectors =
    Dec.list d (fun d ->
        let conn_id = dec_ident d in
        let conn_name = Dec.str d in
        let conn_kind = dec_tag d "connector kind" arr_connector_kinds in
        let conn_ends =
          Dec.list d (fun d ->
              let cend_part = Dec.opt d dec_ident in
              let cend_port = dec_ident d in
              { Component.cend_part; cend_port })
        in
        { Component.conn_id; conn_name; conn_kind; conn_ends })
  in
  let cmp_realizations = Dec.list d dec_ident in
  let cmp_behaviors = Dec.list d dec_ident in
  { Component.cmp_id; cmp_name; cmp_ports; cmp_parts; cmp_connectors;
    cmp_realizations; cmp_behaviors }

(* --- instances ----------------------------------------------------------- *)

let enc_instance e (i : Instance.t) =
  enc_ident e i.Instance.inst_id;
  Enc.str e i.Instance.inst_name;
  Enc.opt e enc_ident i.Instance.inst_classifier;
  Enc.list e
    (fun e (s : Instance.slot) ->
      Enc.str e s.Instance.slot_feature;
      Enc.list e enc_vspec s.Instance.slot_values)
    i.Instance.inst_slots

let dec_instance d =
  let inst_id = dec_ident d in
  let inst_name = Dec.str d in
  let inst_classifier = Dec.opt d dec_ident in
  let inst_slots =
    Dec.list d (fun d ->
        let slot_feature = Dec.str d in
        let slot_values = Dec.list d dec_vspec in
        { Instance.slot_feature; slot_values })
  in
  { Instance.inst_id; inst_name; inst_classifier; inst_slots }

let enc_link e (l : Instance.link) =
  enc_ident e l.Instance.link_id;
  Enc.opt e enc_ident l.Instance.link_association;
  enc_ident_pair e l.Instance.link_ends

let dec_link d =
  let link_id = dec_ident d in
  let link_association = Dec.opt d dec_ident in
  let link_ends = dec_ident_pair d in
  { Instance.link_id; link_association; link_ends }

(* --- deployments ---------------------------------------------------------- *)

let enc_deployment_node e (n : Deployment.node) =
  enc_ident e n.Deployment.dn_id;
  Enc.str e n.Deployment.dn_name;
  enc_tag e Xmi.Codec.all_node_kinds n.Deployment.dn_kind;
  Enc.list e enc_ident n.Deployment.dn_nested

let dec_deployment_node d =
  let dn_id = dec_ident d in
  let dn_name = Dec.str d in
  let dn_kind = dec_tag d "node kind" arr_node_kinds in
  let dn_nested = Dec.list d dec_ident in
  { Deployment.dn_id; dn_name; dn_kind; dn_nested }

let enc_artifact e (a : Deployment.artifact) =
  enc_ident e a.Deployment.art_id;
  Enc.str e a.Deployment.art_name;
  Enc.list e enc_ident a.Deployment.art_manifests

let dec_artifact d =
  let art_id = dec_ident d in
  let art_name = Dec.str d in
  let art_manifests = Dec.list d dec_ident in
  { Deployment.art_id; art_name; art_manifests }

let enc_deployment e (dep : Deployment.deployment) =
  enc_ident e dep.Deployment.dep_id;
  enc_ident e dep.Deployment.dep_artifact;
  enc_ident e dep.Deployment.dep_target

let dec_deployment d =
  let dep_id = dec_ident d in
  let dep_artifact = dec_ident d in
  let dep_target = dec_ident d in
  { Deployment.dep_id; dep_artifact; dep_target }

let enc_communication_path e (c : Deployment.communication_path) =
  enc_ident e c.Deployment.cpath_id;
  enc_ident_pair e c.Deployment.cpath_ends

let dec_communication_path d =
  let cpath_id = dec_ident d in
  let cpath_ends = dec_ident_pair d in
  { Deployment.cpath_id; cpath_ends }

(* --- profiles ------------------------------------------------------------ *)

let enc_tag_definition e (t : Profile.tag_definition) =
  Enc.str e t.Profile.tag_name;
  enc_dtype e t.Profile.tag_type;
  Enc.opt e enc_vspec t.Profile.tag_default

let dec_tag_definition d =
  let tag_name = Dec.str d in
  let tag_type = dec_dtype d in
  let tag_default = Dec.opt d dec_vspec in
  { Profile.tag_name; tag_type; tag_default }

let enc_profile e (p : Profile.t) =
  enc_ident e p.Profile.prof_id;
  Enc.str e p.Profile.prof_name;
  Enc.list e
    (fun e (s : Profile.stereotype) ->
      enc_ident e s.Profile.ster_id;
      Enc.str e s.Profile.ster_name;
      Enc.list e (fun e mc -> enc_tag e Xmi.Codec.all_metaclasses mc)
        s.Profile.ster_extends;
      Enc.list e enc_tag_definition s.Profile.ster_tags)
    p.Profile.prof_stereotypes

let dec_profile d =
  let prof_id = dec_ident d in
  let prof_name = Dec.str d in
  let prof_stereotypes =
    Dec.list d (fun d ->
        let ster_id = dec_ident d in
        let ster_name = Dec.str d in
        let ster_extends =
          Dec.list d (fun d -> dec_tag d "metaclass" arr_metaclasses)
        in
        let ster_tags = Dec.list d dec_tag_definition in
        { Profile.ster_id; ster_name; ster_extends; ster_tags })
  in
  { Profile.prof_id; prof_name; prof_stereotypes }

let enc_application e (a : Profile.application) =
  enc_ident e a.Profile.app_element;
  enc_ident e a.Profile.app_stereotype;
  Enc.list e
    (fun e (name, v) ->
      Enc.str e name;
      enc_vspec e v)
    a.Profile.app_values

let dec_application d =
  let app_element = dec_ident d in
  let app_stereotype = dec_ident d in
  let app_values =
    Dec.list d (fun d ->
        let name = Dec.str d in
        let v = dec_vspec d in
        (name, v))
  in
  { Profile.app_element; app_stereotype; app_values }

(* --- diagrams ------------------------------------------------------------ *)

let enc_diagram e (dg : Diagram.t) =
  enc_ident e dg.Diagram.dg_id;
  Enc.str e dg.Diagram.dg_name;
  enc_tag e Xmi.Codec.all_diagram_kinds dg.Diagram.dg_kind;
  Enc.list e enc_ident dg.Diagram.dg_elements

let dec_diagram d =
  let dg_id = dec_ident d in
  let dg_name = Dec.str d in
  let dg_kind = dec_tag d "diagram kind" arr_diagram_kinds in
  let dg_elements = Dec.list d dec_ident in
  { Diagram.dg_id; dg_name; dg_kind; dg_elements }

(* --- top level ----------------------------------------------------------- *)

let enc_element e (el : Model.element) =
  match el with
  | Model.E_classifier c -> Enc.u8 e 0; enc_classifier e c
  | Model.E_association a -> Enc.u8 e 1; enc_association e a
  | Model.E_package p -> Enc.u8 e 2; enc_package e p
  | Model.E_state_machine sm -> Enc.u8 e 3; enc_state_machine e sm
  | Model.E_activity a -> Enc.u8 e 4; enc_activity e a
  | Model.E_interaction i -> Enc.u8 e 5; enc_interaction e i
  | Model.E_use_case u -> Enc.u8 e 6; enc_use_case e u
  | Model.E_component c -> Enc.u8 e 7; enc_component e c
  | Model.E_instance i -> Enc.u8 e 8; enc_instance e i
  | Model.E_link l -> Enc.u8 e 9; enc_link e l
  | Model.E_deployment_node n -> Enc.u8 e 10; enc_deployment_node e n
  | Model.E_artifact a -> Enc.u8 e 11; enc_artifact e a
  | Model.E_deployment dep -> Enc.u8 e 12; enc_deployment e dep
  | Model.E_communication_path c -> Enc.u8 e 13; enc_communication_path e c
  | Model.E_profile p -> Enc.u8 e 14; enc_profile e p

let dec_element d : Model.element =
  match Dec.u8 d with
  | 0 -> Model.E_classifier (dec_classifier d)
  | 1 -> Model.E_association (dec_association d)
  | 2 -> Model.E_package (dec_package d)
  | 3 -> Model.E_state_machine (dec_state_machine d)
  | 4 -> Model.E_activity (dec_activity d)
  | 5 -> Model.E_interaction (dec_interaction d)
  | 6 -> Model.E_use_case (dec_use_case d)
  | 7 -> Model.E_component (dec_component d)
  | 8 -> Model.E_instance (dec_instance d)
  | 9 -> Model.E_link (dec_link d)
  | 10 -> Model.E_deployment_node (dec_deployment_node d)
  | 11 -> Model.E_artifact (dec_artifact d)
  | 12 -> Model.E_deployment (dec_deployment d)
  | 13 -> Model.E_communication_path (dec_communication_path d)
  | 14 -> Model.E_profile (dec_profile d)
  | n -> Wire.decode_error "unknown element tag %d" n

let enc_model e m =
  Enc.str e (Model.name m);
  Enc.list e enc_element (Model.elements m);
  Enc.list e enc_application (Model.applications m);
  Enc.list e enc_diagram (Model.diagrams m)

let dec_model d =
  let name = Dec.str d in
  let elements = Dec.list d dec_element in
  (* element count is known before the first insert: pre-size the index
     so bulk load never pays a rehash chain *)
  let m = Model.create ~capacity:(2 * List.length elements) name in
  List.iter (Model.add m) elements;
  List.iter (Model.add_application m) (Dec.list d dec_application);
  List.iter (Model.add_diagram m) (Dec.list d dec_diagram);
  m
