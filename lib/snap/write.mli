(** Snapshot export: pack a model into the versioned binary format.

    The writer is byte-deterministic: equal models (per
    {!Uml.Model.equal}) produce identical bytes, and
    [to_string (Read.model_of_string (to_string m))] is the identity on
    bytes — string-table order is fixed by first use during the body
    encode, which only depends on model content. *)

val to_string : Uml.Model.t -> string
val write_file : Uml.Model.t -> string -> unit
