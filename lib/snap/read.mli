(** Snapshot import: the inverse of {!Write}.

    [model_of_string (Write.to_string m)] returns a model equal to [m]
    per {!Uml.Model.equal} (the qcheck differential in [test_snap]
    proves this against the XMI path).  Hostile inputs — bad magic,
    unsupported version, truncation anywhere, out-of-range string
    references, unknown tags, duplicate identifiers, trailing bytes —
    all raise {!Import_error} with a one-line message. *)

exception Import_error of string

val is_snapshot : string -> bool
(** Do the bytes start with the snapshot magic?  Used by the CLI to
    dispatch between the XMI and snapshot loaders. *)

val model_of_string : string -> Uml.Model.t
(** @raise Import_error on any malformed input. *)

val read_file : string -> Uml.Model.t
