(** The ASL dataflow pass: abstract interpretation of every behavior
    string in a model.

    Reported findings (severities live in the lint registry):

    - [DF-01] a variable may be read before initialization on some
      path.  The typechecker's block scoping (ASL-02) already rejects
      reads of names no enclosing block binds; this rule covers the
      gap between that discipline and the interpreter's flat frames —
      assignments inside a branch escape at runtime, and activity
      actions share one store in token order, so a read can be
      well-typed yet uninitialized on a real path.
    - [DF-02] a pure store whose value is never read (fresh-frame
      behaviors only: locals of transition effects, state behaviors
      and operation bodies die with the frame).
    - [DF-03] a statement unreachable under constant-folded
      conditions (code after [return], branches of provably constant
      conditions, inverted [for] bounds).
    - [DF-04] a guard (transition or activity edge) that is provably
      always true or always false.

    Parsing goes through {!Asl.Compiled}, so the parse is paid once
    and shared with the engines and the ASL lint pass; behaviors that
    fail to parse are skipped here (ASL-01 owns them). *)

val check : ?metrics:Telemetry.Metrics.t -> Uml.Model.t -> Finding.t list
(** Deterministically ordered (code, element, message), duplicates
    collapsed.  Counters: [dataflow.asl.programs], [dataflow.asl.guards],
    [dataflow.asl.findings]. *)
