open Uml
module SSet = Set.Make (String)

(* The statechart engine's guard/effect environment: event parameters
   e1..e9 and the triggering signal name.  Mirrors the lint layer's
   [Model_info.guard_env] (this library sits below [lint], so the
   names are repeated here). *)
let machine_env =
  [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "event" ]

let parse_program src = Asl.Compiled.program_result (Asl.Compiled.program src)
let parse_guard src = Asl.Compiled.guard_result (Asl.Compiled.guard src)

type ctx = {
  c_prog : Telemetry.Metrics.counter;
  c_guard : Telemetry.Metrics.counter;
}

let report_cfg ~ctx ~assigned ~extra_defs ~liveout ~element ~what acc cfg =
  Telemetry.Metrics.incr ctx.c_prog;
  let r = Absint.analyze ~assigned ~extra_defs ~liveout cfg in
  let acc =
    List.fold_left
      (fun acc (_, x) ->
        Finding.make ~code:"DF-01" ~element
          (Printf.sprintf "%s: variable %s may be read before initialization"
             what x)
        :: acc)
      acc r.Absint.res_uninit
  in
  let acc =
    List.fold_left
      (fun acc (_, x) ->
        Finding.make ~code:"DF-02" ~element
          (Printf.sprintf "%s: value assigned to %s is never read" what x)
        :: acc)
      acc r.Absint.res_dead
  in
  List.fold_left
    (fun acc i ->
      Finding.make ~code:"DF-03" ~element
        (Printf.sprintf "%s: unreachable %s" what
           (Cfg.label cfg.Cfg.nodes.(i)))
      :: acc)
    acc r.Absint.res_unreachable

let check_program ~ctx ~assigned ~element ~what acc src =
  match parse_program src with
  | Error _ -> acc (* ASL-01 territory *)
  | Ok prog ->
    report_cfg ~ctx ~assigned ~extra_defs:[] ~liveout:Absint.Live_none
      ~element ~what acc (Cfg.of_program prog)

let check_guard ~ctx ~element ~what acc src =
  match parse_guard src with
  | Error _ -> acc
  | Ok ast -> (
    Telemetry.Metrics.incr ctx.c_guard;
    match Absint.const_bool ast with
    | Some b ->
      Finding.make ~code:"DF-04" ~element
        (Printf.sprintf "%s is always %b" what b)
      :: acc
    | None -> acc)

(* --- state machines ---------------------------------------------------- *)

let check_machine ~ctx (sm : Smachine.t) acc =
  let acc =
    List.fold_left
      (fun acc (tr : Smachine.transition) ->
        let acc =
          match tr.Smachine.tr_guard with
          | None -> acc
          | Some src ->
            check_guard ~ctx ~element:tr.Smachine.tr_id
              ~what:"transition guard" acc src
        in
        match tr.Smachine.tr_effect with
        | None -> acc
        | Some src ->
          check_program ~ctx ~assigned:machine_env ~element:tr.Smachine.tr_id
            ~what:"transition effect" acc src)
      acc
      (Smachine.all_transitions sm)
  in
  List.fold_left
    (fun acc v ->
      match v with
      | Smachine.Pseudo _ | Smachine.Final _ -> acc
      | Smachine.State st ->
        let go what src acc =
          match src with
          | None -> acc
          | Some src ->
            check_program ~ctx ~assigned:machine_env
              ~element:st.Smachine.st_id ~what acc src
        in
        go "state entry behavior" st.Smachine.st_entry acc
        |> go "state exit behavior" st.Smachine.st_exit
        |> go "state do behavior" st.Smachine.st_do)
    acc (Smachine.all_vertices sm)

(* --- operation bodies -------------------------------------------------- *)

let check_classifier ~ctx (cl : Classifier.t) acc =
  List.fold_left
    (fun acc (op : Classifier.operation) ->
      match op.Classifier.op_body with
      | None -> acc
      | Some src ->
        let params =
          List.filter_map
            (fun (p : Classifier.parameter) ->
              if p.Classifier.param_direction = Classifier.Return then None
              else Some p.Classifier.param_name)
            op.Classifier.op_params
        in
        check_program ~ctx ~assigned:params ~element:op.Classifier.op_id
          ~what:
            (Printf.sprintf "body of %s.%s" cl.Classifier.cl_name
               op.Classifier.op_name)
          acc src)
    acc cl.Classifier.cl_operations

(* --- activities -------------------------------------------------------- *)

(* Action bodies share one interpreter store in token order, so a
   variable one action defines is initialized for another action only
   if it is definitely assigned on EVERY activity path leading there.
   The typechecker threads bindings in node-list order instead, which
   is precisely the gap this analysis closes: a model can typecheck
   and still read a store slot no upstream action has written. *)
let check_activity ~ctx (ac : Activityg.t) acc =
  let cfgs = Hashtbl.create 16 in
  let own = Hashtbl.create 16 in
  List.iter
    (fun node ->
      match node with
      | Activityg.Action a -> (
        match a.Activityg.act_body with
        | None -> ()
        | Some src -> (
          match parse_program src with
          | Error _ -> ()
          | Ok prog ->
            let id = a.Activityg.act_head.Activityg.nd_id in
            let cfg = Cfg.of_program prog in
            let r = Absint.analyze cfg in
            Hashtbl.replace cfgs id (a, cfg);
            Hashtbl.replace own id (SSet.of_list r.Absint.res_exit_assigned)))
      | Activityg.Call_behavior _ | Activityg.Send_signal _
      | Activityg.Accept_event _ | Activityg.Object_node _
      | Activityg.Initial_node _ | Activityg.Activity_final _
      | Activityg.Flow_final _ | Activityg.Fork_node _ | Activityg.Join_node _
      | Activityg.Decision_node _ | Activityg.Merge_node _ ->
        ())
    ac.Activityg.ac_nodes;
  let own_of id =
    match Hashtbl.find_opt own id with
    | Some s -> s
    | None -> SSet.empty
  in
  let universe =
    List.fold_left
      (fun u node -> SSet.union u (own_of (Activityg.node_id node)))
      SSet.empty ac.Activityg.ac_nodes
  in
  let known = List.map Activityg.node_id ac.Activityg.ac_nodes in
  let preds id =
    List.filter_map
      (fun (e : Activityg.edge) ->
        if e.Activityg.ed_target = id && List.mem e.Activityg.ed_source known
        then Some e.Activityg.ed_source
        else None)
      ac.Activityg.ac_edges
  in
  (* must-defined before each node: intersection over predecessors of
     (defined-before-pred ∪ pred's own definite defs), greatest
     fixpoint from the full universe. *)
  let defined = Hashtbl.create 16 in
  List.iter
    (fun node ->
      let id = Activityg.node_id node in
      Hashtbl.replace defined id
        (if preds id = [] then SSet.empty else universe))
    ac.Activityg.ac_nodes;
  let defined_of id =
    match Hashtbl.find_opt defined id with
    | Some s -> s
    | None -> SSet.empty
  in
  let avail id = SSet.union (defined_of id) (own_of id) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun node ->
        let id = Activityg.node_id node in
        match preds id with
        | [] -> ()
        | p :: ps ->
          let d = List.fold_left (fun s q -> SSet.inter s (avail q)) (avail p) ps in
          if not (SSet.equal d (defined_of id)) then begin
            Hashtbl.replace defined id d;
            changed := true
          end)
      ac.Activityg.ac_nodes
  done;
  let acc =
    List.fold_left
      (fun acc node ->
        let id = Activityg.node_id node in
        match Hashtbl.find_opt cfgs id with
        | None -> acc
        | Some (a, cfg) ->
          report_cfg ~ctx
            ~assigned:(SSet.elements (defined_of id))
            ~extra_defs:(SSet.elements universe) ~liveout:Absint.Live_all
            ~element:id
            ~what:
              (Printf.sprintf "body of action %s"
                 a.Activityg.act_head.Activityg.nd_name)
            acc cfg)
      acc ac.Activityg.ac_nodes
  in
  (* edge guards evaluate after their source completes *)
  List.fold_left
    (fun acc (e : Activityg.edge) ->
      match e.Activityg.ed_guard with
      | None -> acc
      | Some src -> (
        let acc =
          check_guard ~ctx ~element:e.Activityg.ed_id ~what:"edge guard" acc
            src
        in
        match parse_guard src with
        | Error _ -> acc
        | Ok ast ->
          let av = avail e.Activityg.ed_source in
          List.fold_left
            (fun acc x ->
              if SSet.mem x universe && not (SSet.mem x av) then
                Finding.make ~code:"DF-01" ~element:e.Activityg.ed_id
                  (Printf.sprintf
                     "edge guard: variable %s may be read before \
                      initialization"
                     x)
                :: acc
              else acc)
            acc (Cfg.expr_vars ast)))
    acc ac.Activityg.ac_edges

let check ?(metrics = Telemetry.Metrics.null) m =
  let ctx =
    {
      c_prog = Telemetry.Metrics.counter metrics "dataflow.asl.programs";
      c_guard = Telemetry.Metrics.counter metrics "dataflow.asl.guards";
    }
  in
  let acc =
    List.fold_left
      (fun acc sm -> check_machine ~ctx sm acc)
      []
      (Model.state_machines m)
  in
  let acc =
    List.fold_left
      (fun acc cl -> check_classifier ~ctx cl acc)
      acc (Model.classifiers m)
  in
  let acc =
    List.fold_left
      (fun acc ac -> check_activity ~ctx ac acc)
      acc (Model.activities m)
  in
  let out = Finding.dedup acc in
  Telemetry.Metrics.incr
    ~by:(List.length out)
    (Telemetry.Metrics.counter metrics "dataflow.asl.findings");
  out
