module A = Asl.Ast

type kind =
  | Entry
  | Exit
  | Nop
  | Stmt of A.stmt
  | Branch of A.expr
  | For_head of string * A.expr * A.expr

type node = {
  n_id : int;
  n_kind : kind;
  mutable n_succs : int list;
  mutable n_preds : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_ : int;
}

let of_program prog =
  let acc = ref [] in
  let next = ref 0 in
  let alloc kind =
    let n = { n_id = !next; n_kind = kind; n_succs = []; n_preds = [] } in
    incr next;
    acc := n :: !acc;
    n
  in
  let link p s =
    p.n_succs <- p.n_succs @ [ s.n_id ];
    s.n_preds <- s.n_preds @ [ p.n_id ]
  in
  let entry = alloc Entry in
  let exit_ = alloc Exit in
  (* [stmt preds s] wires [s] after the open ends [preds] and returns
     the new open ends; a [Return] closes them, so whatever follows is
     allocated without predecessors. *)
  let rec stmts preds ss = List.fold_left stmt preds ss
  and stmt preds s =
    match s with
    | A.Skip | A.Var_decl _ | A.Assign _ | A.Expr_stmt _ | A.Send _
    | A.Delete _ ->
      let n = alloc (Stmt s) in
      List.iter (fun p -> link p n) preds;
      [ n ]
    | A.Return _ ->
      let n = alloc (Stmt s) in
      List.iter (fun p -> link p n) preds;
      link n exit_;
      []
    | A.If (c, t, e) ->
      let b = alloc (Branch c) in
      List.iter (fun p -> link p b) preds;
      let th = alloc Nop in
      let eh = alloc Nop in
      link b th;
      link b eh;
      let t_ends = stmts [ th ] t in
      let e_ends = stmts [ eh ] e in
      t_ends @ e_ends
    | A.While (c, body) ->
      let b = alloc (Branch c) in
      List.iter (fun p -> link p b) preds;
      let bh = alloc Nop in
      let ah = alloc Nop in
      link b bh;
      link b ah;
      let ends = stmts [ bh ] body in
      List.iter (fun p -> link p b) ends;
      [ ah ]
    | A.For (v, lo, hi, body) ->
      let f = alloc (For_head (v, lo, hi)) in
      List.iter (fun p -> link p f) preds;
      let bh = alloc Nop in
      let ah = alloc Nop in
      link f bh;
      link f ah;
      let ends = stmts [ bh ] body in
      List.iter (fun p -> link p f) ends;
      [ ah ]
  in
  let ends = stmts [ entry ] prog in
  List.iter (fun p -> link p exit_) ends;
  { nodes = Array.of_list (List.rev !acc); entry = entry.n_id; exit_ = exit_.n_id }

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let expr_vars e =
  let acc = ref [] in
  let rec go e =
    match e with
    | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ | A.String_lit _ | A.Null_lit
    | A.Self | A.New _ ->
      ()
    | A.Var x -> acc := x :: !acc
    | A.Attr (obj, _) -> go obj
    | A.Unop (_, e1) -> go e1
    | A.Binop (_, e1, e2) ->
      go e1;
      go e2
    | A.Call (recv, _, args) ->
      (match recv with
       | None -> ()
       | Some r -> go r);
      List.iter go args
  in
  go e;
  dedup (List.rev !acc)

let uses n =
  match n.n_kind with
  | Entry | Exit | Nop -> []
  | Branch c -> expr_vars c
  | For_head (_, lo, hi) -> dedup (expr_vars lo @ expr_vars hi)
  | Stmt s -> (
    match s with
    | A.Skip | A.Return None -> []
    | A.Var_decl (_, e)
    | A.Assign (A.L_var _, e)
    | A.Expr_stmt e
    | A.Return (Some e)
    | A.Delete e ->
      expr_vars e
    | A.Assign (A.L_attr (obj, _), e) -> dedup (expr_vars obj @ expr_vars e)
    | A.Send (_, args, target) ->
      dedup
        (List.concat_map expr_vars args
        @ (match target with
           | None -> []
           | Some t -> expr_vars t))
    | A.If _ | A.While _ | A.For _ -> [])

let def n =
  match n.n_kind with
  | Entry | Exit | Nop | Branch _ -> None
  | For_head (v, _, _) -> Some v
  | Stmt s -> (
    match s with
    | A.Var_decl (x, _) | A.Assign (A.L_var x, _) -> Some x
    | A.Skip
    | A.Assign (A.L_attr _, _)
    | A.Expr_stmt _ | A.Return _ | A.Send _ | A.Delete _ | A.If _ | A.While _
    | A.For _ ->
      None)

let label n =
  match n.n_kind with
  | Entry -> "entry"
  | Exit -> "exit"
  | Nop -> "join"
  | Branch _ -> "condition"
  | For_head (v, _, _) -> Printf.sprintf "for %s" v
  | Stmt s -> (
    match s with
    | A.Skip -> "skip"
    | A.Var_decl (x, _) -> Printf.sprintf "declaration of %s" x
    | A.Assign (A.L_var x, _) -> Printf.sprintf "assignment to %s" x
    | A.Assign (A.L_attr (_, a), _) ->
      Printf.sprintf "assignment to attribute %s" a
    | A.Expr_stmt _ -> "expression statement"
    | A.Return _ -> "return"
    | A.Send (sg, _, _) -> Printf.sprintf "send %s" sg
    | A.Delete _ -> "delete"
    | A.If _ -> "if"
    | A.While _ -> "while"
    | A.For _ -> "for")
