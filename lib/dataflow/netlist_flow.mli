(** The netlist dataflow pass: clock-domain and reset analysis over
    the compiled {!Dsim.Netlist} form of a design.

    The design is flattened ({!Hdl.Elaborate.flatten}) and compiled
    once; the pass then works on dense signal indices, per-process
    read/write sets and the signal→fanout map:

    - [HDL-12] a clocked process reads a signal written in a different
      clock domain without a 2-FF synchronizer.  Clock domains are
      seeded at sequential writes and propagated through combinational
      processes to a fixpoint (input ports belong to no domain — they
      are assumed synchronous to their reader).  A reader is exempt
      when it is the first stage of a synchronizer chain: its body is
      exactly one flop ([t := s]), and [t] feeds only sequential
      processes of the reader's own clock.
    - [HDL-13] a register written by a process with no reset and no
      declared initial value whose value reaches an output port
      through combinational logic — the output is undefined until the
      first clock edge.

    Designs with [Hdl.Check] errors, elaboration failures or netlist
    compile failures are skipped (the HDL lint pass owns those). *)

val check :
  ?metrics:Telemetry.Metrics.t -> Hdl.Module_.design -> Finding.t list
(** Deterministically ordered.  Counters:
    [dataflow.netlist.seq_processes], [dataflow.netlist.findings]. *)
