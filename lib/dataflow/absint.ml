module A = Asl.Ast
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type aval =
  | Top
  | A_int of int * int
  | A_bool of bool option

let equal_aval a b =
  match (a, b) with
  | Top, Top -> true
  | A_int (l1, h1), A_int (l2, h2) -> l1 = l2 && h1 = h2
  | A_bool x, A_bool y -> x = y
  | Top, (A_int _ | A_bool _)
  | A_int _, (Top | A_bool _)
  | A_bool _, (Top | A_int _) ->
    false

let join_aval a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | A_int (l1, h1), A_int (l2, h2) -> A_int (min l1 l2, max h1 h2)
  | A_bool x, A_bool y -> A_bool (if x = y then x else None)
  | A_int _, A_bool _ | A_bool _, A_int _ -> Top

(* Intervals that keep growing across loop iterations go straight to
   Top, bounding the fixpoint. *)
let widen_aval old joined =
  match (old, joined) with
  | A_int (l1, h1), A_int (l2, h2) -> if l2 < l1 || h2 > h1 then Top else joined
  | (Top | A_bool _), _ | _, (Top | A_bool _) -> joined

let as_int v =
  match v with
  | A_int (l, h) -> Some (l, h)
  | Top | A_bool _ -> None

let known_bool v =
  match v with
  | A_bool o -> o
  | Top | A_int _ -> None

let rec eval env (e : A.expr) =
  match e with
  | A.Int_lit n -> A_int (n, n)
  | A.Bool_lit b -> A_bool (Some b)
  | A.Real_lit _ | A.String_lit _ | A.Null_lit | A.Self | A.New _ | A.Attr _
  | A.Call _ ->
    Top
  | A.Var x -> (
    match SMap.find_opt x env with
    | Some v -> v
    | None -> Top)
  | A.Unop (A.Neg, e1) -> (
    match eval env e1 with
    | A_int (l, h) -> A_int (-h, -l)
    | Top | A_bool _ -> Top)
  | A.Unop (A.Not, e1) -> (
    match eval env e1 with
    | A_bool o -> A_bool (Option.map not o)
    | Top | A_int _ -> Top)
  | A.Binop (op, e1, e2) -> eval_binop op (eval env e1) (eval env e2)

and eval_binop op va vb =
  let ints =
    match (as_int va, as_int vb) with
    | Some a, Some b -> Some (a, b)
    | None, (Some _ | None) | Some _, None -> None
  in
  let cmp f =
    match ints with
    | Some ((l1, h1), (l2, h2)) -> A_bool (f l1 h1 l2 h2)
    | None -> A_bool None
  in
  match op with
  | A.Add -> (
    match ints with
    | Some ((l1, h1), (l2, h2)) -> A_int (l1 + l2, h1 + h2)
    | None -> Top)
  | A.Sub -> (
    match ints with
    | Some ((l1, h1), (l2, h2)) -> A_int (l1 - h2, h1 - l2)
    | None -> Top)
  | A.Mul -> (
    match ints with
    | Some ((l1, h1), (l2, h2)) ->
      let ps = [ l1 * l2; l1 * h2; h1 * l2; h1 * h2 ] in
      A_int (List.fold_left min max_int ps, List.fold_left max min_int ps)
    | None -> Top)
  | A.Div | A.Mod | A.Concat -> Top
  | A.Lt ->
    cmp (fun l1 h1 l2 h2 ->
        if h1 < l2 then Some true else if l1 >= h2 then Some false else None)
  | A.Le ->
    cmp (fun l1 h1 l2 h2 ->
        if h1 <= l2 then Some true else if l1 > h2 then Some false else None)
  | A.Gt ->
    cmp (fun l1 h1 l2 h2 ->
        if l1 > h2 then Some true else if h1 <= l2 then Some false else None)
  | A.Ge ->
    cmp (fun l1 h1 l2 h2 ->
        if l1 >= h2 then Some true else if h1 < l2 then Some false else None)
  | A.Eq -> (
    match ints with
    | Some ((l1, h1), (l2, h2)) ->
      if l1 = h1 && l2 = h2 && l1 = l2 then A_bool (Some true)
      else if h1 < l2 || h2 < l1 then A_bool (Some false)
      else A_bool None
    | None -> (
      match (known_bool va, known_bool vb) with
      | Some x, Some y -> A_bool (Some (x = y))
      | None, (Some _ | None) | Some _, None -> A_bool None))
  | A.Ne -> (
    match eval_binop A.Eq va vb with
    | A_bool o -> A_bool (Option.map not o)
    | Top | A_int _ -> A_bool None)
  | A.And -> (
    match (known_bool va, known_bool vb) with
    | Some false, _ | _, Some false -> A_bool (Some false)
    | Some true, Some true -> A_bool (Some true)
    | (Some true | None), None | None, Some true -> A_bool None)
  | A.Or -> (
    match (known_bool va, known_bool vb) with
    | Some true, _ | _, Some true -> A_bool (Some true)
    | Some false, Some false -> A_bool (Some false)
    | (Some false | None), None | None, Some false -> A_bool None)

let const_bool e = known_bool (eval SMap.empty e)

(* --- forward fixpoint -------------------------------------------------- *)

type state = {
  st_env : aval SMap.t;
  st_asg : SSet.t;
}

let join_state a b =
  {
    st_env =
      SMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some v, Some w -> Some (join_aval v w)
          | Some _, None | None, Some _ -> Some Top
          | None, None -> None)
        a.st_env b.st_env;
    st_asg = SSet.inter a.st_asg b.st_asg;
  }

let widen_state old joined =
  {
    joined with
    st_env =
      SMap.merge
        (fun _ o j ->
          match (o, j) with
          | Some ov, Some jv -> Some (widen_aval ov jv)
          | None, (Some _ | None) -> j
          | Some _, None -> None)
        old.st_env joined.st_env;
  }

let equal_state a b =
  SSet.equal a.st_asg b.st_asg && SMap.equal equal_aval a.st_env b.st_env

(* Out-state of [node] along successor slot [k]; [None] = edge pruned
   by constant folding. *)
let edge_out node k st =
  match node.Cfg.n_kind with
  | Cfg.Entry | Cfg.Exit | Cfg.Nop -> Some st
  | Cfg.Stmt s -> (
    match s with
    | A.Var_decl (x, e) | A.Assign (A.L_var x, e) ->
      Some
        {
          st_env = SMap.add x (eval st.st_env e) st.st_env;
          st_asg = SSet.add x st.st_asg;
        }
    | A.Skip
    | A.Assign (A.L_attr _, _)
    | A.Expr_stmt _ | A.Return _ | A.Send _ | A.Delete _ | A.If _ | A.While _
    | A.For _ ->
      Some st)
  | Cfg.Branch c -> (
    match (known_bool (eval st.st_env c), k) with
    | Some false, 0 -> None (* then edge dead *)
    | Some true, 1 -> None (* else edge dead *)
    | (Some true | Some false | None), _ -> Some st)
  | Cfg.For_head (x, lo, hi) ->
    let bounds = (as_int (eval st.st_env lo), as_int (eval st.st_env hi)) in
    if k = 0 then (
      (* body edge: dead when the bounds are provably inverted *)
      match bounds with
      | Some (l1, _), Some (_, h2) when l1 > h2 -> None
      | Some (l1, _), Some (_, h2) ->
        Some
          {
            st_env = SMap.add x (A_int (l1, h2)) st.st_env;
            st_asg = SSet.add x st.st_asg;
          }
      | None, (Some _ | None) | Some _, None ->
        Some
          { st_env = SMap.add x Top st.st_env; st_asg = SSet.add x st.st_asg })
    else
      (* after edge: the loop variable holds a value only when the loop
         provably ran at least once *)
      let provably_runs =
        match bounds with
        | Some (_, h1), Some (l2, _) -> h1 <= l2
        | None, (Some _ | None) | Some _, None -> false
      in
      Some
        {
          st_env = SMap.add x Top st.st_env;
          st_asg = (if provably_runs then SSet.add x st.st_asg else st.st_asg);
        }

let forward ~assigned (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.nodes in
  let states = Array.make n None in
  let visits = Array.make n 0 in
  let queued = Array.make n false in
  let queue = Queue.create () in
  let enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.push i queue
    end
  in
  let init =
    {
      st_env =
        List.fold_left (fun m x -> SMap.add x Top m) SMap.empty assigned;
      st_asg = SSet.of_list assigned;
    }
  in
  states.(cfg.Cfg.entry) <- Some init;
  enqueue cfg.Cfg.entry;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    queued.(i) <- false;
    let node = cfg.Cfg.nodes.(i) in
    match states.(i) with
    | None -> ()
    | Some st ->
      List.iteri
        (fun k sid ->
          match edge_out node k st with
          | None -> ()
          | Some out -> (
            let updated =
              match states.(sid) with
              | None -> Some out
              | Some old ->
                let j = join_state old out in
                let j = if visits.(sid) > 8 then widen_state old j else j in
                if equal_state old j then None else Some j
            in
            match updated with
            | None -> ()
            | Some s ->
              visits.(sid) <- visits.(sid) + 1;
              states.(sid) <- Some s;
              enqueue sid))
        node.Cfg.n_succs
  done;
  states

(* --- results ----------------------------------------------------------- *)

type liveout =
  | Live_none
  | Live_all

type result = {
  res_reachable : bool array;
  res_uninit : (int * string) list;
  res_unreachable : int list;
  res_dead : (int * string) list;
  res_exit_assigned : string list;
}

let rec pure (e : A.expr) =
  match e with
  | A.Int_lit _ | A.Real_lit _ | A.Bool_lit _ | A.String_lit _ | A.Null_lit
  | A.Self | A.Var _ ->
    true
  | A.Attr (obj, _) -> pure obj
  | A.Unop (_, e1) -> pure e1
  | A.Binop (_, e1, e2) -> pure e1 && pure e2
  | A.Call _ | A.New _ -> false

let analyze ?(assigned = []) ?(extra_defs = []) ?(liveout = Live_none) cfg =
  let n = Array.length cfg.Cfg.nodes in
  let states = forward ~assigned cfg in
  let reachable = Array.map (fun s -> s <> None) states in
  let own_defs =
    Array.fold_left
      (fun acc node ->
        match Cfg.def node with
        | Some x -> SSet.add x acc
        | None -> acc)
      SSet.empty cfg.Cfg.nodes
  in
  let reportable_defs =
    List.fold_left (fun acc x -> SSet.add x acc) own_defs extra_defs
  in
  (* DF-01: reachable reads not definitely assigned. *)
  let uninit = ref [] in
  Array.iteri
    (fun i node ->
      match states.(i) with
      | None -> ()
      | Some st ->
        List.iter
          (fun x ->
            if SSet.mem x reportable_defs && not (SSet.mem x st.st_asg) then
              uninit := (i, x) :: !uninit)
          (Cfg.uses node))
    cfg.Cfg.nodes;
  (* DF-03: first statement-bearing node of each unreachable region. *)
  let reportable node =
    match node.Cfg.n_kind with
    | Cfg.Stmt _ | Cfg.Branch _ | Cfg.For_head _ -> true
    | Cfg.Entry | Cfg.Exit | Cfg.Nop -> false
  in
  let unreachable = ref [] in
  let visited = Array.make n false in
  let rec walk i =
    if not visited.(i) then begin
      visited.(i) <- true;
      let node = cfg.Cfg.nodes.(i) in
      if reportable node then unreachable := i :: !unreachable
      else
        List.iter (fun s -> if not reachable.(s) then walk s) node.Cfg.n_succs
    end
  in
  Array.iteri
    (fun i node ->
      if
        (not reachable.(i))
        && List.for_all (fun p -> reachable.(p)) node.Cfg.n_preds
      then walk i)
    cfg.Cfg.nodes;
  (* DF-02: backward liveness over all edges (conservative). *)
  let exit_live =
    match liveout with
    | Live_none -> SSet.empty
    | Live_all ->
      List.fold_left (fun acc x -> SSet.add x acc) own_defs assigned
  in
  let live_in = Array.make n SSet.empty in
  let live_out i =
    let node = cfg.Cfg.nodes.(i) in
    let out =
      List.fold_left
        (fun acc s -> SSet.union acc live_in.(s))
        SSet.empty node.Cfg.n_succs
    in
    if i = cfg.Cfg.exit_ then SSet.union out exit_live else out
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let node = cfg.Cfg.nodes.(i) in
      let kill =
        match Cfg.def node with
        | Some x -> SSet.remove x (live_out i)
        | None -> live_out i
      in
      let newin =
        List.fold_left (fun acc x -> SSet.add x acc) kill (Cfg.uses node)
      in
      if not (SSet.equal newin live_in.(i)) then begin
        live_in.(i) <- newin;
        changed := true
      end
    done
  done;
  let dead = ref [] in
  Array.iteri
    (fun i node ->
      if reachable.(i) then
        match node.Cfg.n_kind with
        | Cfg.Stmt (A.Var_decl (x, e)) | Cfg.Stmt (A.Assign (A.L_var x, e)) ->
          if pure e && not (SSet.mem x (live_out i)) then
            dead := (i, x) :: !dead
        | Cfg.Stmt
            ( A.Skip
            | A.Assign (A.L_attr _, _)
            | A.Expr_stmt _ | A.Return _ | A.Send _ | A.Delete _ | A.If _
            | A.While _ | A.For _ )
        | Cfg.Entry | Cfg.Exit | Cfg.Nop | Cfg.Branch _ | Cfg.For_head _ ->
          ())
    cfg.Cfg.nodes;
  let exit_assigned =
    match states.(cfg.Cfg.exit_) with
    | Some st -> SSet.elements st.st_asg
    | None ->
      (* the program provably never terminates: be optimistic so later
         actions don't cascade *)
      SSet.elements
        (List.fold_left (fun acc x -> SSet.add x acc) own_defs assigned)
  in
  {
    res_reachable = reachable;
    res_uninit = List.sort compare (List.rev !uninit);
    res_unreachable = List.sort compare (List.rev !unreachable);
    res_dead = List.sort compare (List.rev !dead);
    res_exit_assigned = exit_assigned;
  }
