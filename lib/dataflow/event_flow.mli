(** The cross-layer event-flow pass: match [send] statements in ASL
    behaviors (and [Send_signal] activity nodes) against statechart
    triggers, deferred events and [Accept_event] nodes.

    - [DF-05] an event some behavior emits that no trigger ever
      consumes — the send is a dead letter.
    - [DF-06] a trigger no behavior ever emits — the transition can
      only fire on external stimulus.

    Models that emit nothing at all are driven entirely from outside
    (e.g. [simulate --events]); the pass stays silent on them rather
    than flagging every trigger.  A machine with an [Any_trigger]
    consumes every event, suppressing DF-05. *)

val check : ?metrics:Telemetry.Metrics.t -> Uml.Model.t -> Finding.t list
(** Deterministically ordered, anchored at the first emitting /
    consuming element in model order.  Counters:
    [dataflow.events.emitted], [dataflow.events.consumed],
    [dataflow.events.findings]. *)
