type t = {
  f_code : string;
  f_element : Uml.Ident.t option;
  f_message : string;
}

let make ~code ?element msg =
  { f_code = code; f_element = element; f_message = msg }

let dedup fs = List.sort_uniq compare fs
