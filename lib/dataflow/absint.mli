(** Forward abstract interpretation and backward liveness over a
    {!Cfg}.

    The forward pass runs one fixpoint combining

    - a flat constant/interval lattice ({!aval}) used to fold branch
      conditions: an edge leaving a [Branch] whose condition evaluates
      to a known boolean is pruned, and a [For_head] whose bounds are
      provably inverted never enters its body — so reachability is
      computed {e under} constant propagation (DF-03), and
    - a definite-assignment analysis (must, intersection at joins)
      matching the interpreter's flat-frame semantics: assignments in
      a taken branch escape the branch, which is exactly where the
      block-scoped typechecker and the runtime disagree (DF-01).

    The backward pass is a classic liveness fixpoint over all edges
    (feasible or not — conservative) used for dead stores (DF-02).

    Everything here is total and deterministic: no hashing order
    reaches the results, random programs from qcheck must not crash
    it, and interval growth is widened to [Top] so the fixpoint
    terminates on any loop. *)

type aval =
  | Top  (** unknown (objects, strings, reals, attribute reads, calls) *)
  | A_int of int * int  (** integer in the inclusive interval *)
  | A_bool of bool option  (** boolean, possibly known *)

val const_bool : Asl.Ast.expr -> bool option
(** Abstract value of a closed guard with every variable unknown:
    [Some b] exactly when the guard is provably always [b] (DF-04). *)

type liveout =
  | Live_none
      (** locals die when the program ends (fresh-frame behaviors:
          transition effects, state behaviors, operation bodies) *)
  | Live_all
      (** every binding may be read later (activity action bodies
          sharing one store) *)

type result = {
  res_reachable : bool array;  (** per node, under constant folding *)
  res_uninit : (int * string) list;
      (** reachable reads of a variable that is textually assigned
          somewhere (here or in [extra_defs]) but not definitely
          assigned on every path — (node, variable), ascending *)
  res_unreachable : int list;
      (** heads of unreachable regions: the first statement-bearing
          node of each dead region, ascending *)
  res_dead : (int * string) list;
      (** pure stores whose value no later read can see *)
  res_exit_assigned : string list;
      (** variables definitely assigned when the program ends, sorted;
          if the exit is unreachable, falls back to every textual
          definition plus [assigned] *)
}

val analyze :
  ?assigned:string list ->
  ?extra_defs:string list ->
  ?liveout:liveout ->
  Cfg.t ->
  result
(** [assigned] are variables definitely bound on entry (event
    parameters, operation parameters, bindings threaded from earlier
    activity actions).  [extra_defs] widens the set of names DF-01 may
    report beyond this program's own definitions (variables other
    actions of the same activity define); a read of a name in neither
    set is the typechecker's unbound-variable territory (ASL-02), not
    a dataflow finding.  [liveout] defaults to {!Live_none}. *)
