(** Control-flow graphs over ASL programs.

    A program ({!Asl.Ast.program}) is lowered to a small graph whose
    nodes are straight-line statements, branch conditions and for-loop
    heads.  Structured statements contribute their condition node plus
    explicit [Nop] head/join nodes, so every branch arm has a distinct
    head even when its statement list is empty — the abstract
    interpreter ({!Absint}) relies on that to prune edges under
    constant-folded conditions.

    Successor lists are positional for the two-way nodes:
    [Branch] has successors [then-head; else-head] (a [While] condition
    is a [Branch] whose else-head is the loop exit, with a back edge
    from the body), and [For_head] has successors [body-head; after].
    Statements following a [Return] are allocated but never linked, so
    they surface as unreachable. *)

type kind =
  | Entry
  | Exit
  | Nop  (** structural head/join, no effect *)
  | Stmt of Asl.Ast.stmt
      (** straight-line statement — never [If]/[While]/[For], which
          lower to [Branch]/[For_head] *)
  | Branch of Asl.Ast.expr  (** condition; successors [then; else] *)
  | For_head of string * Asl.Ast.expr * Asl.Ast.expr
      (** loop variable and bounds; successors [body; after] *)

type node = {
  n_id : int;
  n_kind : kind;
  mutable n_succs : int list;
      (** positional for [Branch]/[For_head]; append order otherwise *)
  mutable n_preds : int list;
}

type t = {
  nodes : node array;  (** indexed by [n_id], allocation order *)
  entry : int;
  exit_ : int;
}

val of_program : Asl.Ast.program -> t
(** Total: never raises, whatever the program shape. *)

val expr_vars : Asl.Ast.expr -> string list
(** Variables read by an expression, each once, first occurrence
    first.  [self] and attribute names are not variables. *)

val uses : node -> string list
(** Variables read at the node, each once. *)

val def : node -> string option
(** The local variable the node assigns ([var x := e] / [x := e], or a
    for-loop variable); [None] for attribute writes and everything
    else. *)

val label : node -> string
(** Short human label for diagnostics, e.g. ["assignment to x"]. *)
