(** A dataflow finding, neutral with respect to the lint layer.

    The passes in this library report findings rather than
    [Uml.Wfr.diagnostic]s so that severities stay owned by the lint
    rule registry: the [lint] library lifts each finding into a
    diagnostic whose severity comes from [Lint.Rules]. *)

type t = {
  f_code : string;  (** stable rule code, e.g. ["DF-01"] *)
  f_element : Uml.Ident.t option;  (** anchoring model element, if any *)
  f_message : string;
}

val make : code:string -> ?element:Uml.Ident.t -> string -> t

val dedup : t list -> t list
(** Sort by (code, element, message) and drop exact duplicates — the
    deterministic order every pass returns. *)
