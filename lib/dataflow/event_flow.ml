open Uml
module A = Asl.Ast
module SSet = Set.Make (String)

let rec stmt_sends acc (s : A.stmt) =
  match s with
  | A.Send (name, _, _) -> name :: acc
  | A.If (_, t, e) ->
    List.fold_left stmt_sends (List.fold_left stmt_sends acc t) e
  | A.While (_, body) | A.For (_, _, _, body) ->
    List.fold_left stmt_sends acc body
  | A.Skip | A.Var_decl _ | A.Assign _ | A.Expr_stmt _ | A.Return _
  | A.Delete _ ->
    acc

let program_sends src =
  match Asl.Compiled.program_result (Asl.Compiled.program src) with
  | Error _ -> []
  | Ok prog -> List.rev (List.fold_left stmt_sends [] prog)

(* Distinct names in first-occurrence order, keeping the first anchor. *)
let firsts pairs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (name, _) ->
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        true
      end)
    pairs

let check ?(metrics = Telemetry.Metrics.null) m =
  let emits = ref [] in
  let consumes = ref [] in
  let any = ref false in
  let emit element name = emits := (name, element) :: !emits in
  let consume element name = consumes := (name, element) :: !consumes in
  let behavior element src = List.iter (emit element) (program_sends src) in
  let opt f src =
    match src with
    | None -> ()
    | Some s -> f s
  in
  let trigger element trg =
    match trg with
    | Smachine.Signal_trigger s -> consume element s
    | Smachine.Any_trigger -> any := true
    | Smachine.Time_trigger _ | Smachine.Completion -> ()
  in
  List.iter
    (fun (sm : Smachine.t) ->
      List.iter
        (fun (tr : Smachine.transition) ->
          opt (behavior tr.Smachine.tr_id) tr.Smachine.tr_effect;
          List.iter (trigger tr.Smachine.tr_id) tr.Smachine.tr_triggers)
        (Smachine.all_transitions sm);
      List.iter
        (fun v ->
          match v with
          | Smachine.Pseudo _ | Smachine.Final _ -> ()
          | Smachine.State st ->
            opt (behavior st.Smachine.st_id) st.Smachine.st_entry;
            opt (behavior st.Smachine.st_id) st.Smachine.st_exit;
            opt (behavior st.Smachine.st_id) st.Smachine.st_do;
            List.iter (trigger st.Smachine.st_id) st.Smachine.st_deferred)
        (Smachine.all_vertices sm))
    (Model.state_machines m);
  List.iter
    (fun (cl : Classifier.t) ->
      List.iter
        (fun (op : Classifier.operation) ->
          opt (behavior op.Classifier.op_id) op.Classifier.op_body)
        cl.Classifier.cl_operations)
    (Model.classifiers m);
  List.iter
    (fun (ac : Activityg.t) ->
      List.iter
        (fun node ->
          match node with
          | Activityg.Action a ->
            opt
              (behavior a.Activityg.act_head.Activityg.nd_id)
              a.Activityg.act_body
          | Activityg.Send_signal ev ->
            emit ev.Activityg.ev_head.Activityg.nd_id ev.Activityg.ev_event
          | Activityg.Accept_event ev ->
            consume ev.Activityg.ev_head.Activityg.nd_id
              ev.Activityg.ev_event
          | Activityg.Call_behavior _ | Activityg.Object_node _
          | Activityg.Initial_node _ | Activityg.Activity_final _
          | Activityg.Flow_final _ | Activityg.Fork_node _
          | Activityg.Join_node _ | Activityg.Decision_node _
          | Activityg.Merge_node _ ->
            ())
        ac.Activityg.ac_nodes)
    (Model.activities m);
  let emits = List.rev !emits in
  let consumes = List.rev !consumes in
  Telemetry.Metrics.incr
    ~by:(List.length emits)
    (Telemetry.Metrics.counter metrics "dataflow.events.emitted");
  Telemetry.Metrics.incr
    ~by:(List.length consumes)
    (Telemetry.Metrics.counter metrics "dataflow.events.consumed");
  let out =
    if emits = [] then [] (* externally-driven model: nothing to match *)
    else begin
      let emitted = SSet.of_list (List.map fst emits) in
      let consumed = SSet.of_list (List.map fst consumes) in
      let dead_letters =
        if !any then []
        else
          List.filter_map
            (fun (name, element) ->
              if SSet.mem name consumed then None
              else
                Some
                  (Finding.make ~code:"DF-05" ~element
                     (Printf.sprintf
                        "event %s is emitted but never consumed by any \
                         trigger"
                        name)))
            (firsts emits)
      in
      let unfed =
        List.filter_map
          (fun (name, element) ->
            if SSet.mem name emitted then None
            else
              Some
                (Finding.make ~code:"DF-06" ~element
                   (Printf.sprintf
                      "trigger %s is never emitted by any behavior" name)))
          (firsts consumes)
      in
      Finding.dedup (dead_letters @ unfed)
    end
  in
  Telemetry.Metrics.incr
    ~by:(List.length out)
    (Telemetry.Metrics.counter metrics "dataflow.events.findings");
  out
