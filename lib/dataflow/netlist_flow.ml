module SSet = Set.Make (String)
module M = Hdl.Module_
module N = Dsim.Netlist

(* Exactly one flop: [t := s]. *)
let flop_shape (sp : M.seq_process) =
  match sp.M.sp_body with
  | [ Hdl.Stmt.Assign (t, Hdl.Expr.Ref s) ] -> Some (t, s)
  | [ Hdl.Stmt.Assign (_, _) ]
  | [ Hdl.Stmt.If (_, _, _) ]
  | [ Hdl.Stmt.Case (_, _, _) ]
  | [ Hdl.Stmt.Null ]
  | []
  | _ :: _ :: _ ->
    None

let run (nl : N.t) =
  let flat = nl.N.nl_module in
  let names = nl.N.nl_names in
  let n = Array.length names in
  let seq_srcs =
    Array.of_list
      (List.filter_map
         (fun p ->
           match p with
           | M.Seq sp -> Some sp
           | M.Comb _ -> None)
         flat.M.mod_processes)
  in
  (* clock domains: seeded at sequential writes, closed over comb *)
  let dom = Array.make n SSet.empty in
  Array.iter
    (fun (q : N.seq) ->
      Array.iter
        (fun w -> dom.(w) <- SSet.add q.N.q_clock dom.(w))
        q.N.q_writes)
    nl.N.nl_seq;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (c : N.comb) ->
        let u =
          Array.fold_left
            (fun acc r -> SSet.union acc dom.(r))
            SSet.empty c.N.c_reads
        in
        Array.iter
          (fun w ->
            let d = SSet.union dom.(w) u in
            if not (SSet.equal d dom.(w)) then begin
              dom.(w) <- d;
              changed := true
            end)
          c.N.c_writes)
      nl.N.nl_comb
  done;
  let outputs =
    List.filter_map
      (fun (p : M.port) ->
        if p.M.port_dir = M.Output then
          match N.index nl p.M.port_name with
          | Some i -> Some (p.M.port_name, i)
          | None -> None
        else None)
      flat.M.mod_ports
  in
  let is_output name = List.exists (fun (o, _) -> String.equal o name) outputs in
  let seq_clock_readers si =
    Array.fold_left
      (fun acc (q : N.seq) ->
        if Array.exists (fun r -> r = si) q.N.q_reads then
          q.N.q_clock :: acc
        else acc)
      [] nl.N.nl_seq
  in
  let findings = ref [] in
  (* HDL-12: cross-domain reads in clocked processes *)
  Array.iteri
    (fun i (q : N.seq) ->
      let sp = seq_srcs.(i) in
      let c = q.N.q_clock in
      Array.iter
        (fun r ->
          let d = dom.(r) in
          if (not (SSet.is_empty d)) && not (SSet.equal d (SSet.singleton c))
          then begin
            let rname = names.(r) in
            let exempt =
              match flop_shape sp with
              | Some (t, s) when String.equal s rname && not (is_output t)
                -> (
                match N.index nl t with
                | Some ti ->
                  Array.length nl.N.nl_fanout.(ti) = 0
                  &&
                  let readers = seq_clock_readers ti in
                  readers <> [] && List.for_all (String.equal c) readers
                | None -> false)
              | Some _ | None -> false
            in
            if not exempt then
              findings :=
                Finding.make ~code:"HDL-12"
                  (Printf.sprintf
                     "process %s (clock %s) reads %s from clock domain %s \
                      without a 2-FF synchronizer"
                     q.N.q_name c rname
                     (String.concat "," (SSet.elements (SSet.remove c d))))
                :: !findings
          end)
        q.N.q_reads)
    nl.N.nl_seq;
  (* HDL-13: unreset, uninitialized registers that drive outputs *)
  Array.iter
    (fun (q : N.seq) ->
      match q.N.q_reset with
      | Some _ -> ()
      | None ->
        Array.iter
          (fun w ->
            let wname = names.(w) in
            let has_init =
              match M.find_signal flat wname with
              | Some s -> s.M.sig_init <> None
              | None -> false
            in
            if not has_init then begin
              let reached = Array.make n false in
              reached.(w) <- true;
              let grew = ref true in
              while !grew do
                grew := false;
                Array.iter
                  (fun (cb : N.comb) ->
                    if
                      Array.exists (fun r -> reached.(r)) cb.N.c_reads
                      && Array.exists (fun x -> not reached.(x)) cb.N.c_writes
                    then begin
                      Array.iter (fun x -> reached.(x) <- true) cb.N.c_writes;
                      grew := true
                    end)
                  nl.N.nl_comb
              done;
              match List.find_opt (fun (_, oi) -> reached.(oi)) outputs with
              | None -> ()
              | Some (oname, _) ->
                findings :=
                  Finding.make ~code:"HDL-13"
                    (Printf.sprintf
                       "register %s (process %s) has no reset and drives \
                        output %s before the first clock edge"
                       wname q.N.q_name oname)
                  :: !findings
            end)
          q.N.q_writes)
    nl.N.nl_seq;
  Finding.dedup !findings

let check ?(metrics = Telemetry.Metrics.null) design =
  match Hdl.Check.errors (Hdl.Check.check_design design) with
  | _ :: _ -> [] (* the HDL pass owns broken designs *)
  | [] -> (
    match Hdl.Elaborate.flatten design with
    | exception Hdl.Elaborate.Elaboration_error _ -> []
    | flat -> (
      match N.compile flat with
      | exception Dsim.Sim.Simulation_error _ -> []
      | nl ->
        Telemetry.Metrics.incr
          ~by:(Array.length nl.N.nl_seq)
          (Telemetry.Metrics.counter metrics "dataflow.netlist.seq_processes");
        let out = run nl in
        Telemetry.Metrics.incr
          ~by:(List.length out)
          (Telemetry.Metrics.counter metrics "dataflow.netlist.findings");
        out))
