open Uml

type status =
  | Running
  | Finished
  | Terminated
[@@deriving eq, show]

type step_record = {
  sr_event : Event.t;
  sr_fired : Ident.t list;
  sr_config : string list;
}
[@@deriving eq, show]

exception Model_error of string

let model_error fmt = Printf.ksprintf (fun m -> raise (Model_error m)) fmt

type timer = {
  tm_due : int;
  tm_state : Ident.t;
  tm_transition : Smachine.transition;
}

type t = {
  topo : Topology.t;
  engine_interp : Asl.Interp.t;
  self_ : Asl.Value.t;
  mutable config : Ident.Set.t;
  mutable engine_status : status;
  pool : Event.t Queue.t;
  mutable deferred : Event.t list;  (** reverse order *)
  shallow_store : (Ident.t, Ident.t) Hashtbl.t;  (** region -> direct child *)
  deep_store : (Ident.t, Ident.t list) Hashtbl.t;  (** region -> leaves *)
  mutable clock : int;
  mutable timers : timer list;  (** sorted by due time *)
  mutable completion_sent : Ident.Set.t;
  mutable steps : step_record list;  (** reverse order *)
  e_metrics : Telemetry.Metrics.t;
  m_dispatched : Telemetry.Metrics.counter;
  m_fired : Telemetry.Metrics.counter;
  m_microsteps : Telemetry.Metrics.counter;
  g_queue : Telemetry.Metrics.gauge;
}

(* Parse every behavior string of the machine exactly once, at engine
   construction: dispatch then runs entirely on the memoized compiled
   forms.  Parse errors are captured, not raised — a guard that never
   fires must not fail at [create], matching the historical
   parse-per-dispatch semantics. *)
let precompile_behaviors sm =
  let opt compile = function
    | None -> ()
    | Some src -> ignore (compile src)
  in
  List.iter
    (fun (tr : Smachine.transition) ->
      opt Asl.Compiled.guard tr.Smachine.tr_guard;
      opt Asl.Compiled.program tr.Smachine.tr_effect)
    (Smachine.all_transitions sm);
  List.iter
    (fun v ->
      match v with
      | Smachine.State s ->
        opt Asl.Compiled.program s.Smachine.st_entry;
        opt Asl.Compiled.program s.Smachine.st_exit;
        opt Asl.Compiled.program s.Smachine.st_do
      | Smachine.Pseudo _ | Smachine.Final _ -> ())
    (Smachine.all_vertices sm)

let create ?interp ?(self_ = Asl.Value.V_null)
    ?(metrics = Telemetry.Metrics.null) sm =
  let engine_interp =
    match interp with
    | Some i -> i
    | None -> Asl.Interp.create ~metrics (Asl.Store.create ())
  in
  precompile_behaviors sm;
  {
    topo = Topology.build sm;
    engine_interp;
    self_;
    config = Ident.Set.empty;
    engine_status = Running;
    pool = Queue.create ();
    deferred = [];
    shallow_store = Hashtbl.create 8;
    deep_store = Hashtbl.create 8;
    clock = 0;
    timers = [];
    completion_sent = Ident.Set.empty;
    steps = [];
    e_metrics = metrics;
    m_dispatched = Telemetry.Metrics.counter metrics "statechart.events_dispatched";
    m_fired = Telemetry.Metrics.counter metrics "statechart.transitions_fired";
    m_microsteps = Telemetry.Metrics.counter metrics "statechart.rtc_microsteps";
    g_queue = Telemetry.Metrics.gauge metrics "statechart.queue_depth";
  }

let interp t = t.engine_interp
let metrics t = t.e_metrics
let status t = t.engine_status
let active_ids t = t.config
let now t = t.clock

(* --- ASL bridging -------------------------------------------------- *)

let event_params (ev : Event.t) =
  ("event", Asl.Value.V_string ev.Event.name)
  :: List.mapi (fun i v -> (Printf.sprintf "e%d" (i + 1), v)) ev.Event.args

let guard_passes t ev = function
  | None -> true
  | Some src -> (
    match
      Asl.Interp.eval_guard_compiled ~self_:t.self_ ~params:(event_params ev)
        t.engine_interp (Asl.Compiled.guard src)
    with
    | b -> b
    | exception Asl.Interp.Runtime_error m ->
      model_error "guard %S failed: %s" src m)

let run_behavior t ev = function
  | None -> ()
  | Some src -> (
    match
      Asl.Interp.run_compiled ~self_:t.self_ ~params:(event_params ev)
        t.engine_interp (Asl.Compiled.program src)
    with
    | _result -> ()
    | exception Asl.Interp.Runtime_error m ->
      model_error "behavior %S failed: %s" src m)

(* --- configuration queries ----------------------------------------- *)

let is_active t id = Ident.Set.mem id t.config

let active_descendants t id =
  Ident.Set.filter
    (fun v -> List.exists (Ident.equal id) (Topology.ancestor_states t.topo v))
    t.config

let active_leaves t =
  Ident.Set.filter
    (fun v -> Ident.Set.is_empty (active_descendants t v))
    t.config

let active_leaf_names t =
  let names =
    List.map
      (fun id -> Smachine.vertex_name (Topology.vertex t.topo id))
      (Ident.Set.elements (active_leaves t))
  in
  List.sort String.compare names

let qualified_name t id =
  let ancestors = Topology.ancestor_states t.topo id in
  let parts =
    List.map
      (fun a -> Smachine.vertex_name (Topology.vertex t.topo a))
      ancestors
    @ [ Smachine.vertex_name (Topology.vertex t.topo id) ]
  in
  String.concat "." parts

let signature t =
  let leaves =
    List.sort String.compare
      (List.map (qualified_name t) (Ident.Set.elements (active_leaves t)))
  in
  String.concat "|" leaves

let is_in t name =
  Ident.Set.exists
    (fun id -> Smachine.vertex_name (Topology.vertex t.topo id) = name)
    t.config

(* Direct active child vertex of a region, if any. *)
let active_child_of_region t region_id =
  Ident.Set.fold
    (fun id acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if Ident.equal (Topology.region_of_vertex t.topo id) region_id then
          Some id
        else None)
    t.config None

(* --- timers --------------------------------------------------------- *)

let schedule_timers t state_id =
  let add tr =
    List.iter
      (fun trigger ->
        match trigger with
        | Smachine.Time_trigger d ->
          let timer =
            { tm_due = t.clock + d; tm_state = state_id; tm_transition = tr }
          in
          t.timers <-
            List.sort (fun a b -> compare a.tm_due b.tm_due) (timer :: t.timers)
        | Smachine.Signal_trigger _ | Smachine.Any_trigger
        | Smachine.Completion ->
          ())
      tr.Smachine.tr_triggers
  in
  List.iter add (Topology.outgoing t.topo state_id)

let cancel_timers t state_id =
  t.timers <-
    List.filter (fun tm -> not (Ident.equal tm.tm_state state_id)) t.timers

(* --- history -------------------------------------------------------- *)

(* Record history for every history-owning region inside the states
   about to be exited; must run while the configuration is intact. *)
let record_history t exit_ids =
  let record_for_state sid =
    match Topology.vertex t.topo sid with
    | Smachine.State s ->
      List.iter
        (fun (r : Smachine.region) ->
          match Topology.history_of_region r with
          | None -> ()
          | Some h ->
            let rid = r.Smachine.rg_id in
            (match active_child_of_region t rid with
             | Some child ->
               Hashtbl.replace t.shallow_store rid child;
               let leaves =
                 Ident.Set.elements
                   (Ident.Set.filter
                      (fun v ->
                        List.exists (Ident.equal rid)
                          (Topology.region_chain t.topo v)
                        && Ident.Set.is_empty (active_descendants t v))
                      t.config)
               in
               if h.Smachine.ps_kind = Smachine.Deep_history then
                 Hashtbl.replace t.deep_store rid leaves
             | None -> ()))
        s.Smachine.st_regions
    | Smachine.Pseudo _ | Smachine.Final _ -> ()
  in
  List.iter record_for_state exit_ids

(* --- exiting -------------------------------------------------------- *)

(* Exit the whole active subtree rooted at [root] (inclusive), running
   exit behaviors innermost-first. *)
let exit_subtree t ev root =
  let members =
    if is_active t root then Ident.Set.add root (active_descendants t root)
    else active_descendants t root
  in
  let ordered =
    List.sort
      (fun a b ->
        compare (Topology.depth t.topo b) (Topology.depth t.topo a))
      (Ident.Set.elements members)
  in
  record_history t ordered;
  List.iter
    (fun id ->
      (match Topology.vertex t.topo id with
       | Smachine.State s -> run_behavior t ev s.Smachine.st_exit
       | Smachine.Pseudo _ | Smachine.Final _ -> ());
      cancel_timers t id;
      t.config <- Ident.Set.remove id t.config;
      t.completion_sent <- Ident.Set.remove id t.completion_sent)
    ordered

(* --- entering ------------------------------------------------------- *)

(* Activate a single state vertex: config, entry behavior, timers. *)
let activate t ev id =
  if not (is_active t id) then begin
    t.config <- Ident.Set.add id t.config;
    match Topology.vertex t.topo id with
    | Smachine.State s ->
      run_behavior t ev s.Smachine.st_entry;
      (* do-activities run to completion on entry (they are ASL
         programs, not processes); the state then counts as completed *)
      run_behavior t ev s.Smachine.st_do;
      schedule_timers t id
    | Smachine.Final _ -> ()
    | Smachine.Pseudo _ -> model_error "pseudostate activated as state"
  end

(* [planned] is the set of explicit deep targets still to be entered; a
   region containing one of them must not be default-entered. *)
let region_contains_planned t planned rid =
  Ident.Set.exists
    (fun p -> List.exists (Ident.equal rid) (Topology.region_chain t.topo p))
    planned

let rec default_enter_region t ev planned (r : Smachine.region) =
  match Topology.initial_of_region r with
  | None -> ()
  | Some init -> (
    match Topology.outgoing t.topo init.Smachine.ps_id with
    | [] -> model_error "initial pseudostate without outgoing transition"
    | tr :: _rest ->
      run_behavior t ev tr.Smachine.tr_effect;
      enter_target t ev planned tr.Smachine.tr_target)

and default_enter_state_regions t ev planned (s : Smachine.state) =
  List.iter
    (fun (r : Smachine.region) ->
      if not (region_contains_planned t planned r.Smachine.rg_id) then
        if active_child_of_region t r.Smachine.rg_id = None then
          default_enter_region t ev planned r)
    s.Smachine.st_regions

(* Enter a (possibly deep) target vertex, activating inactive ancestors
   outermost-first and default-entering sibling regions. *)
and enter_target t ev planned target_id =
  let planned = Ident.Set.remove target_id planned in
  let ancestors = Topology.ancestor_states t.topo target_id in
  let to_enter = List.filter (fun a -> not (is_active t a)) ancestors in
  List.iter (fun a -> activate t ev a) to_enter;
  (match Topology.vertex_opt t.topo target_id with
   | None -> model_error "transition target %s unknown" target_id
   | Some (Smachine.State s) ->
     activate t ev target_id;
     default_enter_state_regions t ev planned s
   | Some (Smachine.Final _) -> activate t ev target_id
   | Some (Smachine.Pseudo p) -> enter_pseudostate t ev planned p);
  (* sibling regions of the freshly entered ancestors *)
  List.iter
    (fun a ->
      match Topology.vertex t.topo a with
      | Smachine.State s ->
        let planned = Ident.Set.add target_id planned in
        List.iter
          (fun (r : Smachine.region) ->
            let rid = r.Smachine.rg_id in
            let on_path =
              List.exists (Ident.equal rid)
                (Topology.region_chain t.topo target_id)
            in
            if
              (not on_path)
              && (not (region_contains_planned t planned rid))
              && active_child_of_region t rid = None
            then default_enter_region t ev planned r)
          s.Smachine.st_regions
      | Smachine.Pseudo _ | Smachine.Final _ -> ())
    to_enter;
  check_terminate t target_id

and enter_pseudostate t ev planned (p : Smachine.pseudostate) =
  match p.Smachine.ps_kind with
  | Smachine.Terminate -> t.engine_status <- Terminated
  | Smachine.Junction | Smachine.Choice | Smachine.Entry_point
  | Smachine.Exit_point | Smachine.Initial -> (
    let branches = Topology.outgoing t.topo p.Smachine.ps_id in
    let enabled =
      List.find_opt (fun tr -> guard_passes t ev tr.Smachine.tr_guard) branches
    in
    match enabled with
    | None ->
      model_error "no enabled branch at pseudostate %s" p.Smachine.ps_name
    | Some tr ->
      run_behavior t ev tr.Smachine.tr_effect;
      enter_target t ev planned tr.Smachine.tr_target)
  | Smachine.Fork ->
    let branches = Topology.outgoing t.topo p.Smachine.ps_id in
    let targets = List.map (fun tr -> tr.Smachine.tr_target) branches in
    let planned =
      List.fold_left (fun s tgt -> Ident.Set.add tgt s) planned targets
    in
    List.iter
      (fun tr ->
        run_behavior t ev tr.Smachine.tr_effect;
        enter_target t ev
          (Ident.Set.remove tr.Smachine.tr_target planned)
          tr.Smachine.tr_target)
      branches
  | Smachine.Join -> (
    match Topology.outgoing t.topo p.Smachine.ps_id with
    | [] -> model_error "join without outgoing transition"
    | tr :: _rest ->
      run_behavior t ev tr.Smachine.tr_effect;
      enter_target t ev planned tr.Smachine.tr_target)
  | Smachine.Shallow_history -> (
    let rid = Topology.region_of_vertex t.topo p.Smachine.ps_id in
    match Hashtbl.find_opt t.shallow_store rid with
    | Some child -> enter_target t ev planned child
    | None -> history_default t ev planned p rid)
  | Smachine.Deep_history -> (
    let rid = Topology.region_of_vertex t.topo p.Smachine.ps_id in
    match Hashtbl.find_opt t.deep_store rid with
    | Some leaves when leaves <> [] ->
      let planned =
        List.fold_left (fun s l -> Ident.Set.add l s) planned leaves
      in
      List.iter
        (fun l -> enter_target t ev (Ident.Set.remove l planned) l)
        leaves
    | Some _ | None -> history_default t ev planned p rid)

and history_default t ev planned (p : Smachine.pseudostate) rid =
  match Topology.outgoing t.topo p.Smachine.ps_id with
  | tr :: _rest ->
    run_behavior t ev tr.Smachine.tr_effect;
    enter_target t ev planned tr.Smachine.tr_target
  | [] -> default_enter_region t ev planned (Topology.region t.topo rid)

and check_terminate t target_id =
  (* reaching a final state of a top-level region finishes the machine
     when every top region is final *)
  match Topology.vertex_opt t.topo target_id with
  | Some (Smachine.Final _f) ->
    let top_regions = (Topology.machine t.topo).Smachine.sm_regions in
    let all_final =
      List.for_all
        (fun (r : Smachine.region) ->
          match active_child_of_region t r.Smachine.rg_id with
          | Some child -> (
            match Topology.vertex t.topo child with
            | Smachine.Final _ -> true
            | Smachine.State _ | Smachine.Pseudo _ -> false)
          | None -> false)
        top_regions
    in
    if all_final then t.engine_status <- Finished
  | Some (Smachine.State _ | Smachine.Pseudo _) | None -> ()

(* --- transition selection ------------------------------------------ *)

(* What a transition exits: a whole vertex subtree, or — for a local
   transition from a composite into itself — only the active children
   of one of the composite's regions. *)
type exit_scope =
  | Exit_nothing
  | Exit_root of Ident.t
  | Exit_region_children of Ident.t

(* Is this a local self-descent (composite source, target inside it)? *)
let local_scope_region t (tr : Smachine.transition) =
  let src = tr.Smachine.tr_source in
  let tgt = tr.Smachine.tr_target in
  if
    (match Topology.vertex_opt t.topo src with
     | Some (Smachine.State s) -> Smachine.is_composite s
     | Some (Smachine.Pseudo _ | Smachine.Final _) | None -> false)
    && Topology.is_within t.topo ~ancestor:src tgt
  then
    List.find_opt
      (fun rid ->
        match Topology.state_of_region t.topo rid with
        | Some owner -> Ident.equal owner src
        | None -> false)
      (Topology.region_chain t.topo tgt)
  else None

let main_source t (tr : Smachine.transition) =
  let src = tr.Smachine.tr_source in
  let tgt = tr.Smachine.tr_target in
  match Topology.lca_region t.topo src tgt with
  | None ->
    (* different top regions: exit the top-level ancestor of the source *)
    let chain = Topology.ancestor_states t.topo src in
    (match chain with
     | top :: _rest -> top
     | [] -> src)
  | Some scope -> (
    if Ident.equal (Topology.region_of_vertex t.topo src) scope then src
    else
      let ancestors = Topology.ancestor_states t.topo src in
      match
        List.find_opt
          (fun a -> Ident.equal (Topology.region_of_vertex t.topo a) scope)
          ancestors
      with
      | Some a -> a
      | None -> src)

let scope_of t (tr : Smachine.transition) =
  match tr.Smachine.tr_kind with
  | Smachine.Internal -> Exit_nothing
  | Smachine.Local -> (
    match local_scope_region t tr with
    | Some rid -> Exit_region_children rid
    | None -> Exit_root (main_source t tr))
  | Smachine.External -> Exit_root (main_source t tr)

let exit_set t tr =
  match scope_of t tr with
  | Exit_nothing -> Ident.Set.empty
  | Exit_root root ->
    if is_active t root then Ident.Set.add root (active_descendants t root)
    else active_descendants t root
  | Exit_region_children rid -> (
    match active_child_of_region t rid with
    | Some child -> Ident.Set.add child (active_descendants t child)
    | None -> Ident.Set.empty)

(* Join readiness: every incoming transition's source must be active. *)
let join_ready t join_id =
  List.for_all
    (fun tr -> is_active t tr.Smachine.tr_source)
    (Topology.incoming t.topo join_id)

let transition_triggered t ev (tr : Smachine.transition) =
  let trigger_match =
    match ev with
    | None -> tr.Smachine.tr_triggers = []  (* completion transition *)
    | Some e -> List.exists (fun trg -> Event.matches trg e) tr.Smachine.tr_triggers
  in
  trigger_match
  &&
  let ev_for_guard =
    match ev with
    | Some e -> e
    | None -> Event.make Event.completion_name
  in
  guard_passes t ev_for_guard tr.Smachine.tr_guard
  &&
  match Topology.vertex_opt t.topo tr.Smachine.tr_target with
  | Some (Smachine.Pseudo p) when p.Smachine.ps_kind = Smachine.Join ->
    join_ready t p.Smachine.ps_id
  | Some (Smachine.Pseudo _ | Smachine.State _ | Smachine.Final _) | None ->
    true

(* Enabled transitions for an external event, inner-first. *)
let enabled_transitions t ev =
  let candidates =
    Ident.Set.fold
      (fun id acc ->
        match Topology.vertex t.topo id with
        | Smachine.State _ ->
          List.fold_left
            (fun acc tr ->
              if transition_triggered t (Some ev) tr then tr :: acc else acc)
            acc (Topology.outgoing t.topo id)
        | Smachine.Pseudo _ | Smachine.Final _ -> acc)
      t.config []
  in
  List.sort
    (fun a b ->
      compare
        (Topology.depth t.topo b.Smachine.tr_source)
        (Topology.depth t.topo a.Smachine.tr_source))
    candidates

(* Greedy maximal non-conflicting selection (inner priority). *)
let select_firing_set t candidates =
  let conflict_free chosen_exit tr =
    Ident.Set.is_empty (Ident.Set.inter chosen_exit (exit_set t tr))
    || Smachine.equal_transition_kind tr.Smachine.tr_kind Smachine.Internal
  in
  let pick (chosen, chosen_exit) tr =
    let ex = exit_set t tr in
    let internal =
      Smachine.equal_transition_kind tr.Smachine.tr_kind Smachine.Internal
    in
    let source_surviving =
      (* an internal transition still conflicts if its source gets exited *)
      (not internal) || not (Ident.Set.mem tr.Smachine.tr_source chosen_exit)
    in
    if
      source_surviving
      && (internal || conflict_free chosen_exit tr)
      && (internal || not (Ident.Set.is_empty ex) || is_active t tr.Smachine.tr_source)
    then (tr :: chosen, Ident.Set.union chosen_exit ex)
    else (chosen, chosen_exit)
  in
  let chosen, _ = List.fold_left pick ([], Ident.Set.empty) candidates in
  List.rev chosen

(* --- firing --------------------------------------------------------- *)

let exit_scope_now t ev tr =
  match scope_of t tr with
  | Exit_nothing -> ()
  | Exit_root root -> exit_subtree t ev root
  | Exit_region_children rid -> (
    match active_child_of_region t rid with
    | Some child -> exit_subtree t ev child
    | None -> ())

let fire_transition t ev (tr : Smachine.transition) =
  Telemetry.Metrics.incr t.m_fired;
  match tr.Smachine.tr_kind with
  | Smachine.Internal -> run_behavior t ev tr.Smachine.tr_effect
  | Smachine.External | Smachine.Local ->
    (* join compound: exit every source region of the join *)
    let join_sources =
      match Topology.vertex_opt t.topo tr.Smachine.tr_target with
      | Some (Smachine.Pseudo p) when p.Smachine.ps_kind = Smachine.Join ->
        List.filter_map
          (fun in_tr ->
            if Ident.equal in_tr.Smachine.tr_id tr.Smachine.tr_id then None
            else Some in_tr)
          (Topology.incoming t.topo p.Smachine.ps_id)
      | Some (Smachine.Pseudo _ | Smachine.State _ | Smachine.Final _)
      | None ->
        []
    in
    exit_scope_now t ev tr;
    List.iter
      (fun in_tr ->
        exit_scope_now t ev in_tr;
        run_behavior t ev in_tr.Smachine.tr_effect)
      join_sources;
    run_behavior t ev tr.Smachine.tr_effect;
    if t.engine_status = Running then
      enter_target t ev Ident.Set.empty tr.Smachine.tr_target

(* --- completion ----------------------------------------------------- *)

let state_completed t id =
  match Topology.vertex t.topo id with
  | Smachine.State s ->
    if Smachine.is_composite s then
      List.for_all
        (fun (r : Smachine.region) ->
          match active_child_of_region t r.Smachine.rg_id with
          | Some child -> (
            match Topology.vertex t.topo child with
            | Smachine.Final _ -> true
            | Smachine.State _ | Smachine.Pseudo _ -> false)
          | None -> false)
        s.Smachine.st_regions
    else true (* a simple state's do-activity has already run on entry *)
  | Smachine.Pseudo _ | Smachine.Final _ -> false

(* One completion micro-step: find an active, completed state with an
   enabled completion transition not yet taken, fire it.  Returns the
   transition fired. *)
let completion_step t =
  let candidate =
    Ident.Set.fold
      (fun id acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Ident.Set.mem id t.completion_sent then None
          else if not (state_completed t id) then None
          else
            let trs =
              List.filter
                (fun tr ->
                  tr.Smachine.tr_triggers = []
                  || List.exists
                       (fun trg -> trg = Smachine.Completion)
                       tr.Smachine.tr_triggers)
                (Topology.outgoing t.topo id)
            in
            let enabled =
              List.find_opt (fun tr -> transition_triggered t None tr) trs
            in
            (match enabled with
             | Some tr -> Some (id, tr)
             | None -> None))
      t.config None
  in
  match candidate with
  | None -> None
  | Some (id, tr) ->
    t.completion_sent <- Ident.Set.add id t.completion_sent;
    Telemetry.Metrics.incr t.m_microsteps;
    fire_transition t (Event.make Event.completion_name) tr;
    Some tr

let rec completion_cascade t fired budget =
  if budget <= 0 then
    model_error "completion cascade did not converge (livelock?)";
  if t.engine_status <> Running then List.rev fired
  else
    match completion_step t with
    | None -> List.rev fired
    | Some tr ->
      completion_cascade t (tr.Smachine.tr_id :: fired) (budget - 1)

(* --- run-to-completion step ----------------------------------------- *)

let record_step t ev fired =
  if Telemetry.Metrics.live t.e_metrics then
    Telemetry.Metrics.event t.e_metrics ~scope:"statechart" "step"
      [
        ("event", Telemetry.Metrics.F_str ev.Event.name);
        ("fired", Telemetry.Metrics.F_int (List.length fired));
        ("status", Telemetry.Metrics.F_str (show_status t.engine_status));
      ];
  t.steps <-
    { sr_event = ev; sr_fired = fired; sr_config = active_leaf_names t }
    :: t.steps

let is_deferrable t ev =
  Ident.Set.exists
    (fun id ->
      match Topology.vertex t.topo id with
      | Smachine.State s ->
        List.exists (fun trg -> Event.matches trg ev) s.Smachine.st_deferred
      | Smachine.Pseudo _ | Smachine.Final _ -> false)
    t.config

let rtc t ev =
  Telemetry.Metrics.incr t.m_dispatched;
  let candidates = enabled_transitions t ev in
  let firing = select_firing_set t candidates in
  if firing = [] then begin
    if is_deferrable t ev then t.deferred <- ev :: t.deferred
    else record_step t ev []
  end
  else begin
    Telemetry.Metrics.incr t.m_microsteps;
    List.iter
      (fun tr -> if t.engine_status = Running then fire_transition t ev tr)
      firing;
    let completion_fired =
      if t.engine_status = Running then completion_cascade t [] 1000 else []
    in
    record_step t ev
      (List.map (fun tr -> tr.Smachine.tr_id) firing @ completion_fired);
    (* configuration changed: recall deferred events *)
    let recalled = List.rev t.deferred in
    t.deferred <- [];
    List.iter (fun e -> Queue.push e t.pool) recalled
  end

let start t =
  let ev = Event.make "__init" in
  List.iter
    (fun r -> default_enter_region t ev Ident.Set.empty r)
    (Topology.machine t.topo).Smachine.sm_regions;
  let fired = completion_cascade t [] 1000 in
  record_step t ev fired

let send t ev =
  Queue.push ev t.pool;
  Telemetry.Metrics.set_gauge t.g_queue (Queue.length t.pool)

let step t =
  if t.engine_status <> Running then false
  else if Queue.is_empty t.pool then false
  else begin
    let ev = Queue.pop t.pool in
    Telemetry.Metrics.set_gauge t.g_queue (Queue.length t.pool);
    rtc t ev;
    true
  end

let run_to_quiescence t =
  let rec loop n = if step t then loop (n + 1) else n in
  loop 0

(* Graceful resource guard for adversarial event streams: same drain
   loop, but a step budget turns a potential livelock into a structured
   verdict instead of an unbounded spin. *)
let run_bounded t ~budget =
  if budget < 0 then invalid_arg "Engine.run_bounded: negative budget";
  let rec loop n =
    if n >= budget then if Queue.is_empty t.pool then `Quiescent n else `Exhausted
    else if step t then loop (n + 1)
    else `Quiescent n
  in
  loop 0

let dispatch t ev =
  send t ev;
  let _count = run_to_quiescence t in
  ()

let advance_time t dt =
  let target = t.clock + dt in
  let rec loop () =
    match t.timers with
    | tm :: rest when tm.tm_due <= target && t.engine_status = Running ->
      t.clock <- tm.tm_due;
      t.timers <- rest;
      if
        is_active t tm.tm_state
        && guard_passes t (Event.make Event.time_name)
             tm.tm_transition.Smachine.tr_guard
      then begin
        fire_transition t (Event.make Event.time_name) tm.tm_transition;
        let completion_fired =
          if t.engine_status = Running then completion_cascade t [] 1000
          else []
        in
        record_step t (Event.make Event.time_name)
          (tm.tm_transition.Smachine.tr_id :: completion_fired);
        let _count = run_to_quiescence t in
        ()
      end;
      loop ()
    | _rest -> ()
  in
  loop ();
  t.clock <- target

let trace t = List.rev t.steps
