(** StateChart execution engine (STATEMATE/UML run-to-completion).

    Semantics implemented:
    - hierarchical and orthogonal states, with inner-first transition
      priority and maximal non-conflicting firing sets;
    - entry/exit/effect behaviors in ASL, executed in UML order
      (exits innermost-first, entries outermost-first);
    - initial, junction, choice, fork, join, shallow/deep history,
      entry/exit points and terminate pseudostates;
    - completion transitions (trigger-less transitions fire when the
      source state completes; a composite completes when every region
      reaches a final state);
    - deferred events, [after n] time events on a logical clock.

    Guards and effects run on an {!Asl.Interp} shared with the caller,
    with [self] bound to a model object and event arguments bound to
    [e1], [e2], … plus [event] (the event name). *)

type status =
  | Running
  | Finished  (** a top-level final state was reached *)
  | Terminated  (** a terminate pseudostate was reached *)
[@@deriving eq, show]

type step_record = {
  sr_event : Event.t;
  sr_fired : Uml.Ident.t list;  (** transitions fired, firing order *)
  sr_config : string list;  (** active leaf-state names after the step *)
}
[@@deriving eq, show]

exception Model_error of string
(** Raised when execution reaches an ill-formed situation (e.g. a choice
    with no enabled branch). *)

type t

val create :
  ?interp:Asl.Interp.t ->
  ?self_:Asl.Value.t ->
  ?metrics:Telemetry.Metrics.t ->
  Uml.Smachine.t ->
  t
(** Build an engine; a fresh interpreter over an empty store is created
    when none is supplied (instrumented with [metrics] in that case —
    a caller-supplied [interp] keeps its own registry).  The machine is
    not started yet.  [metrics] (default {!Telemetry.Metrics.null})
    receives [statechart.events_dispatched], [statechart.transitions_fired],
    [statechart.rtc_microsteps], the [statechart.queue_depth] gauge, and
    one structured ["statechart/step"] event per processed event. *)

val start : t -> unit
(** Enter the default configuration (initial transitions, entry
    behaviors, resulting completion cascade). *)

val interp : t -> Asl.Interp.t

val metrics : t -> Telemetry.Metrics.t
(** The registry supplied at creation time. *)

val status : t -> status

val active_ids : t -> Uml.Ident.Set.t
val active_leaf_names : t -> string list
(** Sorted names of the innermost active states. *)

val is_in : t -> string -> bool
(** Is a state with this name active (at any depth)? *)

val send : t -> Event.t -> unit
(** Enqueue an event into the pool. *)

val step : t -> bool
(** Dispatch one pooled event (running the full run-to-completion
    cascade); [false] when the pool is empty or the machine stopped. *)

val dispatch : t -> Event.t -> unit
(** [send] followed by draining the pool. *)

val run_to_quiescence : t -> int
(** Dispatch pooled events until empty; returns the number processed. *)

val run_bounded : t -> budget:int -> [ `Quiescent of int | `Exhausted ]
(** Like {!run_to_quiescence} but with a step budget: [`Quiescent n]
    when the pool drained after [n] dispatches, [`Exhausted] when the
    budget ran out with events still pooled — the graceful verdict
    fault-injection campaigns classify as truncated instead of letting
    an injected event storm spin the engine unboundedly.
    @raise Invalid_argument on a negative budget. *)

val now : t -> int
val advance_time : t -> int -> unit
(** Advance the logical clock, firing due [after n] transitions (and
    their completion cascades) in due-time order. *)

val trace : t -> step_record list
(** Processed events oldest-first (includes internal completion and time
    events). *)

val signature : t -> string
(** Compact digest of the current configuration, e.g. ["Idle|Run.Fast"];
    used by differential tests. *)
