type reach_result = {
  markings : Marking.t list;
  state_count : int;
  truncated : bool;
  deadlocks : Marking.t list;
}

module MSet = Set.Make (struct
  type t = Marking.t

  let compare = Marking.compare
end)

let reachable ?(limit = 10_000) ?(metrics = Telemetry.Metrics.null) net m0 =
  let m_explored = Telemetry.Metrics.counter metrics "petri.markings_explored" in
  let queue = Queue.create () in
  Queue.push m0 queue;
  let rec loop seen order deadlocks truncated =
    if Queue.is_empty queue then (seen, order, deadlocks, truncated)
    else if MSet.cardinal seen >= limit then (seen, order, deadlocks, true)
    else
      let m = Queue.pop queue in
      if MSet.mem m seen then loop seen order deadlocks truncated
      else begin
        let seen = MSet.add m seen in
        Telemetry.Metrics.incr m_explored;
        let successors =
          List.filter_map
            (fun tn -> Marking.fire net m tn.Net.tn_id)
            net.Net.transitions
        in
        let deadlocks = if successors = [] then m :: deadlocks else deadlocks in
        List.iter (fun m' -> Queue.push m' queue) successors;
        loop seen (m :: order) deadlocks truncated
      end
  in
  let _seen, order, deadlocks, truncated =
    loop MSet.empty [] [] false
  in
  let markings = List.rev order in
  {
    markings;
    state_count = List.length markings;
    truncated;
    deadlocks = List.rev deadlocks;
  }

let is_deadlock_free ?limit net m0 =
  let r = reachable ?limit net m0 in
  if r.truncated && r.deadlocks = [] then None else Some (r.deadlocks = [])

let bound ?limit net m0 =
  let r = reachable ?limit net m0 in
  if r.truncated then None
  else
    let max_place m =
      List.fold_left (fun acc (_, n) -> max acc n) 0 (Marking.to_list m)
    in
    Some (List.fold_left (fun acc m -> max acc (max_place m)) 0 r.markings)

let is_k_bounded ?limit k net m0 =
  match bound ?limit net m0 with
  | Some b -> Some (b <= k)
  | None -> None

(* Deterministic linear-congruential choice, so differential tests can
   replay the same sequence on both engines. *)
let random_occurrence_sequence ~seed ~max_steps net m0 =
  let state = ref (seed land 0x3FFFFFFF) in
  let next_choice bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let rec loop m steps acc =
    if steps >= max_steps then List.rev acc
    else
      match Marking.enabled_transitions net m with
      | [] -> List.rev acc
      | enabled ->
        let pick = List.nth enabled (next_choice (List.length enabled)) in
        (match Marking.fire net m pick.Net.tn_id with
         | Some m' -> loop m' (steps + 1) (pick.Net.tn_id :: acc)
         | None -> List.rev acc)
  in
  loop m0 0 []

let dead_transitions ?limit net m0 =
  let r = reachable ?limit net m0 in
  let fired =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc tn -> tn.Net.tn_id :: acc)
          acc
          (Marking.enabled_transitions net m))
      [] r.markings
  in
  let module S = Set.Make (String) in
  let fired = S.of_list fired in
  List.filter_map
    (fun tn -> if S.mem tn.Net.tn_id fired then None else Some tn.Net.tn_id)
    net.Net.transitions
