type reach_result = {
  markings : Marking.t list;
  state_count : int;
  truncated : bool;
  deadlocks : Marking.t list;
}

type summary = {
  sum_reach : reach_result;
  sum_bound : int option;
  sum_deadlock_free : bool option;
  sum_dead_transitions : string list;
}

module MSet = Set.Make (struct
  type t = Marking.t

  let compare = Marking.compare
end)

let reachable_reference ?(limit = 10_000) ?(metrics = Telemetry.Metrics.null)
    net m0 =
  let m_explored = Telemetry.Metrics.counter metrics "petri.markings_explored" in
  let queue = Queue.create () in
  Queue.push m0 queue;
  (* [seen] is marked at enqueue time, so the frontier never holds
     duplicates; [visited] counts popped markings against [limit]. *)
  let rec loop seen visited order deadlocks =
    if Queue.is_empty queue then (order, deadlocks, false)
    else if visited >= limit then (order, deadlocks, true)
    else begin
      let m = Queue.pop queue in
      Telemetry.Metrics.incr m_explored;
      let successors =
        List.filter_map
          (fun tn -> Marking.fire net m tn.Net.tn_id)
          net.Net.transitions
      in
      let deadlocks = if successors = [] then m :: deadlocks else deadlocks in
      let seen =
        List.fold_left
          (fun seen m' ->
            if MSet.mem m' seen then seen
            else begin
              Queue.push m' queue;
              MSet.add m' seen
            end)
          seen successors
      in
      loop seen (visited + 1) (m :: order) deadlocks
    end
  in
  let order, deadlocks, truncated = loop (MSet.singleton m0) 0 [] [] in
  let markings = List.rev order in
  {
    markings;
    state_count = List.length markings;
    truncated;
    deadlocks = List.rev deadlocks;
  }

let explore ?limit ?metrics ?budget ?pool ?compiled net m0 =
  let c =
    match compiled with
    | Some c -> c
    | None -> Compiled.of_net net
  in
  let cm0, residue = Compiled.split c m0 in
  let r = Compiled.reachable ?limit ?metrics ?budget ?pool c cm0 in
  let export = Compiled.export c residue in
  let reach =
    {
      markings = List.map export r.Compiled.r_order;
      state_count = r.Compiled.r_state_count;
      truncated = r.Compiled.r_truncated;
      deadlocks = List.map export r.Compiled.r_deadlocks;
    }
  in
  (* Residue places never change, so they contribute a constant to the
     per-place bound of every visited marking. *)
  let residue_max =
    List.fold_left (fun acc (_, n) -> max acc n) 0 residue
  in
  let dead =
    List.filter_map
      (fun tn ->
        match Compiled.transition_index c tn.Net.tn_id with
        | Some ti when not r.Compiled.r_fired.(ti) -> Some tn.Net.tn_id
        | Some _ | None -> None)
      net.Net.transitions
  in
  {
    sum_reach = reach;
    sum_bound =
      (if reach.truncated then None
       else Some (max r.Compiled.r_max_tokens residue_max));
    sum_deadlock_free =
      (if reach.truncated && reach.deadlocks = [] then None
       else Some (reach.deadlocks = []));
    sum_dead_transitions = dead;
  }

let reachable ?limit ?metrics ?budget ?pool ?compiled net m0 =
  (explore ?limit ?metrics ?budget ?pool ?compiled net m0).sum_reach

let is_deadlock_free ?limit net m0 = (explore ?limit net m0).sum_deadlock_free
let bound ?limit net m0 = (explore ?limit net m0).sum_bound

let is_k_bounded ?limit k net m0 =
  match bound ?limit net m0 with
  | Some b -> Some (b <= k)
  | None -> None

(* Deterministic linear-congruential choice, so differential tests can
   replay the same sequence on both engines. *)
let random_occurrence_sequence ~seed ~max_steps net m0 =
  let state = ref (seed land 0x3FFFFFFF) in
  let next_choice bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let rec loop m steps acc =
    if steps >= max_steps then List.rev acc
    else
      match Marking.enabled_transitions net m with
      | [] -> List.rev acc
      | enabled ->
        let pick = List.nth enabled (next_choice (List.length enabled)) in
        (match Marking.fire net m pick.Net.tn_id with
         | Some m' -> loop m' (steps + 1) (pick.Net.tn_id :: acc)
         | None -> List.rev acc)
  in
  loop m0 0 []

let dead_transitions ?limit ?budget ?pool ?compiled net m0 =
  (explore ?limit ?budget ?pool ?compiled net m0).sum_dead_transitions
