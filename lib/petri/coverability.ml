type count =
  | Fin of int
  | Omega

type omega_marking = (string * count) list

type result = {
  nodes : int;
  unbounded_places : string list;
  truncated : bool;
}

(* Internal representation: ω-markings as int arrays over the compiled
   net's dense place indices, with [omega] as the ω sentinel.  Token
   counts never approach [max_int] — acceleration pushes any strictly
   growing place to ω long before — so the sentinel is unambiguous. *)
let omega = max_int

let hash_om om =
  Array.fold_left (fun h n -> (h * 31) + n + 1) (Array.length om) om
  land max_int

module H = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b = a = b
  let hash = hash_om
end)

let enabled c om ti =
  Array.for_all
    (fun (p, w) -> om.(p) = omega || om.(p) >= w)
    (Compiled.pre_arcs c ti)

let fire c om ti =
  let next = Array.copy om in
  Array.iter
    (fun (p, w) -> if next.(p) <> omega then next.(p) <- next.(p) - w)
    (Compiled.pre_arcs c ti);
  Array.iter
    (fun (p, w) -> if next.(p) <> omega then next.(p) <- next.(p) + w)
    (Compiled.post_arcs c ti);
  next

(* partial order: om1 <= om2 *)
let leq om1 om2 =
  let n = Array.length om1 in
  let rec check i =
    i >= n
    || (om2.(i) = omega || (om1.(i) <> omega && om1.(i) <= om2.(i)))
       && check (i + 1)
  in
  check 0

(* acceleration: any ancestor strictly below the new marking pushes the
   strictly larger places to omega.  [om] is fresh (from {!fire} or an
   earlier copy here), so in-place mutation keeps the reference
   engine's fold-over-ancestors sequencing. *)
let accelerate ancestors om =
  List.fold_left
    (fun om ancestor ->
      if leq ancestor om && om <> ancestor then begin
        Array.iteri
          (fun p a ->
            if a <> omega && om.(p) <> omega && om.(p) > a then
              om.(p) <- omega)
          ancestor;
        om
      end
      else om)
    om ancestors

let analyse ?(limit = 10_000) net m0 =
  let c = Compiled.of_net net in
  let np = Compiled.place_count c in
  let nt = Compiled.transition_count c in
  (* Places unknown to the net are inert under firing and can never
     reach ω; dropping them reproduces the reference verdicts. *)
  let cm0, _residue = Compiled.split c m0 in
  let om0 = Array.init np (Compiled.tokens cm0) in
  let seen = H.create 256 in
  let omega_seen = Array.make np false in
  let truncated = ref false in
  let node_count = ref 0 in
  let note_omegas om =
    Array.iteri (fun p n -> if n = omega then omega_seen.(p) <- true) om
  in
  let rec explore ancestors om =
    if !node_count >= limit then truncated := true
    else if H.mem seen om then ()
    else begin
      incr node_count;
      H.replace seen om ();
      note_omegas om;
      for ti = 0 to nt - 1 do
        if enabled c om ti then begin
          let next = accelerate (om :: ancestors) (fire c om ti) in
          explore (om :: ancestors) next
        end
      done
    end
  in
  explore [] om0;
  let unbounded = ref [] in
  for p = np - 1 downto 0 do
    if omega_seen.(p) then unbounded := Compiled.place_id c p :: !unbounded
  done;
  {
    nodes = !node_count;
    unbounded_places = List.sort String.compare !unbounded;
    truncated = !truncated;
  }

let is_bounded ?limit net m0 =
  let r = analyse ?limit net m0 in
  if r.unbounded_places <> [] then Some false
  else if r.truncated then None
  else Some true

let covers (om : omega_marking) m =
  let covers_entry p n =
    match List.assoc_opt p om with
    | Some Omega -> true
    | Some (Fin k) -> k >= n
    | None -> n = 0
  in
  List.for_all (fun (p, n) -> covers_entry p n) (Marking.to_list m)
