type t = {
  source : Net.t;
  place_ids : string array;
  transition_ids : string array;
  place_idx : (string, int) Hashtbl.t;
  transition_idx : (string, int) Hashtbl.t;
  pre : (int * int) array array;  (** transition -> (place, weight) *)
  post : (int * int) array array;
}

type marking = {
  slots : int array;  (** never mutated after construction *)
  hash : int;
}

let hash_slots slots =
  Array.fold_left (fun h n -> (h * 31) + n + 1) (Array.length slots) slots
  land max_int

let make_marking slots = { slots; hash = hash_slots slots }

let index_of ids =
  let table = Hashtbl.create (Array.length ids * 2) in
  Array.iteri (fun i id -> Hashtbl.replace table id i) ids;
  table

let of_net (net : Net.t) =
  let place_ids =
    Array.of_list (List.map (fun p -> p.Net.pl_id) net.Net.places)
  in
  let transition_ids =
    Array.of_list (List.map (fun tn -> tn.Net.tn_id) net.Net.transitions)
  in
  let place_idx = index_of place_ids in
  let transition_idx = index_of transition_ids in
  let nt = Array.length transition_ids in
  let pre_acc = Array.make nt [] in
  let post_acc = Array.make nt [] in
  List.iter
    (fun arc ->
      match arc with
      | Net.P_to_t (p, tn, w) ->
        let ti = Hashtbl.find transition_idx tn in
        pre_acc.(ti) <- (Hashtbl.find place_idx p, w) :: pre_acc.(ti)
      | Net.T_to_p (tn, p, w) ->
        let ti = Hashtbl.find transition_idx tn in
        post_acc.(ti) <- (Hashtbl.find place_idx p, w) :: post_acc.(ti))
    net.Net.arcs;
  (* [Net.pre]/[Net.post] return arcs in net order; the accumulators
     are reversed, so restore it for identical iteration order. *)
  let finalize acc = Array.map (fun l -> Array.of_list (List.rev l)) acc in
  {
    source = net;
    place_ids;
    transition_ids;
    place_idx;
    transition_idx;
    pre = finalize pre_acc;
    post = finalize post_acc;
  }

let net c = c.source
let place_count c = Array.length c.place_ids
let transition_count c = Array.length c.transition_ids
let transition_id c i = c.transition_ids.(i)
let transition_index c id = Hashtbl.find_opt c.transition_idx id
let place_id c i = c.place_ids.(i)
let pre_arcs c ti = c.pre.(ti)
let post_arcs c ti = c.post.(ti)

let split c m =
  let slots = Array.make (Array.length c.place_ids) 0 in
  let residue =
    List.filter
      (fun (p, n) ->
        match Hashtbl.find_opt c.place_idx p with
        | Some i ->
          slots.(i) <- n;
          false
        | None -> n <> 0)
      (Marking.to_list m)
  in
  (make_marking slots, residue)

let export c residue m =
  let base =
    Array.to_list (Array.mapi (fun i n -> (c.place_ids.(i), n)) m.slots)
  in
  Marking.of_list (base @ residue)

let tokens m i = m.slots.(i)
let marking_equal m1 m2 = m1.hash = m2.hash && m1.slots = m2.slots
let marking_hash m = m.hash

let enabled c m ti =
  ti >= 0
  && ti < Array.length c.transition_ids
  && Array.for_all (fun (p, w) -> m.slots.(p) >= w) c.pre.(ti)

(* Firing an already-checked transition: copy, subtract, add. *)
let fire_enabled c m ti =
  let slots = Array.copy m.slots in
  Array.iter (fun (p, w) -> slots.(p) <- slots.(p) - w) c.pre.(ti);
  Array.iter (fun (p, w) -> slots.(p) <- slots.(p) + w) c.post.(ti);
  make_marking slots

let fire c m ti = if enabled c m ti then Some (fire_enabled c m ti) else None

let fire_by_id c m id =
  match transition_index c id with
  | Some ti -> fire c m ti
  | None -> None

type reach = {
  r_order : marking list;
  r_state_count : int;
  r_truncated : bool;
  r_deadlocks : marking list;
  r_fired : bool array;
  r_max_tokens : int;
}

module H = Hashtbl.Make (struct
  type t = marking

  let equal = marking_equal
  let hash = marking_hash
end)

let reachable_seq ~limit ~metrics ~budget c m0 =
  let m_explored = Telemetry.Metrics.counter metrics "petri.markings_explored" in
  let nt = Array.length c.transition_ids in
  let fired = Array.make nt false in
  let seen = H.create 256 in
  let queue = Queue.create () in
  H.replace seen m0 ();
  Queue.push m0 queue;
  let order = ref [] in
  let deadlocks = ref [] in
  let visited = ref 0 in
  let truncated = ref false in
  let max_tokens = ref 0 in
  let continue = ref true in
  while !continue do
    if Queue.is_empty queue then continue := false
    else if !visited >= limit then begin
      truncated := true;
      continue := false
    end
    else begin
      Exec.Budget.check budget;
      let m = Queue.pop queue in
      incr visited;
      Telemetry.Metrics.incr m_explored;
      order := m :: !order;
      Array.iter (fun n -> if n > !max_tokens then max_tokens := n) m.slots;
      let any = ref false in
      for ti = 0 to nt - 1 do
        if Array.for_all (fun (p, w) -> m.slots.(p) >= w) c.pre.(ti) then begin
          fired.(ti) <- true;
          any := true;
          let m' = fire_enabled c m ti in
          if not (H.mem seen m') then begin
            H.replace seen m' ();
            Queue.push m' queue
          end
        end
      done;
      if not !any then deadlocks := m :: !deadlocks
    end
  done;
  {
    r_order = List.rev !order;
    r_state_count = !visited;
    r_truncated = !truncated;
    r_deadlocks = List.rev !deadlocks;
    r_fired = fired;
    r_max_tokens = !max_tokens;
  }

(* Pure per-marking work — everything the merge phase needs, computed
   from the (read-only) compiled net and one marking, with no access to
   the visited set.  [fired]/[succs] come back in transition order. *)
let expand c nt m =
  let any = ref false in
  let fired_tis = ref [] in
  let succs = ref [] in
  for ti = nt - 1 downto 0 do
    if Array.for_all (fun (p, w) -> m.slots.(p) >= w) c.pre.(ti) then begin
      any := true;
      fired_tis := ti :: !fired_tis;
      succs := fire_enabled c m ti :: !succs
    end
  done;
  let mt = Array.fold_left max 0 m.slots in
  (!any, mt, !fired_tis, !succs)

(* Level-synchronous parallel BFS.  The frontier (one BFS level, already
   deduplicated) is expanded across the pool — that is the hot part:
   enabling checks and marking construction.  The merge back into
   [seen]/[order]/[fired] is sequential, in frontier order, which makes
   the result equal to [reachable_seq]'s field for field: a FIFO queue
   pops level k entirely before level k+1, and within a level in
   enqueue order, which is exactly the frontier order reproduced here.
   Truncation also matches: the sequential loop stops at the first pop
   attempt past [limit], so a level is cut to [limit - visited] nodes
   and the verdict is "truncated" iff nodes remained. *)
let reachable_par ~limit ~metrics ~budget pool c m0 =
  let m_explored = Telemetry.Metrics.counter metrics "petri.markings_explored" in
  let nt = Array.length c.transition_ids in
  let fired = Array.make nt false in
  let seen = H.create 256 in
  H.replace seen m0 ();
  let order = ref [] in
  let deadlocks = ref [] in
  let visited = ref 0 in
  let truncated = ref false in
  let max_tokens = ref 0 in
  let frontier = ref [| m0 |] in
  while (not !truncated) && Array.length !frontier > 0 do
    let level = !frontier in
    let len = Array.length level in
    let take = min len (limit - !visited) in
    if take < len then truncated := true;
    let results = Array.make take (false, 0, [], []) in
    let chunk = max 1 (take / (Exec.Pool.jobs pool * 8)) in
    Exec.Pool.parallel_for ~chunk pool ~n:take (fun i ->
        results.(i) <- expand c nt level.(i));
    let next = ref [] in
    for i = 0 to take - 1 do
      (* Budget checkpoints live in this sequential merge loop (caller
         domain), not in the worker expansion, so fuel budgets stay
         deterministic at every job count. *)
      Exec.Budget.check budget;
      let any, mt, fired_tis, succs = results.(i) in
      incr visited;
      Telemetry.Metrics.incr m_explored;
      order := level.(i) :: !order;
      if mt > !max_tokens then max_tokens := mt;
      List.iter (fun ti -> fired.(ti) <- true) fired_tis;
      List.iter
        (fun m' ->
          if not (H.mem seen m') then begin
            H.replace seen m' ();
            next := m' :: !next
          end)
        succs;
      if not any then deadlocks := level.(i) :: !deadlocks
    done;
    frontier := Array.of_list (List.rev !next)
  done;
  {
    r_order = List.rev !order;
    r_state_count = !visited;
    r_truncated = !truncated;
    r_deadlocks = List.rev !deadlocks;
    r_fired = fired;
    r_max_tokens = !max_tokens;
  }

let reachable ?(limit = 10_000) ?(metrics = Telemetry.Metrics.null)
    ?(budget = Exec.Budget.unlimited) ?pool c m0 =
  match pool with
  | Some p when Exec.Pool.jobs p > 1 ->
      reachable_par ~limit ~metrics ~budget p c m0
  | Some _ | None -> reachable_seq ~limit ~metrics ~budget c m0
