(** Behavioral analysis: reachability, boundedness, deadlocks, and
    occurrence sequences.

    All state-space queries run on the integer-indexed {!Compiled}
    engine; {!reachable_reference} keeps the original string-keyed BFS
    as the differential-testing oracle. *)

type reach_result = {
  markings : Marking.t list;  (** discovered markings, BFS order *)
  state_count : int;
  truncated : bool;  (** hit the exploration limit *)
  deadlocks : Marking.t list;  (** reachable markings without successors *)
}

type summary = {
  sum_reach : reach_result;
  sum_bound : int option;
      (** max tokens in any single place; [None] when truncated *)
  sum_deadlock_free : bool option;
      (** [None] when truncated without finding a deadlock *)
  sum_dead_transitions : string list;
      (** never enabled in the explored space, in net order;
          conservative when truncated *)
}

val explore :
  ?limit:int ->
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  ?pool:Exec.Pool.t ->
  ?compiled:Compiled.t ->
  Net.t ->
  Marking.t ->
  summary
(** One compiled breadth-first exploration (up to [limit] states,
    default 10_000) answering every per-net question at once: clients
    that need several of reachability, bounds, deadlock-freedom and
    dead transitions should call this once instead of one query
    function per answer.  [metrics] receives the
    [petri.markings_explored] counter.  [pool] shards BFS levels across
    domains with byte-identical results (see {!Compiled.reachable}).
    [budget] is checkpointed once per visited marking;
    {!Exec.Budget.Expired} propagates with no summary produced.
    [compiled] supplies a pre-interned form of [net] (it must be
    [Compiled.of_net net] for the same net), skipping the interning
    step — the warm path of the [socuml serve] artifact cache. *)

val reachable :
  ?limit:int ->
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  ?pool:Exec.Pool.t ->
  ?compiled:Compiled.t ->
  Net.t ->
  Marking.t ->
  reach_result
(** The {!explore} reachability component. *)

val reachable_reference :
  ?limit:int -> ?metrics:Telemetry.Metrics.t -> Net.t -> Marking.t ->
  reach_result
(** The original map/set-based BFS over string-keyed markings, kept as
    the reference semantics for differential tests and benchmarks.
    Agrees with {!reachable} exactly (same markings, same BFS order,
    same deadlocks and truncation verdict). *)

val is_deadlock_free : ?limit:int -> Net.t -> Marking.t -> bool option
(** [Some b] when the state space was fully explored, [None] when
    truncated. *)

val bound : ?limit:int -> Net.t -> Marking.t -> int option
(** Maximum tokens observed in any single place over the explored state
    space; [None] when exploration was truncated (the net may be
    unbounded). *)

val is_k_bounded : ?limit:int -> int -> Net.t -> Marking.t -> bool option

val random_occurrence_sequence :
  seed:int -> max_steps:int -> Net.t -> Marking.t -> string list
(** A deterministic pseudo-random firing sequence (for differential
    testing against the activity engine): repeatedly fires the
    [seed]-selected enabled transition until none is enabled or
    [max_steps] were taken. *)

val dead_transitions :
  ?limit:int ->
  ?budget:Exec.Budget.t ->
  ?pool:Exec.Pool.t ->
  ?compiled:Compiled.t ->
  Net.t ->
  Marking.t ->
  string list
(** Transitions never enabled in the explored state space (L0-live
    check); conservative when truncated. *)
