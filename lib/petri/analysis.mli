(** Behavioral analysis: reachability, boundedness, deadlocks, and
    occurrence sequences. *)

type reach_result = {
  markings : Marking.t list;  (** discovered markings, BFS order *)
  state_count : int;
  truncated : bool;  (** hit the exploration limit *)
  deadlocks : Marking.t list;  (** reachable markings without successors *)
}

val reachable :
  ?limit:int -> ?metrics:Telemetry.Metrics.t -> Net.t -> Marking.t ->
  reach_result
(** Breadth-first state-space exploration, up to [limit] states
    (default 10_000).  [metrics] (default {!Telemetry.Metrics.null})
    receives the [petri.markings_explored] counter. *)

val is_deadlock_free : ?limit:int -> Net.t -> Marking.t -> bool option
(** [Some b] when the state space was fully explored, [None] when
    truncated. *)

val bound : ?limit:int -> Net.t -> Marking.t -> int option
(** Maximum tokens observed in any single place over the explored state
    space; [None] when exploration was truncated (the net may be
    unbounded). *)

val is_k_bounded : ?limit:int -> int -> Net.t -> Marking.t -> bool option

val random_occurrence_sequence :
  seed:int -> max_steps:int -> Net.t -> Marking.t -> string list
(** A deterministic pseudo-random firing sequence (for differential
    testing against the activity engine): repeatedly fires the
    [seed]-selected enabled transition until none is enabled or
    [max_steps] were taken. *)

val dead_transitions : ?limit:int -> Net.t -> Marking.t -> string list
(** Transitions never enabled in the explored state space (L0-live
    check); conservative when truncated. *)
