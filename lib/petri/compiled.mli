(** Integer-indexed compiled form of a net, for state-space work.

    {!Net.t} keeps places, transitions and arcs as association lists of
    strings — the right *reference* surface (small, obviously correct,
    directly serializable), but every [pre]/[post] lookup is an
    O(|arcs|) scan and every marking operation walks a string-keyed
    balanced tree.  This module interns places and transitions to dense
    integer ids once, stores pre/post sets as int arrays, and represents
    markings as immutable int arrays with a precomputed hash, so
    reachability exploration runs on array reads and a hash table.

    Semantics are locked to the reference engine by the differential
    qcheck properties in [test/test_compiled.ml]: enabling, firing,
    reachable sets, deadlocks, bounds and dead transitions agree
    exactly. *)

type t
(** A compiled net.  Construction is O(|places| + |transitions| +
    |arcs|); the original {!Net.t} remains the source of truth for
    identifiers. *)

type marking
(** An immutable token-count vector over the net's interned places,
    hashed at construction.  Token counts of places unknown to the
    compiled net cannot be represented; see {!split}. *)

val of_net : Net.t -> t

val net : t -> Net.t
(** The net this was compiled from. *)

val place_count : t -> int
val transition_count : t -> int

val transition_id : t -> int -> string
(** Dense index (in [Net.t.transitions] order) back to the string id. *)

val transition_index : t -> string -> int option
(** String id to dense index; [None] for unknown transitions. *)

val place_id : t -> int -> string
(** Dense index (in [Net.t.places] order) back to the string id. *)

val pre_arcs : t -> int -> (int * int) array
(** Input [(place, weight)] pairs of a transition (by dense index), in
    the net's arc order.  Callers must not mutate the array. *)

val post_arcs : t -> int -> (int * int) array
(** Output pairs; same conventions as {!pre_arcs}. *)

val split : t -> Marking.t -> marking * (string * int) list
(** Intern a reference marking.  The second component is the *residue*:
    entries for places the net does not know.  Arcs never touch such
    places, so the residue is invariant under firing; add it back with
    {!export} to reproduce reference markings exactly. *)

val export : t -> (string * int) list -> marking -> Marking.t
(** [export c residue m] = the reference marking with the residue
    entries restored. *)

val tokens : marking -> int -> int
(** Token count at a dense place index. *)

val marking_equal : marking -> marking -> bool
val marking_hash : marking -> int

val enabled : t -> marking -> int -> bool
(** Is the transition (by dense index) enabled? *)

val fire : t -> marking -> int -> marking option
(** Successor marking, [None] if not enabled. *)

val fire_by_id : t -> marking -> string -> marking option
(** {!fire} keyed by the string id; [None] also for unknown ids
    (mirrors {!Marking.fire}). *)

type reach = {
  r_order : marking list;  (** visited markings, BFS order *)
  r_state_count : int;
  r_truncated : bool;  (** stopped at the limit with work remaining *)
  r_deadlocks : marking list;  (** visit order *)
  r_fired : bool array;
      (** per dense transition index: enabled at some visited marking *)
  r_max_tokens : int;
      (** max token count in any single place over visited markings *)
}

val reachable :
  ?limit:int ->
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  ?pool:Exec.Pool.t ->
  t ->
  marking ->
  reach
(** Breadth-first exploration up to [limit] visited markings (default
    10_000), with the visited set marked at *enqueue* time so the
    frontier never holds duplicates.  One pass accumulates everything
    downstream analyses need: deadlocks, the fired-transition bitset and
    the per-place token bound.  [metrics] receives the
    [petri.markings_explored] counter.

    With [pool] (and more than one job) each BFS level is expanded
    across the pool's domains and merged back into the visited set
    sequentially, in frontier order — the result is equal to the
    single-domain exploration field for field, including BFS order and
    the truncation verdict (enforced by [test/test_parallel.ml]).

    [budget] (default {!Exec.Budget.unlimited}) is checkpointed once
    per visited marking — in the sequential merge loop under [pool],
    so fuel budgets expire at the same marking at every job count —
    and {!Exec.Budget.Expired} propagates to the caller with the
    exploration abandoned cleanly. *)
