(** Fault-injection campaigns and resilience verification.

    A campaign executes a golden (fault-free) run per engine family,
    then one injected variant per planned fault, and classifies each
    variant against the golden artifacts using the same differential
    machinery the test suite trusts: byte-compared {!Dsim.Fast}
    snapshots and VCD dumps for RTL, configuration signatures for
    statecharts, markings and firing labels for the token engines, and
    P-invariants of the translated Petri net as the runtime monitor.

    {2 Outcome taxonomy}

    - {e masked} — the injected run converged to the golden final
      state: the fault was absorbed by the design.
    - {e detected} — an explicit mechanism surfaced the fault: a
      non-settling diagnostic from the RTL engine, a statechart
      [Model_error] or status divergence, a token-engine deadlock where
      the golden run completed, or a violated P-invariant.
    - {e silent} — the run completed unremarkably with corrupted final
      state: silent data corruption, the outcome campaigns exist to
      count.
    - {e truncated} — a resource guard (dispatch or step budget)
      expired before the run finished; no verdict on the state.

    {2 Determinism}

    Every run is driven by seeded {!Workload.Prng} choices and logical
    clocks: the same plan over the same specs yields a byte-identical
    {!to_text} / {!to_json} report, across processes and machines
    (enforced by [test/test_fault.ml] and the [@inject-demo] golden
    gate).  A campaign over {!Plan.empty} reproduces the golden
    artifacts byte-for-byte in every engine family (the qcheck identity
    property). *)

type outcome =
  | Masked
  | Detected of string  (** what surfaced, e.g. ["p-invariant violated"] *)
  | Silent
  | Truncated of string  (** which budget expired *)
[@@deriving eq, show]

(** {1 RTL campaigns — compiled discrete-event engine} *)

type rtl_spec = {
  rs_module : Hdl.Module_.t;  (** flat module, compiled via {!Dsim.Netlist} *)
  rs_clock : string;
  rs_reset : string option;  (** pulsed for one edge before cycle 0 *)
  rs_stimulus : (int * (string * int) list) list;
      (** inputs applied just before the edge of the given cycle *)
  rs_cycles : int;
  rs_settle_budget : int;  (** worklist rounds per settle (see {!Dsim.Fast}) *)
}

type rtl_run = {
  rr_snapshots : (string * int) list list;
      (** full snapshot after each clocked edge, cycle order *)
  rr_vcd : string;  (** rendered waveform over the run *)
  rr_error : string option;
      (** simulation diagnostic that stopped the run, if any *)
}

val rtl_run :
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  rtl_spec ->
  Plan.rtl_fault list ->
  rtl_run
(** Execute the stimulus with the given faults injected ([[]] = golden
    run).  Bit flips are forced once after the target edge; stuck-at
    faults are re-forced after every edge from their start cycle.
    [budget] (default {!Exec.Budget.unlimited}) is checkpointed once
    per cycle (and per settle pass inside the simulator);
    {!Exec.Budget.Expired} propagates — it is never folded into
    [rr_error]. *)

val classify_rtl : golden:rtl_run -> rtl_run -> outcome

(** {1 Statechart campaigns — event-stream perturbation} *)

type sc_spec = {
  ss_machine : Uml.Smachine.t;
  ss_events : string list;  (** golden stimulus, dispatch order *)
  ss_budget : int;  (** run-to-completion dispatch budget per event *)
}

type sc_run = {
  sc_signatures : string list;
      (** {!Statechart.Engine.signature} after each delivered event *)
  sc_status : string;  (** final engine status, rendered *)
  sc_error : string option;  (** [Model_error] diagnostic, if raised *)
  sc_truncated : bool;  (** a dispatch exhausted [ss_budget] *)
}

val perturb_events : Plan.statechart_fault list -> string list -> string list
(** Apply drop/duplicate/spurious faults to a stimulus.  Indices refer
    to the original list; out-of-range indices leave it unchanged. *)

val sc_run :
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  sc_spec ->
  Plan.statechart_fault list ->
  sc_run
(** [budget] is checkpointed once per delivered event. *)

val classify_sc : golden:sc_run -> sc_run -> outcome

(** {1 Token campaigns — activity engine} *)

type act_spec = {
  ac_activity : Uml.Activityg.t;
  ac_choice_seed : int;  (** seed for the enabled-firing choice *)
  ac_max_steps : int;
}

type act_run = {
  ar_labels : string list;  (** firing labels, order taken *)
  ar_tokens : (string * int) list;  (** final marking, sorted *)
  ar_stop : string;  (** ["completed"], ["stuck"] or ["exhausted"] *)
}

val act_run :
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  act_spec ->
  Plan.token_fault list ->
  act_run
(** Steps the activity engine one seeded choice at a time, applying
    each token fault to the marking just before its target step.
    [budget] is checkpointed once per step. *)

val classify_act : golden:act_run -> act_run -> outcome

(** {1 Token campaigns — Petri net} *)

type net_spec = {
  np_net : Petri.Net.t;
  np_marking : Petri.Marking.t;  (** initial marking *)
  np_choice_seed : int;
  np_max_steps : int;
}

type net_run = {
  nr_fired : string list;  (** transition ids, firing order *)
  nr_markings : (string * int) list list;  (** marking after each step *)
  nr_final : (string * int) list;
  nr_deadlocked : bool;  (** ended with no transition enabled *)
  nr_truncated : bool;
}

val net_run :
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  net_spec ->
  Plan.token_fault list ->
  net_run
(** [budget] is checkpointed once per step. *)

val classify_net : net_spec -> golden:net_run -> net_run -> outcome
(** Needs the spec: detection includes evaluating the net's
    P-invariants (computed once per call) against both final
    markings. *)

(** {1 Campaign orchestration} *)

type run = {
  run_index : int;  (** position in the plan, 0-based *)
  run_domain : string;  (** ["rtl"], ["statechart"], ["activity"], ["petri"] *)
  run_fault : Plan.fault;
  run_outcome : outcome;
}

type report = {
  rp_label : string;  (** model name or campaign label *)
  rp_plan : Plan.t;
  rp_runs : run list;  (** plan order; token faults yield one run per
                           available token backend *)
  rp_skipped : (Plan.fault * string) list;
      (** faults with no executable domain in this campaign *)
}

type totals = {
  t_injected : int;
  t_masked : int;
  t_detected : int;
  t_silent : int;
  t_truncated : int;
}

val run :
  ?metrics:Telemetry.Metrics.t ->
  ?budget:Exec.Budget.t ->
  ?pool:Exec.Pool.t ->
  ?rtl:rtl_spec ->
  ?statechart:sc_spec ->
  ?activity:act_spec ->
  ?net:net_spec ->
  label:string ->
  Plan.t ->
  report
(** Execute the campaign: one golden run per supplied spec, then the
    plan's faults in order against their domain (token faults against
    both token backends when both are supplied).  [metrics] receives
    the [fault.injected] / [fault.masked] / [fault.detected] /
    [fault.silent] / [fault.truncated] counters, one ["fault/run"] span
    per injected run, and one structured ["fault/injected"] event per
    run when live.

    With [pool] (and [Exec.Pool.jobs pool > 1]) the injected variants
    are sharded across the pool's domains — golden runs and artifacts
    are shared read-only, each variant records into a
    {!Telemetry.Metrics.fork}, and results merge back in plan order.
    The report and the metrics report are byte-identical at every job
    count (enforced by [test/test_parallel.ml] and the jobs-4 leg of
    the [@inject-demo] golden gate).

    [budget] (default {!Exec.Budget.unlimited}) is checkpointed before
    each fault and at each cycle/event/step inside the per-domain
    runs; {!Exec.Budget.Expired} propagates to the caller (via the
    pool's lowest-index exception rule when sharded) with no report
    produced — the campaign is all-or-nothing under cancellation. *)

val totals : report -> totals

val coverage : totals -> float
(** Detected fraction of the non-masked outcomes,
    [detected / (injected - masked)]; [1.0] when every injected fault
    was masked (nothing needed detecting). *)

val to_text : report -> string
(** Deterministic human-readable report: plan, per-run outcomes,
    summary counts and coverage. *)

val to_json : report -> string
(** The same content as a stable JSON object. *)
