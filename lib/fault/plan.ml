type rtl_fault =
  | Bit_flip of { fb_signal : string; fb_cycle : int; fb_bit : int }
  | Stuck_at of { sa_signal : string; sa_value : int; sa_from : int }
[@@deriving eq, show]

type statechart_fault =
  | Drop_event of { de_index : int }
  | Dup_event of { du_index : int }
  | Spurious_event of { sp_index : int; sp_event : string }
[@@deriving eq, show]

type token_fault =
  | Lose_token of { lt_place : string; lt_step : int }
  | Dup_token of { dt_place : string; dt_step : int }
[@@deriving eq, show]

type fault =
  | F_rtl of rtl_fault
  | F_statechart of statechart_fault
  | F_token of token_fault
[@@deriving eq, show]

type t = {
  seed : int;
  faults : fault list;
}
[@@deriving eq, show]

let empty seed = { seed; faults = [] }

(* --- serialization --------------------------------------------------- *)

let fault_to_string = function
  | F_rtl (Bit_flip f) ->
    Printf.sprintf "rtl bit-flip signal=%s cycle=%d bit=%d" f.fb_signal
      f.fb_cycle f.fb_bit
  | F_rtl (Stuck_at f) ->
    Printf.sprintf "rtl stuck-at signal=%s value=%d from=%d" f.sa_signal
      f.sa_value f.sa_from
  | F_statechart (Drop_event f) -> Printf.sprintf "sc drop index=%d" f.de_index
  | F_statechart (Dup_event f) -> Printf.sprintf "sc dup index=%d" f.du_index
  | F_statechart (Spurious_event f) ->
    Printf.sprintf "sc spurious index=%d event=%s" f.sp_index f.sp_event
  | F_token (Lose_token f) ->
    Printf.sprintf "tok lose place=%s step=%d" f.lt_place f.lt_step
  | F_token (Dup_token f) ->
    Printf.sprintf "tok dup place=%s step=%d" f.dt_place f.dt_step

(* key=value fields after the two leading words; names are identifiers
   (no spaces), so splitting on single spaces is lossless *)
let parse_fields words =
  List.fold_left
    (fun acc w ->
      match acc with
      | Error _ as e -> e
      | Ok fields -> (
        match String.index_opt w '=' with
        | None -> Error (Printf.sprintf "malformed field %S" w)
        | Some i ->
          Ok
            ((String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
            :: fields)))
    (Ok []) words

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" k)

let int_field fields k =
  match field fields k with
  | Error _ as e -> e
  | Ok v -> (
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %s is not an integer: %S" k v))

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let fault_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | domain :: kind :: rest -> (
    let* fields = parse_fields rest in
    match (domain, kind) with
    | "rtl", "bit-flip" ->
      let* fb_signal = field fields "signal" in
      let* fb_cycle = int_field fields "cycle" in
      let* fb_bit = int_field fields "bit" in
      Ok (F_rtl (Bit_flip { fb_signal; fb_cycle; fb_bit }))
    | "rtl", "stuck-at" ->
      let* sa_signal = field fields "signal" in
      let* sa_value = int_field fields "value" in
      let* sa_from = int_field fields "from" in
      if sa_value <> 0 && sa_value <> 1 then
        Error (Printf.sprintf "stuck-at value must be 0 or 1, got %d" sa_value)
      else Ok (F_rtl (Stuck_at { sa_signal; sa_value; sa_from }))
    | "sc", "drop" ->
      let* de_index = int_field fields "index" in
      Ok (F_statechart (Drop_event { de_index }))
    | "sc", "dup" ->
      let* du_index = int_field fields "index" in
      Ok (F_statechart (Dup_event { du_index }))
    | "sc", "spurious" ->
      let* sp_index = int_field fields "index" in
      let* sp_event = field fields "event" in
      Ok (F_statechart (Spurious_event { sp_index; sp_event }))
    | "tok", "lose" ->
      let* lt_place = field fields "place" in
      let* lt_step = int_field fields "step" in
      Ok (F_token (Lose_token { lt_place; lt_step }))
    | "tok", "dup" ->
      let* dt_place = field fields "place" in
      let* dt_step = int_field fields "step" in
      Ok (F_token (Dup_token { dt_place; dt_step }))
    | _other ->
      Error (Printf.sprintf "unknown fault kind %S %S" domain kind))
  | _short -> Error (Printf.sprintf "malformed fault line %S" line)

let to_string t =
  String.concat "\n"
    (Printf.sprintf "fault-plan seed=%d" t.seed
     :: List.map fault_to_string t.faults)
  ^ "\n"

let of_string s =
  let lines =
    List.filter
      (fun l -> l <> "" && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' s))
  in
  match lines with
  | [] -> Error "empty fault plan"
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "fault-plan"; seed_field ] -> (
      let* fields = parse_fields [ seed_field ] in
      let* seed = int_field fields "seed" in
      let rec faults acc = function
        | [] -> Ok { seed; faults = List.rev acc }
        | line :: rest ->
          let* f = fault_of_string line in
          faults (f :: acc) rest
      in
      faults [] rest)
    | _other -> Error (Printf.sprintf "malformed plan header %S" header))

(* --- seeded generation ----------------------------------------------- *)

type surface = {
  su_signals : (string * int) list;
  su_cycles : int;
  su_events : string list;
  su_length : int;
  su_places : string list;
  su_steps : int;
}

let rtl_enabled s = s.su_signals <> [] && s.su_cycles > 0
let sc_enabled s = s.su_events <> [] && s.su_length > 0
let token_enabled s = s.su_places <> [] && s.su_steps > 0

let surface_domains s =
  (if rtl_enabled s then [ "rtl" ] else [])
  @ (if sc_enabled s then [ "statechart" ] else [])
  @ if token_enabled s then [ "token" ] else []

let gen_rtl rng s =
  let signal, width = Workload.Prng.pick rng s.su_signals in
  let cycle = Workload.Prng.int rng s.su_cycles in
  if Workload.Prng.bool rng then
    F_rtl (Bit_flip { fb_signal = signal; fb_cycle = cycle; fb_bit = Workload.Prng.int rng (max 1 width) })
  else
    F_rtl
      (Stuck_at
         {
           sa_signal = signal;
           sa_value = (if Workload.Prng.bool rng then 1 else 0);
           sa_from = cycle;
         })

let gen_statechart rng s =
  let index = Workload.Prng.int rng s.su_length in
  match Workload.Prng.int rng 3 with
  | 0 -> F_statechart (Drop_event { de_index = index })
  | 1 -> F_statechart (Dup_event { du_index = index })
  | _spurious ->
    F_statechart
      (Spurious_event
         { sp_index = index; sp_event = Workload.Prng.pick rng s.su_events })

let gen_token rng s =
  let place = Workload.Prng.pick rng s.su_places in
  let step = Workload.Prng.int rng s.su_steps in
  if Workload.Prng.bool rng then
    F_token (Lose_token { lt_place = place; lt_step = step })
  else F_token (Dup_token { dt_place = place; dt_step = step })

let generate ~seed ~count s =
  let gens =
    (if rtl_enabled s then [ gen_rtl ] else [])
    @ (if sc_enabled s then [ gen_statechart ] else [])
    @ if token_enabled s then [ gen_token ] else []
  in
  match gens with
  | [] -> empty seed
  | gens ->
    let rng = Workload.Prng.create seed in
    let n_gens = List.length gens in
    let faults =
      List.init (max 0 count) (fun i -> (List.nth gens (i mod n_gens)) rng s)
    in
    { seed; faults }
