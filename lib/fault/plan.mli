(** Deterministic fault plans: what to perturb, where, and when.

    A plan is the replayable unit of a fault-injection campaign: a seed
    plus a list of faults, one per injected run.  Faults are grouped by
    execution domain — RTL signals on the compiled discrete-event
    engine, event streams feeding the statechart engine, and token
    markings of the Petri/activity engines — mirroring the three engine
    families the campaign runner ({!Campaign}) drives.

    Plans serialize to a line-oriented text form ({!to_string} /
    {!of_string}) that round-trips exactly, so a campaign report can
    embed the plan that produced it and any single run can be replayed
    in isolation.  Generation ({!generate}) draws from
    {!Workload.Prng}: the same seed over the same fault surface always
    yields the same plan, across runs and machines. *)

type rtl_fault =
  | Bit_flip of {
      fb_signal : string;
      fb_cycle : int;  (** 0-based clocked cycle, after the edge *)
      fb_bit : int;  (** bit position, [0, width) *)
    }  (** transient single-event upset: XOR one bit once *)
  | Stuck_at of {
      sa_signal : string;
      sa_value : int;  (** 0 = stuck-at-0, 1 = stuck-at-1 (all bits) *)
      sa_from : int;  (** first affected cycle *)
    }  (** permanent fault: the signal is re-forced after every edge *)
[@@deriving eq, show]

type statechart_fault =
  | Drop_event of { de_index : int }
      (** the [index]-th event of the stimulus is lost in transit *)
  | Dup_event of { du_index : int }
      (** the [index]-th event is delivered twice *)
  | Spurious_event of {
      sp_index : int;  (** insertion position in the stimulus *)
      sp_event : string;
    }  (** an event that was never sent is delivered *)
[@@deriving eq, show]

type token_fault =
  | Lose_token of {
      lt_place : string;
      lt_step : int;  (** 0-based firing step before which to inject *)
    }  (** one token vanishes from a place (no-op on an empty place) *)
  | Dup_token of {
      dt_place : string;
      dt_step : int;
    }  (** one token is duplicated onto a place *)
[@@deriving eq, show]

type fault =
  | F_rtl of rtl_fault
  | F_statechart of statechart_fault
  | F_token of token_fault
[@@deriving eq, show]

type t = {
  seed : int;  (** the seed {!generate} drew from, kept for the report *)
  faults : fault list;
}
[@@deriving eq, show]

val empty : int -> t
(** [empty seed] — the identity plan: no faults.  Campaigns over an
    empty plan must reproduce the golden run byte-for-byte (enforced by
    the qcheck identity property in [test/test_fault.ml]). *)

val fault_to_string : fault -> string
(** One line, e.g. ["rtl bit-flip signal=state cycle=3 bit=1"]. *)

val fault_of_string : string -> (fault, string) result

val to_string : t -> string
(** Header line [fault-plan seed=N] followed by one fault per line. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; blank lines and [#] comments ignored. *)

(** The perturbable surface of a model under test, from which
    {!generate} draws fault sites.  Empty components disable the
    corresponding domain. *)
type surface = {
  su_signals : (string * int) list;
      (** RTL fault targets with bit widths (clock/reset excluded by
          the caller) *)
  su_cycles : int;  (** clocked cycles the RTL stimulus runs for *)
  su_events : string list;  (** statechart event alphabet *)
  su_length : int;  (** statechart stimulus length *)
  su_places : string list;  (** Petri places of the token engines *)
  su_steps : int;  (** token-engine firing steps to perturb within *)
}

val surface_domains : surface -> string list
(** Names of the domains the surface enables, in deterministic
    ["rtl"; "statechart"; "token"] order. *)

val generate : seed:int -> count:int -> surface -> t
(** [count] faults drawn round-robin across the enabled domains with a
    {!Workload.Prng} seeded by [seed].  Deterministic: same seed and
    surface, same plan.  An all-empty surface yields {!empty}. *)
