type outcome =
  | Masked
  | Detected of string
  | Silent
  | Truncated of string
[@@deriving eq, show]

(* --- RTL -------------------------------------------------------------- *)

type rtl_spec = {
  rs_module : Hdl.Module_.t;
  rs_clock : string;
  rs_reset : string option;
  rs_stimulus : (int * (string * int) list) list;
  rs_cycles : int;
  rs_settle_budget : int;
}

type rtl_run = {
  rr_snapshots : (string * int) list list;
  rr_vcd : string;
  rr_error : string option;
}

(* Force-based injection: a bit flip XORs the current value once after
   the target edge; a stuck-at fault re-forces its value after every
   edge from its start cycle, so downstream logic always reads the
   faulty level at the observation points. *)
let inject_rtl sim cycle faults =
  List.iter
    (fun f ->
      match f with
      | Plan.Bit_flip { fb_signal; fb_cycle; fb_bit } ->
        if fb_cycle = cycle then
          Dsim.Fast.force sim fb_signal
            (Dsim.Fast.get sim fb_signal lxor (1 lsl fb_bit))
      | Plan.Stuck_at { sa_signal; sa_value; sa_from } ->
        if sa_from <= cycle then
          Dsim.Fast.force sim sa_signal (if sa_value = 0 then 0 else -1))
    faults

let rtl_run ?(metrics = Telemetry.Metrics.null)
    ?(budget = Exec.Budget.unlimited) spec faults =
  match
    Dsim.Fast.create ~metrics ~settle_budget:spec.rs_settle_budget ~budget
      spec.rs_module
  with
  | exception Dsim.Sim.Simulation_error msg ->
    { rr_snapshots = []; rr_vcd = ""; rr_error = Some msg }
  | sim ->
    let vcd = Dsim.Vcd.create_fast sim in
    let snapshots = ref [] in
    let error = ref None in
    (try
       (match spec.rs_reset with
        | Some r ->
          Dsim.Fast.set_input sim r 1;
          Dsim.Fast.clock_edge sim spec.rs_clock;
          Dsim.Fast.set_input sim r 0
        | None -> ());
       let c = ref 0 in
       while !c < spec.rs_cycles && !error = None do
         Exec.Budget.check budget;
         let cycle = !c in
         (match List.assoc_opt cycle spec.rs_stimulus with
          | Some inputs ->
            List.iter (fun (n, v) -> Dsim.Fast.set_input sim n v) inputs
          | None -> ());
         Dsim.Fast.clock_edge sim spec.rs_clock;
         inject_rtl sim cycle faults;
         snapshots := Dsim.Fast.snapshot sim :: !snapshots;
         Dsim.Vcd.sample vcd ~time:cycle;
         incr c
       done
     with Dsim.Sim.Simulation_error msg -> error := Some msg);
    {
      rr_snapshots = List.rev !snapshots;
      rr_vcd = Dsim.Vcd.render vcd;
      rr_error = !error;
    }

let final_snapshot r =
  match List.rev r.rr_snapshots with
  | last :: _earlier -> last
  | [] -> []

let classify_rtl ~golden injected =
  match injected.rr_error with
  | Some msg -> Detected msg
  | None ->
    if final_snapshot golden = final_snapshot injected then Masked else Silent

(* --- statechart ------------------------------------------------------- *)

type sc_spec = {
  ss_machine : Uml.Smachine.t;
  ss_events : string list;
  ss_budget : int;
}

type sc_run = {
  sc_signatures : string list;
  sc_status : string;
  sc_error : string option;
  sc_truncated : bool;
}

(* Faults index the original stimulus: position i may be dropped,
   delivered twice, or preceded by a spurious event; spurious indices
   past the end append.  Out-of-range drop/dup indices are no-ops. *)
let perturb_events faults events =
  let n = List.length events in
  let drops, dups, spurious =
    List.fold_left
      (fun (dr, du, sp) f ->
        match f with
        | Plan.Drop_event { de_index } -> (de_index :: dr, du, sp)
        | Plan.Dup_event { du_index } -> (dr, du_index :: du, sp)
        | Plan.Spurious_event { sp_index; sp_event } ->
          (dr, du, (sp_index, sp_event) :: sp))
      ([], [], []) faults
  in
  let spurious_at i =
    List.filter_map
      (fun (idx, ev) -> if idx = i then Some ev else None)
      (List.rev spurious)
  in
  List.concat
    (List.mapi
       (fun i e ->
         let self =
           if List.mem i drops then []
           else if List.mem i dups then [ e; e ]
           else [ e ]
         in
         spurious_at i @ self)
       events)
  @ List.filter_map
      (fun (idx, ev) -> if idx >= n then Some ev else None)
      (List.rev spurious)

let status_string engine =
  match Statechart.Engine.status engine with
  | Statechart.Engine.Running -> "running"
  | Statechart.Engine.Finished -> "finished"
  | Statechart.Engine.Terminated -> "terminated"

let sc_run ?(metrics = Telemetry.Metrics.null)
    ?(budget = Exec.Budget.unlimited) spec faults =
  let events = perturb_events faults spec.ss_events in
  let engine = Statechart.Engine.create ~metrics spec.ss_machine in
  let signatures = ref [] in
  let truncated = ref false in
  let error = ref None in
  (try
     Statechart.Engine.start engine;
     let rec deliver = function
       | [] -> ()
       | ev :: rest ->
         Exec.Budget.check budget;
         Statechart.Engine.send engine (Statechart.Event.make ev);
         (match Statechart.Engine.run_bounded engine ~budget:spec.ss_budget with
          | `Quiescent _n -> ()
          | `Exhausted -> truncated := true);
         signatures := Statechart.Engine.signature engine :: !signatures;
         if not !truncated then deliver rest
     in
     deliver events
   with Statechart.Engine.Model_error msg -> error := Some msg);
  {
    sc_signatures = List.rev !signatures;
    sc_status = status_string engine;
    sc_error = !error;
    sc_truncated = !truncated;
  }

let final_signature r =
  match List.rev r.sc_signatures with
  | last :: _earlier -> last
  | [] -> ""

let classify_sc ~golden injected =
  match injected.sc_error with
  | Some msg -> Detected (Printf.sprintf "model error: %s" msg)
  | None ->
    if injected.sc_truncated then Truncated "dispatch budget exhausted"
    else if golden.sc_status <> injected.sc_status then
      Detected
        (Printf.sprintf "status diverged: golden %s, injected %s"
           golden.sc_status injected.sc_status)
    else if final_signature golden = final_signature injected then Masked
    else Silent

(* --- token: activity engine ------------------------------------------- *)

type act_spec = {
  ac_activity : Uml.Activityg.t;
  ac_choice_seed : int;
  ac_max_steps : int;
}

type act_run = {
  ar_labels : string list;
  ar_tokens : (string * int) list;
  ar_stop : string;
}

let inject_tokens adjust step faults =
  List.iter
    (fun f ->
      match f with
      | Plan.Lose_token { lt_place; lt_step } ->
        if lt_step = step then adjust lt_place (-1)
      | Plan.Dup_token { dt_place; dt_step } ->
        if dt_step = step then adjust dt_place 1)
    faults

let act_run ?(metrics = Telemetry.Metrics.null)
    ?(budget = Exec.Budget.unlimited) spec faults =
  let exec = Activity.Exec.create ~metrics spec.ac_activity in
  let rng = Workload.Prng.create spec.ac_choice_seed in
  let rec loop step acc =
    Exec.Budget.check budget;
    inject_tokens (Activity.Exec.adjust_tokens exec) step faults;
    if step >= spec.ac_max_steps then (List.rev acc, "exhausted")
    else
      match Activity.Exec.enabled_firings exec with
      | [] ->
        ( List.rev acc,
          if Activity.Exec.finished exec then "completed" else "stuck" )
      | labels -> (
        let label = Workload.Prng.pick rng labels in
        match Activity.Exec.fire exec label with
        | Ok () -> loop (step + 1) (label :: acc)
        | Error msg ->
          (* unreachable: the label was just enabled; surface it rather
             than loop *)
          (List.rev acc, Printf.sprintf "internal: %s" msg))
  in
  let labels, stop = loop 0 [] in
  { ar_labels = labels; ar_tokens = Activity.Exec.tokens exec; ar_stop = stop }

let classify_act ~golden injected =
  if injected.ar_stop = "exhausted" then Truncated "step budget exhausted"
  else if golden.ar_stop = "completed" && injected.ar_stop = "stuck" then
    Detected "deadlock surfaced"
  else if
    golden.ar_tokens = injected.ar_tokens && golden.ar_stop = injected.ar_stop
  then Masked
  else Silent

(* --- token: Petri net ------------------------------------------------- *)

type net_spec = {
  np_net : Petri.Net.t;
  np_marking : Petri.Marking.t;
  np_choice_seed : int;
  np_max_steps : int;
}

type net_run = {
  nr_fired : string list;
  nr_markings : (string * int) list list;
  nr_final : (string * int) list;
  nr_deadlocked : bool;
  nr_truncated : bool;
}

let net_run ?(metrics = Telemetry.Metrics.null)
    ?(budget = Exec.Budget.unlimited) spec faults =
  let fired_counter = Telemetry.Metrics.counter metrics "petri.fired" in
  let rng = Workload.Prng.create spec.np_choice_seed in
  let marking = ref spec.np_marking in
  let inject step =
    inject_tokens
      (fun place delta ->
        if delta > 0 || Petri.Marking.tokens !marking place > 0 then
          marking := Petri.Marking.add !marking place delta)
      step faults
  in
  let rec loop step fired markings =
    Exec.Budget.check budget;
    inject step;
    if step >= spec.np_max_steps then (List.rev fired, List.rev markings, false, true)
    else
      match Petri.Marking.enabled_transitions spec.np_net !marking with
      | [] -> (List.rev fired, List.rev markings, true, false)
      | enabled -> (
        let tn = Workload.Prng.pick rng enabled in
        match Petri.Marking.fire spec.np_net !marking tn.Petri.Net.tn_id with
        | None -> (List.rev fired, List.rev markings, true, false)
        | Some m' ->
          Telemetry.Metrics.incr fired_counter;
          marking := m';
          loop (step + 1)
            (tn.Petri.Net.tn_id :: fired)
            (Petri.Marking.to_list m' :: markings))
  in
  let fired, markings, deadlocked, truncated = loop 0 [] [] in
  {
    nr_fired = fired;
    nr_markings = markings;
    nr_final = Petri.Marking.to_list !marking;
    nr_deadlocked = deadlocked;
    nr_truncated = truncated;
  }

let classify_net spec ~golden injected =
  if injected.nr_truncated then Truncated "step budget exhausted"
  else if golden.nr_final = injected.nr_final then Masked
  else begin
    let invariants = Petri.Invariant.p_invariants spec.np_net in
    let g = Petri.Marking.of_list golden.nr_final in
    let i = Petri.Marking.of_list injected.nr_final in
    if
      List.exists
        (fun inv ->
          Petri.Invariant.invariant_value inv g
          <> Petri.Invariant.invariant_value inv i)
        invariants
    then Detected "p-invariant violated"
    else if injected.nr_deadlocked && not golden.nr_deadlocked then
      Detected "deadlock surfaced"
    else Silent
  end

(* --- orchestration ---------------------------------------------------- *)

type run = {
  run_index : int;
  run_domain : string;
  run_fault : Plan.fault;
  run_outcome : outcome;
}

type report = {
  rp_label : string;
  rp_plan : Plan.t;
  rp_runs : run list;
  rp_skipped : (Plan.fault * string) list;
}

type totals = {
  t_injected : int;
  t_masked : int;
  t_detected : int;
  t_silent : int;
  t_truncated : int;
}

let outcome_counter_suffix = function
  | Masked -> "masked"
  | Detected _ -> "detected"
  | Silent -> "silent"
  | Truncated _ -> "truncated"

(* One planned fault's worth of work: the runs it produced (domain and
   outcome, execution order) or the reason it was skipped.  Everything a
   task touches — engines, PRNGs, the metrics registry it is handed — is
   task-local, so faults can execute on any domain in any order. *)
type fault_result =
  | FR_runs of (string * outcome) list
  | FR_skipped of string

let exec_fault ~metrics ~budget ~golden_rtl ~golden_sc ~golden_act ~golden_net
    fault =
  Exec.Budget.check budget;
  let m_injected = Telemetry.Metrics.counter metrics "fault.injected" in
  let note domain outcome acc =
    Telemetry.Metrics.incr m_injected;
    Telemetry.Metrics.incr
      (Telemetry.Metrics.counter metrics
         ("fault." ^ outcome_counter_suffix outcome));
    if Telemetry.Metrics.live metrics then
      Telemetry.Metrics.event metrics ~scope:"fault" "injected"
        [
          ("domain", Telemetry.Metrics.F_str domain);
          ("fault", Telemetry.Metrics.F_str (Plan.fault_to_string fault));
          ( "outcome",
            Telemetry.Metrics.F_str (outcome_counter_suffix outcome) );
        ];
    (domain, outcome) :: acc
  in
  match fault with
  | Plan.F_rtl f -> (
    match golden_rtl with
    | None -> FR_skipped "no rtl domain in this campaign"
    | Some (spec, golden) ->
      let outcome =
        Telemetry.Metrics.span metrics "fault/run" (fun () ->
            classify_rtl ~golden (rtl_run ~metrics ~budget spec [ f ]))
      in
      FR_runs (List.rev (note "rtl" outcome [])))
  | Plan.F_statechart f -> (
    match golden_sc with
    | None -> FR_skipped "no statechart domain in this campaign"
    | Some (spec, golden) ->
      let outcome =
        Telemetry.Metrics.span metrics "fault/run" (fun () ->
            classify_sc ~golden (sc_run ~metrics ~budget spec [ f ]))
      in
      FR_runs (List.rev (note "statechart" outcome [])))
  | Plan.F_token f ->
    let acc = ref [] in
    (match golden_act with
     | None -> ()
     | Some (spec, golden) ->
       let outcome =
         Telemetry.Metrics.span metrics "fault/run" (fun () ->
             classify_act ~golden (act_run ~metrics ~budget spec [ f ]))
       in
       acc := note "activity" outcome !acc);
    (match golden_net with
     | None -> ()
     | Some (spec, golden) ->
       let outcome =
         Telemetry.Metrics.span metrics "fault/run" (fun () ->
             classify_net spec ~golden (net_run ~metrics ~budget spec [ f ]))
       in
       acc := note "petri" outcome !acc);
    if !acc = [] then FR_skipped "no token domain in this campaign"
    else FR_runs (List.rev !acc)

let run ?(metrics = Telemetry.Metrics.null)
    ?(budget = Exec.Budget.unlimited) ?pool ?rtl ?statechart ?activity ?net
    ~label plan =
  (* registered up front so it reports 0 even for an empty campaign *)
  let (_ : Telemetry.Metrics.counter) =
    Telemetry.Metrics.counter metrics "fault.injected"
  in
  (* golden runs: once per supplied spec, before any injection, always
     on the caller's domain and registry *)
  let golden_rtl =
    Option.map (fun s -> (s, rtl_run ~metrics ~budget s [])) rtl
  in
  let golden_sc =
    Option.map (fun s -> (s, sc_run ~metrics ~budget s [])) statechart
  in
  let golden_act =
    Option.map (fun s -> (s, act_run ~metrics ~budget s [])) activity
  in
  let golden_net = Option.map (fun s -> (s, net_run ~metrics ~budget s [])) net in
  let faults = Array.of_list plan.Plan.faults in
  let n = Array.length faults in
  let results = Array.make n (FR_skipped "") in
  (match pool with
   | Some p when Exec.Pool.jobs p > 1 && n > 0 ->
     (* one metrics fork per fault, merged back in plan order, so the
        merged registry reports byte-for-byte what the sequential branch
        below would have recorded *)
     let forks = Array.init n (fun _ -> Telemetry.Metrics.fork metrics) in
     Exec.Pool.parallel_for p ~n (fun i ->
         results.(i) <-
           exec_fault ~metrics:forks.(i) ~budget ~golden_rtl ~golden_sc
             ~golden_act ~golden_net faults.(i));
     Array.iter
       (fun child -> Telemetry.Metrics.merge_into ~into:metrics child)
       forks
   | Some _ | None ->
     for i = 0 to n - 1 do
       results.(i) <-
         exec_fault ~metrics ~budget ~golden_rtl ~golden_sc ~golden_act
           ~golden_net faults.(i)
     done);
  let runs = ref [] in
  let skipped = ref [] in
  Array.iteri
    (fun index result ->
      match result with
      | FR_skipped reason -> skipped := (faults.(index), reason) :: !skipped
      | FR_runs domain_outcomes ->
        List.iter
          (fun (domain, outcome) ->
            runs :=
              { run_index = index; run_domain = domain;
                run_fault = faults.(index); run_outcome = outcome }
              :: !runs)
          domain_outcomes)
    results;
  {
    rp_label = label;
    rp_plan = plan;
    rp_runs = List.rev !runs;
    rp_skipped = List.rev !skipped;
  }

let totals report =
  List.fold_left
    (fun t r ->
      let t = { t with t_injected = t.t_injected + 1 } in
      match r.run_outcome with
      | Masked -> { t with t_masked = t.t_masked + 1 }
      | Detected _ -> { t with t_detected = t.t_detected + 1 }
      | Silent -> { t with t_silent = t.t_silent + 1 }
      | Truncated _ -> { t with t_truncated = t.t_truncated + 1 })
    { t_injected = 0; t_masked = 0; t_detected = 0; t_silent = 0;
      t_truncated = 0 }
    report.rp_runs

let coverage t =
  let unmasked = t.t_injected - t.t_masked in
  if unmasked <= 0 then 1.0 else float_of_int t.t_detected /. float_of_int unmasked

let outcome_to_string = function
  | Masked -> "masked"
  | Detected what -> Printf.sprintf "detected (%s)" what
  | Silent -> "silent"
  | Truncated what -> Printf.sprintf "truncated (%s)" what

let to_text report =
  let b = Buffer.create 1024 in
  let t = totals report in
  Printf.bprintf b "fault campaign: %s (seed %d, %d faults planned)\n"
    report.rp_label report.rp_plan.Plan.seed
    (List.length report.rp_plan.Plan.faults);
  List.iter
    (fun r ->
      Printf.bprintf b "  run %02d %-10s %s -> %s\n" r.run_index r.run_domain
        (Plan.fault_to_string r.run_fault)
        (outcome_to_string r.run_outcome))
    report.rp_runs;
  List.iter
    (fun (f, reason) ->
      Printf.bprintf b "  skip   %s (%s)\n" (Plan.fault_to_string f) reason)
    report.rp_skipped;
  Printf.bprintf b
    "summary: injected=%d masked=%d detected=%d silent=%d truncated=%d\n"
    t.t_injected t.t_masked t.t_detected t.t_silent t.t_truncated;
  Printf.bprintf b "coverage: %.1f%% of non-masked faults detected\n"
    (100. *. coverage t);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json report =
  let b = Buffer.create 1024 in
  let t = totals report in
  Printf.bprintf b "{\n  \"label\": \"%s\",\n  \"seed\": %d,\n"
    (json_escape report.rp_label)
    report.rp_plan.Plan.seed;
  Printf.bprintf b "  \"runs\": [";
  List.iteri
    (fun i r ->
      let detail =
        match r.run_outcome with
        | Detected what | Truncated what -> what
        | Masked | Silent -> ""
      in
      Printf.bprintf b "%s\n    {\"index\": %d, \"domain\": \"%s\", \
                        \"fault\": \"%s\", \"outcome\": \"%s\", \
                        \"detail\": \"%s\"}"
        (if i = 0 then "" else ",")
        r.run_index (json_escape r.run_domain)
        (json_escape (Plan.fault_to_string r.run_fault))
        (outcome_counter_suffix r.run_outcome)
        (json_escape detail))
    report.rp_runs;
  Printf.bprintf b "\n  ],\n  \"skipped\": [";
  List.iteri
    (fun i (f, reason) ->
      Printf.bprintf b "%s\n    {\"fault\": \"%s\", \"reason\": \"%s\"}"
        (if i = 0 then "" else ",")
        (json_escape (Plan.fault_to_string f))
        (json_escape reason))
    report.rp_skipped;
  Printf.bprintf b
    "\n  ],\n  \"summary\": {\"injected\": %d, \"masked\": %d, \
     \"detected\": %d, \"silent\": %d, \"truncated\": %d, \
     \"coverage\": %.6g}\n}\n"
    t.t_injected t.t_masked t.t_detected t.t_silent t.t_truncated (coverage t);
  Buffer.contents b
