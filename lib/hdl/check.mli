(** Static checks over RTL designs: name resolution, driver rules,
    width compatibility, instance wiring, combinational loops, and
    dead-wire detection.

    Every finding is a structured {!diagnostic} carrying a severity and
    a stable rule code, so callers (the [lint] subsystem, the CLI) can
    filter and render findings uniformly:

    - [HDL-01] duplicate port/signal declaration
    - [HDL-02] expression does not type ([infer_type] failure)
    - [HDL-03] invalid assignment target (unresolved name, input port)
    - [HDL-04] width or case-choice mismatch
    - [HDL-05] signal driven by multiple processes
    - [HDL-06] combinational loop
    - [HDL-07] bad clock or reset (unresolved, not a bit)
    - [HDL-08] instance wiring (unknown module/port, unresolved actual,
      unconnected input)
    - [HDL-09] top module not found
    - [HDL-10] signal or output port read/required but never driven
      (design-level: instance connections resolved)
    - [HDL-11] internal signal neither read nor driven (design-level) *)

type severity =
  | Error
  | Warning

val equal_severity : severity -> severity -> bool
val severity_name : severity -> string

type diagnostic = {
  diag_severity : severity;
  diag_code : string;  (** stable rule identifier, e.g. ["HDL-05"] *)
  diag_message : string;
}

val equal_diagnostic : diagnostic -> diagnostic -> bool
val to_string : diagnostic -> string
(** ["error(HDL-05): signal s driven by multiple processes ..."] *)

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list
val messages : diagnostic list -> string list
(** Bare message texts, in order (for tests and legacy callers). *)

val infer_type : Module_.t -> Expr.t -> (Htype.t, string) result
(** Infer the type of an expression in a module's name scope.
    Arithmetic joins to the wider operand; comparisons and reductions
    yield [Bit]; [Concat] adds widths. *)

val check_module : Module_.t -> diagnostic list
(** Diagnostics local to one module (no instance resolution, so no
    HDL-10/HDL-11 — driving via instance outputs needs the design). *)

val check_design : Module_.design -> diagnostic list
(** All module diagnostics plus instance wiring, hierarchy and
    dead-wire checks.  Empty list = clean. *)

val has_comb_loop : Module_.t -> bool
(** Combinational cycle through the module's [Comb] processes. *)
