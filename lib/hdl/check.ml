type severity =
  | Error
  | Warning

(* Handwritten (no ppx): [open! Ppx_deriving_runtime] would shadow the
   [Error] constructor with [result]'s. *)
let equal_severity (a : severity) (b : severity) = a = b

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"

type diagnostic = {
  diag_severity : severity;
  diag_code : string;
  diag_message : string;
}

let equal_diagnostic (a : diagnostic) (b : diagnostic) = a = b

let to_string d =
  Printf.sprintf "%s(%s): %s"
    (severity_name d.diag_severity)
    d.diag_code d.diag_message

let errors ds = List.filter (fun d -> d.diag_severity = Error) ds
let warnings ds = List.filter (fun d -> d.diag_severity = Warning) ds
let messages ds = List.map (fun d -> d.diag_message) ds

let diag severity code message =
  { diag_severity = severity; diag_code = code; diag_message = message }

let err code fmt = Printf.ksprintf (diag Error code) fmt
let warn code fmt = Printf.ksprintf (diag Warning code) fmt

let rec infer_type m (e : Expr.t) =
  match e with
  | Expr.Const (_, ty) -> Ok ty
  | Expr.Enum_lit lit -> (
    (* find an enum type declaring this literal *)
    let all_types =
      List.map (fun p -> p.Module_.port_type) m.Module_.mod_ports
      @ List.map (fun s -> s.Module_.sig_type) m.Module_.mod_signals
    in
    match
      List.find_opt
        (fun ty -> Htype.enum_index ty lit <> None)
        all_types
    with
    | Some ty -> Ok ty
    | None -> Error (Printf.sprintf "unknown enum literal %s" lit))
  | Expr.Ref name -> (
    match Module_.declared_type m name with
    | Some ty -> Ok ty
    | None -> Error (Printf.sprintf "unresolved signal %s" name))
  | Expr.Unop (Expr.Not, e1) -> infer_type m e1
  | Expr.Unop ((Expr.Reduce_or | Expr.Reduce_and), e1) -> (
    match infer_type m e1 with
    | Ok _ -> Ok Htype.Bit
    | Error _ as err -> err)
  | Expr.Binop (op, e1, e2) -> (
    match infer_type m e1, infer_type m e2 with
    | Ok t1, Ok t2 ->
      if Expr.is_boolean_op op then Ok Htype.Bit
      else
        let w = max (Htype.width t1) (Htype.width t2) in
        (match op with
         | Expr.And | Expr.Or | Expr.Xor when w = 1 -> Ok Htype.Bit
         | _other -> Ok (Htype.Unsigned w))
    | (Error _ as err), _ -> err
    | _, (Error _ as err) -> err)
  | Expr.Mux (c, a, b) -> (
    match infer_type m c, infer_type m a, infer_type m b with
    | Ok _, Ok ta, Ok tb ->
      if Htype.width ta >= Htype.width tb then Ok ta else Ok tb
    | (Error _ as err), _, _ -> err
    | _, (Error _ as err), _ -> err
    | _, _, (Error _ as err) -> err)
  | Expr.Slice (e1, hi, lo) -> (
    match infer_type m e1 with
    | Ok _ when hi >= lo && lo >= 0 ->
      Ok (if hi = lo then Htype.Bit else Htype.Unsigned (hi - lo + 1))
    | Ok _ -> Error "slice bounds out of order"
    | Error _ as err -> err)
  | Expr.Concat (e1, e2) -> (
    match infer_type m e1, infer_type m e2 with
    | Ok t1, Ok t2 -> Ok (Htype.Unsigned (Htype.width t1 + Htype.width t2))
    | (Error _ as err), _ -> err
    | _, (Error _ as err) -> err)
  | Expr.Resize (e1, w) -> (
    match infer_type m e1 with
    | Ok _ -> Ok (if w = 1 then Htype.Bit else Htype.Unsigned w)
    | Error _ as err -> err)

let check_expr m errs e =
  match infer_type m e with
  | Ok _ -> errs
  | Error msg -> err "HDL-02" "%s in %s" msg m.Module_.mod_name :: errs

let rec check_stmt m errs (s : Stmt.t) =
  match s with
  | Stmt.Null -> errs
  | Stmt.Assign (target, e) -> (
    let errs = check_expr m errs e in
    match Module_.declared_type m target with
    | None ->
      err "HDL-03" "assignment to unresolved signal %s" target :: errs
    | Some target_ty -> (
      match Module_.find_port m target with
      | Some p when p.Module_.port_dir = Module_.Input ->
        err "HDL-03" "assignment to input port %s" target :: errs
      | Some _ | None -> (
        match infer_type m e with
        | Error _ -> errs (* already reported *)
        | Ok ty ->
          if Htype.width ty <= Htype.width target_ty then errs
          else
            err "HDL-04"
              "width mismatch assigning %d bits to %s (%d bits)"
              (Htype.width ty) target (Htype.width target_ty)
            :: errs)))
  | Stmt.If (cond, t_branch, e_branch) ->
    let errs = check_expr m errs cond in
    let errs = List.fold_left (check_stmt m) errs t_branch in
    List.fold_left (check_stmt m) errs e_branch
  | Stmt.Case (sel, branches, default) ->
    let errs = check_expr m errs sel in
    let errs =
      List.fold_left
        (fun errs (choice, body) ->
          let errs =
            match choice, infer_type m sel with
            | Stmt.Ch_enum lit, Ok sel_ty
              when Htype.enum_index sel_ty lit = None ->
              err "HDL-04" "case choice %s not a literal of the selector"
                lit
              :: errs
            | (Stmt.Ch_enum _ | Stmt.Ch_int _), (Ok _ | Error _) -> errs
          in
          List.fold_left (check_stmt m) errs body)
        errs branches
    in
    (match default with
     | Some body -> List.fold_left (check_stmt m) errs body
     | None -> errs)

let drivers m =
  (* name -> list of process names that assign it *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let names = Stmt.assigned (Module_.process_body p) in
      let names =
        match p with
        | Module_.Seq { sp_reset = Some (_, reset_body); _ } ->
          names @ Stmt.assigned reset_body
        | Module_.Seq _ | Module_.Comb _ -> names
      in
      List.iter
        (fun n ->
          let existing =
            match Hashtbl.find_opt tbl n with
            | Some l -> l
            | None -> []
          in
          let pname = Module_.process_name p in
          if not (List.mem pname existing) then
            Hashtbl.replace tbl n (pname :: existing))
        names)
    m.Module_.mod_processes;
  tbl

let has_comb_loop m =
  (* edges: read -> written within each comb process; DFS for a cycle *)
  let edges = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match p with
      | Module_.Comb { cp_body; _ } ->
        let reads = Stmt.read cp_body in
        let writes = Stmt.assigned cp_body in
        List.iter
          (fun r ->
            let existing =
              match Hashtbl.find_opt edges r with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace edges r (writes @ existing))
          reads
      | Module_.Seq _ -> ())
    m.Module_.mod_processes;
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let rec dfs n =
    if Hashtbl.mem done_ n then false
    else if Hashtbl.mem visiting n then true
    else begin
      Hashtbl.add visiting n ();
      let succ =
        match Hashtbl.find_opt edges n with
        | Some l -> l
        | None -> []
      in
      let cyclic = List.exists dfs succ in
      Hashtbl.remove visiting n;
      Hashtbl.add done_ n ();
      cyclic
    end
  in
  (* audited: hash-order fold, but cycle existence is a property of the
     graph — the boolean is the same whatever order the roots are tried *)
  Hashtbl.fold (fun n _ acc -> acc || dfs n) edges false

let check_module m =
  let errs = [] in
  (* duplicate declarations *)
  let names =
    List.map (fun p -> p.Module_.port_name) m.Module_.mod_ports
    @ List.map (fun s -> s.Module_.sig_name) m.Module_.mod_signals
  in
  let seen = Hashtbl.create 16 in
  let errs =
    List.fold_left
      (fun errs n ->
        if Hashtbl.mem seen n then
          err "HDL-01" "duplicate declaration of %s in %s" n
            m.Module_.mod_name
          :: errs
        else begin
          Hashtbl.add seen n ();
          errs
        end)
      errs names
  in
  let errs =
    List.fold_left
      (fun errs p ->
        let errs =
          List.fold_left (check_stmt m) errs (Module_.process_body p)
        in
        match p with
        | Module_.Seq sp ->
          let errs =
            match Module_.declared_type m sp.Module_.sp_clock with
            | Some Htype.Bit -> errs
            | Some _ ->
              err "HDL-07" "clock %s of process %s is not a bit"
                sp.Module_.sp_clock sp.Module_.sp_name
              :: errs
            | None ->
              err "HDL-07" "unresolved clock %s in process %s"
                sp.Module_.sp_clock sp.Module_.sp_name
              :: errs
          in
          (match sp.Module_.sp_reset with
           | Some (rst, body) ->
             let errs = List.fold_left (check_stmt m) errs body in
             (match Module_.declared_type m rst with
              | Some Htype.Bit -> errs
              | Some _ ->
                err "HDL-07" "reset %s is not a bit" rst :: errs
              | None -> err "HDL-07" "unresolved reset %s" rst :: errs)
           | None -> errs)
        | Module_.Comb _ -> errs)
      errs m.Module_.mod_processes
  in
  (* audited: the fold over [drivers m] visits signals in hash order,
     but both the per-signal process list and the (name, procs) pairs
     are re-sorted below, so diagnostics come out in signal-name order
     regardless of bucket layout *)
  let errs =
    let multi =
      Hashtbl.fold
        (fun n procs acc ->
          if List.length procs > 1 then (n, List.sort compare procs) :: acc
          else acc)
        (drivers m) []
    in
    List.fold_left
      (fun errs (n, procs) ->
        err "HDL-05" "signal %s driven by multiple processes (%s) in %s" n
          (String.concat ", " procs)
          m.Module_.mod_name
        :: errs)
      errs
      (List.sort compare multi)
  in
  let errs =
    if has_comb_loop m then
      err "HDL-06" "combinational loop in module %s" m.Module_.mod_name
      :: errs
    else errs
  in
  List.rev errs

(* --- dead wires (design level) --------------------------------------- *)

(* Reads and writes of names in a module, counting its instances:
   an actual wired to an [Output] formal of the instantiated module is
   written; one wired to an [Input] formal is read. *)
let dead_wire_diags d (m : Module_.t) =
  let written = Hashtbl.create 16 in
  let read = Hashtbl.create 16 in
  let mark tbl n = Hashtbl.replace tbl n () in
  List.iter
    (fun p ->
      List.iter (mark written) (Stmt.assigned (Module_.process_body p));
      List.iter (mark read) (Stmt.read (Module_.process_body p));
      match p with
      | Module_.Seq sp ->
        mark read sp.Module_.sp_clock;
        (match sp.Module_.sp_reset with
         | Some (rst, body) ->
           mark read rst;
           List.iter (mark written) (Stmt.assigned body);
           List.iter (mark read) (Stmt.read body)
         | None -> ())
      | Module_.Comb _ -> ())
    m.Module_.mod_processes;
  List.iter
    (fun (inst : Module_.instance) ->
      match Module_.find_module d inst.Module_.inst_module with
      | None -> () (* wiring already reported as HDL-08 *)
      | Some target ->
        List.iter
          (fun (formal, actual) ->
            match Module_.find_port target formal with
            | Some p when p.Module_.port_dir = Module_.Output ->
              mark written actual
            | Some _ -> mark read actual
            | None -> ())
          inst.Module_.inst_conns)
    m.Module_.mod_instances;
  let sig_diag acc (s : Module_.signal) =
    let n = s.Module_.sig_name in
    let is_written = Hashtbl.mem written n || s.Module_.sig_init <> None in
    let is_read = Hashtbl.mem read n in
    if is_read && not is_written then
      err "HDL-10" "signal %s in %s is read but never driven" n
        m.Module_.mod_name
      :: acc
    else if (not is_read) && not is_written then
      warn "HDL-11" "signal %s in %s is neither read nor driven" n
        m.Module_.mod_name
      :: acc
    else acc
  in
  let port_diag acc (p : Module_.port) =
    if
      p.Module_.port_dir = Module_.Output
      && not (Hashtbl.mem written p.Module_.port_name)
    then
      err "HDL-10" "output port %s of %s is never driven"
        p.Module_.port_name m.Module_.mod_name
      :: acc
    else acc
  in
  let acc = List.fold_left sig_diag [] m.Module_.mod_signals in
  let acc = List.fold_left port_diag acc m.Module_.mod_ports in
  List.rev acc

let check_design d =
  let errs = List.concat_map check_module d.Module_.des_modules in
  let errs =
    match Module_.find_module d d.Module_.des_top with
    | Some _ -> errs
    | None ->
      errs @ [ err "HDL-09" "top module %s not found" d.Module_.des_top ]
  in
  let check_instance (m : Module_.t) errs (inst : Module_.instance) =
    match Module_.find_module d inst.Module_.inst_module with
    | None ->
      err "HDL-08" "instance %s references unknown module %s"
        inst.Module_.inst_name inst.Module_.inst_module
      :: errs
    | Some target ->
      let errs =
        List.fold_left
          (fun errs (formal, actual) ->
            let errs =
              match Module_.find_port target formal with
              | Some _ -> errs
              | None ->
                err "HDL-08" "instance %s connects unknown port %s of %s"
                  inst.Module_.inst_name formal inst.Module_.inst_module
                :: errs
            in
            match Module_.declared_type m actual with
            | Some _ -> errs
            | None ->
              err "HDL-08" "instance %s connects unresolved signal %s"
                inst.Module_.inst_name actual
              :: errs)
          errs inst.Module_.inst_conns
      in
      (* every input of the target must be connected *)
      List.fold_left
        (fun errs (p : Module_.port) ->
          if
            p.Module_.port_dir = Module_.Input
            && not
                 (List.mem_assoc p.Module_.port_name inst.Module_.inst_conns)
          then
            err "HDL-08" "instance %s leaves input %s of %s unconnected"
              inst.Module_.inst_name p.Module_.port_name
              inst.Module_.inst_module
            :: errs
          else errs)
        errs target.Module_.mod_ports
  in
  let errs =
    List.fold_left
      (fun errs m ->
        List.fold_left (check_instance m) errs m.Module_.mod_instances)
      errs d.Module_.des_modules
  in
  errs @ List.concat_map (dead_wire_diags d) d.Module_.des_modules
