open Uml

exception Xuml_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Xuml_error m)) fmt

type t = {
  sys_model : Model.t;
  sys_store : Asl.Store.t;
  sys_interp : Asl.Interp.t;
  methods : (string * string, Asl.Interp.method_impl) Hashtbl.t;
  engines : (Asl.Value.obj_ref, Statechart.Engine.t) Hashtbl.t;
  mutable instances : (string * Asl.Value.obj_ref) list;  (** reverse *)
  mutable instance_counter : int;
  mutable message_log : (string option * string option * string) list;
      (** (sender, receiver, signal), reverse order *)
}

let model t = t.sys_model
let interp t = t.sys_interp
let store t = t.sys_store

(* --- class metadata -------------------------------------------------- *)

let class_named m name =
  List.find_opt (fun c -> c.Classifier.cl_name = name) (Model.classifiers m)

(* attributes including inherited ones; subclass declarations win *)
let all_attributes m (cl : Classifier.t) =
  let rec collect seen acc cl =
    let acc =
      List.fold_left
        (fun acc (p : Classifier.property) ->
          if List.mem_assoc p.Classifier.prop_name acc then acc
          else (p.Classifier.prop_name, p) :: acc)
        acc cl.Classifier.cl_attributes
    in
    List.fold_left
      (fun acc parent_id ->
        if Ident.Set.mem parent_id seen then acc
        else
          match Model.find_classifier m parent_id with
          | Some parent -> collect (Ident.Set.add parent_id seen) acc parent
          | None -> acc)
      acc cl.Classifier.cl_generals
  in
  List.rev (collect Ident.Set.empty [] cl)

let value_of_vspec = function
  | Vspec.Int_literal i -> Asl.Value.V_int i
  | Vspec.Real_literal r -> Asl.Value.V_real r
  | Vspec.Bool_literal b -> Asl.Value.V_bool b
  | Vspec.String_literal s -> Asl.Value.V_string s
  | Vspec.Enum_literal s -> Asl.Value.V_string s
  | Vspec.Null_literal -> Asl.Value.V_null
  | Vspec.Opaque_expression _ -> Asl.Value.V_null

let default_of_type = function
  | Dtype.Boolean -> Asl.Value.V_bool false
  | Dtype.Integer | Dtype.Unlimited_natural -> Asl.Value.V_int 0
  | Dtype.Real -> Asl.Value.V_real 0.0
  | Dtype.String_type -> Asl.Value.V_string ""
  | Dtype.Ref _ | Dtype.Void -> Asl.Value.V_null

let attr_defaults_of m class_name =
  match class_named m class_name with
  | None -> []
  | Some cl ->
    List.map
      (fun (name, (p : Classifier.property)) ->
        let v =
          match p.Classifier.prop_default with
          | Some d -> value_of_vspec d
          | None -> default_of_type p.Classifier.prop_type
        in
        (name, v))
      (all_attributes m cl)

(* operation lookup including inherited ones; returns the owning class *)
let rec find_method m seen (cl : Classifier.t) op_name =
  match Classifier.find_operation cl op_name with
  | Some op -> Some (cl, op)
  | None ->
    List.find_map
      (fun parent_id ->
        if Ident.Set.mem parent_id seen then None
        else
          match Model.find_classifier m parent_id with
          | Some parent ->
            find_method m (Ident.Set.add parent_id seen) parent op_name
          | None -> None)
      cl.Classifier.cl_generals

(* --- construction ----------------------------------------------------- *)

let parse_methods m methods =
  List.iter
    (fun (cl : Classifier.t) ->
      List.iter
        (fun (op : Classifier.operation) ->
          match op.Classifier.op_body with
          | None -> ()
          | Some src -> (
            match Asl.Parser.parse_program src with
            | prog ->
              let params =
                List.filter_map
                  (fun (p : Classifier.parameter) ->
                    if p.Classifier.param_direction = Classifier.Return then
                      None
                    else Some p.Classifier.param_name)
                  op.Classifier.op_params
              in
              Hashtbl.replace methods
                (cl.Classifier.cl_name, op.Classifier.op_name)
                (Asl.Interp.Body (params, prog))
            | exception exn -> (
              match Asl.Parser.error_message exn with
              | Some msg ->
                err "operation %s.%s: %s" cl.Classifier.cl_name
                  op.Classifier.op_name msg
              | None -> raise exn)))
        cl.Classifier.cl_operations)
    (Model.classifiers m)

let create sys_model =
  let sys_store = Asl.Store.create () in
  let methods = Hashtbl.create 32 in
  parse_methods sys_model methods;
  let resolve class_name op_name =
    match Hashtbl.find_opt methods (class_name, op_name) with
    | Some impl -> Some impl
    | None -> (
      (* inherited implementation: the body is registered under the
         class that declares it *)
      match class_named sys_model class_name with
      | None -> None
      | Some cl -> (
        match find_method sys_model Ident.Set.empty cl op_name with
        | Some (owner, _op) ->
          Hashtbl.find_opt methods (owner.Classifier.cl_name, op_name)
        | None -> None))
  in
  let attr_defaults name = attr_defaults_of sys_model name in
  let sys_interp = Asl.Interp.create ~resolve ~attr_defaults sys_store in
  {
    sys_model;
    sys_store;
    sys_interp;
    methods;
    engines = Hashtbl.create 8;
    instances = [];
    instance_counter = 0;
    message_log = [];
  }

(* --- signal routing ---------------------------------------------------- *)

let name_of_ref t r =
  List.find_map
    (fun (name, r') -> if r' = r then Some name else None)
    t.instances

let obj_name_opt t = function
  | Some r -> name_of_ref t r
  | None -> None

let log_message t ~sender ~receiver signal =
  let receiver_name =
    match receiver with
    | Some r -> name_of_ref t r
    | None -> obj_name_opt t sender
  in
  t.message_log <-
    (obj_name_opt t sender, receiver_name, signal) :: t.message_log

let deliver_signals t ~sender ~default_engine =
  let pending = Asl.Interp.drain_signals t.sys_interp in
  List.iter
    (fun (s : Asl.Interp.signal_out) ->
      let event = Statechart.Event.make ~args:s.Asl.Interp.sig_args s.Asl.Interp.sig_name in
      match s.Asl.Interp.sig_target with
      | Some (Asl.Value.V_obj r) -> (
        log_message t ~sender ~receiver:(Some r) s.Asl.Interp.sig_name;
        match Hashtbl.find_opt t.engines r with
        | Some engine -> Statechart.Engine.send engine event
        | None -> () (* signal to a passive object: dropped *))
      | Some _ | None -> (
        log_message t ~sender ~receiver:sender s.Asl.Interp.sig_name;
        match default_engine with
        | Some engine -> Statechart.Engine.send engine event
        | None -> ()))
    pending

let message_trace t = List.rev t.message_log
let clear_message_trace t = t.message_log <- []

(* --- instantiation ------------------------------------------------------ *)

let machine_of_class t (cl : Classifier.t) =
  List.find_map (Model.find_state_machine t.sys_model) cl.Classifier.cl_behaviors

let instantiate t class_name =
  match class_named t.sys_model class_name with
  | None -> err "unknown class %s" class_name
  | Some cl ->
    let attrs = attr_defaults_of t.sys_model class_name in
    let r = Asl.Store.alloc t.sys_store ~class_name ~attrs in
    t.instance_counter <- t.instance_counter + 1;
    let name = Printf.sprintf "%s#%d" class_name t.instance_counter in
    t.instances <- (name, r) :: t.instances;
    (if cl.Classifier.cl_is_active then
       match machine_of_class t cl with
       | Some sm ->
         let engine =
           Statechart.Engine.create ~interp:t.sys_interp
             ~self_:(Asl.Value.V_obj r) sm
         in
         Hashtbl.replace t.engines r engine;
         Statechart.Engine.start engine;
         deliver_signals t ~sender:(Some r) ~default_engine:(Some engine)
       | None -> ());
    r

let objects t = List.rev t.instances

let object_of_name t name =
  List.assoc_opt name t.instances

let engine_of t r = Hashtbl.find_opt t.engines r

let send t ?(args = []) ~to_ name =
  match Hashtbl.find_opt t.engines to_ with
  | Some engine -> Statechart.Engine.send engine (Statechart.Event.make ~args name)
  | None -> err "object has no state machine"

let call t ~self_ op_name args =
  let class_name =
    match Asl.Store.class_of t.sys_store self_ with
    | Some c -> c
    | None -> err "call on dead object"
  in
  let expr =
    Asl.Ast.Call
      (Some Asl.Ast.Self, op_name, List.mapi (fun i _ -> Asl.Ast.Var (Printf.sprintf "__a%d" i)) args)
  in
  let params = List.mapi (fun i v -> (Printf.sprintf "__a%d" i, v)) args in
  let _ = class_name in
  match
    Asl.Interp.eval ~self_:(Asl.Value.V_obj self_) ~params t.sys_interp expr
  with
  | v ->
    deliver_signals t ~sender:(Some self_) ~default_engine:(engine_of t self_);
    v
  | exception Asl.Interp.Runtime_error m -> err "call %s failed: %s" op_name m

(* --- system scheduler ----------------------------------------------------- *)

let run ?(max_rounds = 1000) t =
  let total = ref 0 in
  let rec round n =
    if n >= max_rounds then err "system did not quiesce after %d rounds" n;
    let worked = ref false in
    (* Step engines in instance-creation order.  [Hashtbl.iter] over
       [t.engines] would let the bucket layout pick the interleaving,
       and engine steps have cross-object effects (signal delivery, the
       message log, final configurations) — so the trace, not just its
       presentation, would depend on table internals. *)
    List.iter
      (fun (_name, r) ->
        match Hashtbl.find_opt t.engines r with
        | None -> () (* passive object *)
        | Some engine ->
          let steps = Statechart.Engine.run_to_quiescence engine in
          if steps > 0 then begin
            worked := true;
            total := !total + steps;
            deliver_signals t ~sender:(Some r) ~default_engine:(Some engine)
          end)
      (List.rev t.instances);
    if !worked then round (n + 1)
  in
  round 0;
  !total

let configuration t =
  List.filter_map
    (fun (name, r) ->
      match engine_of t r with
      | Some engine -> Some (name, Statechart.Engine.signature engine)
      | None -> None)
    (objects t)

let output t = Asl.Interp.output t.sys_interp
