(** Work-stealing domain pool for deterministic fan-out.

    A pool owns [jobs - 1] persistent worker domains; the caller of
    {!parallel_for} participates as the remaining worker, so a pool with
    [jobs = 1] spawns no domains at all and runs every task inline, in
    index order — byte-identical to a plain [for] loop.  This is the
    substrate behind [--jobs N] on the CLI: callers shard independent
    tasks (injected faults, BFS frontier nodes, models to lint) across
    the pool and merge results in a stable order, so output never
    depends on the number of domains.

    {2 Scheduling}

    A batch of [n] tasks is split into [jobs] contiguous index blocks,
    one per participant, each drained through an atomic cursor in
    ascending order.  A participant that exhausts its own block steals
    chunks from the victim with the most work remaining, so skewed task
    sizes still balance.  Tasks therefore run in an unspecified order on
    unspecified domains — they must be independent and must not mutate
    shared state (give each task its own accumulator and merge after;
    see DESIGN.md on the accumulate-then-merge rule).

    {2 Exceptions}

    If tasks raise, the exception of the lowest-index raising task is
    re-raised in the caller after the whole batch has drained (every
    task is still attempted), so the surfaced diagnostic does not depend
    on scheduling.  The pool stays usable afterwards. *)

type t

val max_jobs : int
(** Upper bound on worker count (64); [create] clamps to it. *)

val create : jobs:int -> t
(** A pool executing up to [jobs] tasks concurrently ([jobs - 1] worker
    domains plus the calling domain, clamped to {!max_jobs}).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** The (clamped) concurrency of the pool.  [1] means fully inline:
    callers can keep their sequential code path. *)

val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f 0 .. f (n - 1)], each exactly
    once, and returns when all have finished.  [chunk] (default 1)
    claims that many consecutive indices per cursor bump — raise it for
    very fine-grained tasks.  With [jobs pool = 1] this is exactly
    [for i = 0 to n - 1 do f i done]. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!Array.map} but sharded over the pool; the result array is in
    input order regardless of execution order. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exception). *)
