exception Expired of string

type kind =
  | Unlimited
  | Fuel of string
  | Deadline of { now : unit -> float; start : float; horizon : float; msg : string }

type t = {
  kind : kind;
  remaining : int Atomic.t;
      (* Fuel: checkpoints left.  Deadline: checkpoints until the next
         clock consultation.  Unlimited: unused. *)
  dead : bool Atomic.t;  (* sticky expiry flag, shared across domains *)
}

(* How many checkpoints a deadline budget runs between clock reads.
   Engine checkpoints are micro-scale (one marking, one settle pass),
   so consulting the clock every call would dominate; 64 keeps the
   detection window well under a millisecond on every E19 shape. *)
let clock_stride = 64

let unlimited =
  { kind = Unlimited; remaining = Atomic.make max_int; dead = Atomic.make false }

let fuel n =
  if n < 0 then invalid_arg "Budget.fuel: negative fuel";
  {
    kind = Fuel (Printf.sprintf "budget expired: fuel limit %d exhausted" n);
    remaining = Atomic.make n;
    dead = Atomic.make false;
  }

let deadline ~now ~ms =
  if ms <= 0 then invalid_arg "Budget.deadline: non-positive deadline";
  {
    kind =
      Deadline
        {
          now;
          start = now ();
          horizon = float_of_int ms /. 1000.;
          msg = Printf.sprintf "budget expired: deadline %d ms exceeded" ms;
        };
    remaining = Atomic.make clock_stride;
    dead = Atomic.make false;
  }

let expire t msg =
  Atomic.set t.dead true;
  raise (Expired msg)

let check t =
  match t.kind with
  | Unlimited -> ()
  | Fuel msg ->
      if Atomic.get t.dead then raise (Expired msg)
      else if Atomic.fetch_and_add t.remaining (-1) <= 0 then expire t msg
  | Deadline d ->
      if Atomic.get t.dead then raise (Expired d.msg)
      else if Atomic.fetch_and_add t.remaining (-1) <= 0 then begin
        Atomic.set t.remaining clock_stride;
        if d.now () -. d.start > d.horizon then expire t d.msg
      end

let expired t = Atomic.get t.dead
