(** Cooperative cancellation budgets.

    A budget is a token threaded into long-running engine loops
    ({!Petri.Compiled} exploration, {!Fault.Campaign} runs,
    {!Dsim.Fast} settling).  The loop calls {!check} at each natural
    checkpoint (one popped marking, one injected fault, one settle
    pass); when the budget is exhausted, {!check} raises {!Expired}
    and the caller unwinds with all shared state still consistent —
    cancellation is purely cooperative, nothing is killed mid-write.

    Budgets come in three flavours:

    - {!unlimited} never expires (the default everywhere);
    - {!fuel} expires after a fixed number of checkpoints — fully
      deterministic, used by tests and the golden resilience gate;
    - {!deadline} expires once an injected wall clock passes a
      configured horizon.  The clock is injected as a closure so this
      library stays dependency-free ([lib/serve] passes
      [Unix.gettimeofday]).

    State is kept in [Atomic] cells: a budget may be checked from
    {!Pool} worker domains, and an expiry observed by one worker is
    sticky — every subsequent {!check} on any domain raises too.
    At [jobs=1] everything runs inline, so fuel expiry is exact and
    replayable. *)

type t
(** A cancellation budget. *)

exception Expired of string
(** Raised by {!check} when the budget is exhausted.  The payload is a
    deterministic one-line description of the configured limit (it
    never embeds elapsed wall time). *)

val unlimited : t
(** The budget that never expires; {!check} is a cheap no-op. *)

val fuel : int -> t
(** [fuel n] expires at the [n+1]-th checkpoint: the first [n] calls
    to {!check} succeed, the next raises.  Deterministic across runs
    and job counts when checked from a single domain.
    @raise Invalid_argument if [n < 0]. *)

val deadline : now:(unit -> float) -> ms:int -> t
(** [deadline ~now ~ms] expires once [now () -. start > ms / 1000.]
    where [start] is sampled at creation.  To keep checkpoints cheap
    the clock is consulted only every few dozen {!check} calls; expiry
    is therefore detected within a small checkpoint window of the
    horizon.  @raise Invalid_argument if [ms <= 0]. *)

val check : t -> unit
(** Checkpoint: account one unit of work and raise {!Expired} if the
    budget is (or has become) exhausted.  Safe to call from any
    domain. *)

val expired : t -> bool
(** [expired t] is [true] once the budget has been observed exhausted
    (by any domain).  Never [true] for {!unlimited}. *)
