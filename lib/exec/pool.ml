(* Work-stealing pool over raw [Domain]s — stdlib only, so the sealed
   container can build it without domainslib.  Scheduling and the
   determinism contract are documented in pool.mli; the
   accumulate-then-merge rule callers must follow is in DESIGN.md. *)

type batch = {
  b_n : int;
  b_chunk : int;
  b_f : int -> unit;
  b_next : int Atomic.t array;  (** per-participant claim cursor *)
  b_stop : int array;  (** per-participant block end, exclusive *)
  b_done : int Atomic.t;  (** tasks completed so far *)
  b_exn : (int * exn) option ref;  (** lowest-index failure, under the lock *)
}

type t = {
  p_jobs : int;
  p_lock : Mutex.t;
  p_work : Condition.t;  (** workers wait here for a batch or shutdown *)
  p_idle : Condition.t;  (** the caller waits here for batch completion *)
  mutable p_batch : (int * batch) option;  (** generation-tagged batch *)
  mutable p_gen : int;
  mutable p_down : bool;
  mutable p_workers : unit Domain.t list;
}

let max_jobs = 64

(* --- batch execution --------------------------------------------------- *)

let record_exn pool b i e =
  Mutex.lock pool.p_lock;
  (match !(b.b_exn) with
   | Some (j, _) when j <= i -> ()
   | Some _ | None -> b.b_exn := Some (i, e));
  Mutex.unlock pool.p_lock

let run_range pool b lo hi =
  for i = lo to hi - 1 do
    try b.b_f i with e -> record_exn pool b i e
  done;
  if Atomic.fetch_and_add b.b_done (hi - lo) + (hi - lo) = b.b_n then begin
    (* last tasks of the batch: wake the caller if it is waiting *)
    Mutex.lock pool.p_lock;
    Condition.broadcast pool.p_idle;
    Mutex.unlock pool.p_lock
  end

(* Claim a chunk from participant [v]'s block; [None] when drained.  A
   failed claim leaves the cursor past the stop, so [v] stops looking
   like a victim immediately. *)
let claim b v =
  let i = Atomic.fetch_and_add b.b_next.(v) b.b_chunk in
  if i < b.b_stop.(v) then Some (i, min b.b_stop.(v) (i + b.b_chunk))
  else None

(* The participant with the most unclaimed work, if any. *)
let best_victim b self =
  let best = ref (-1) in
  let best_left = ref 0 in
  Array.iteri
    (fun v cursor ->
      if v <> self then begin
        let left = b.b_stop.(v) - Atomic.get cursor in
        if left > !best_left then begin
          best := v;
          best_left := left
        end
      end)
    b.b_next;
  if !best < 0 then None else Some !best

let participate pool b self =
  let rec own () =
    match claim b self with
    | Some (lo, hi) ->
      run_range pool b lo hi;
      own ()
    | None -> steal ()
  and steal () =
    match best_victim b self with
    | None -> ()
    | Some v ->
      (match claim b v with
       | Some (lo, hi) -> run_range pool b lo hi
       | None -> ());
      steal ()
  in
  own ()

(* --- worker domains ---------------------------------------------------- *)

let worker pool self =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.p_lock;
    let rec await () =
      if pool.p_down then None
      else
        match pool.p_batch with
        | Some (g, b) when g <> !last_gen ->
          last_gen := g;
          Some b
        | Some _ | None ->
          Condition.wait pool.p_work pool.p_lock;
          await ()
    in
    let job = await () in
    Mutex.unlock pool.p_lock;
    match job with
    | None -> running := false
    | Some b -> participate pool b self
  done

(* --- public API -------------------------------------------------------- *)

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let jobs = min jobs max_jobs in
  let pool =
    {
      p_jobs = jobs;
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_idle = Condition.create ();
      p_batch = None;
      p_gen = 0;
      p_down = false;
      p_workers = [];
    }
  in
  pool.p_workers <-
    List.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker pool (w + 1)));
  pool

let jobs pool = pool.p_jobs

let parallel_for ?(chunk = 1) pool ~n f =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk must be >= 1";
  if n > 0 then begin
    if pool.p_jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let k = pool.p_jobs in
      let b =
        {
          b_n = n;
          b_chunk = chunk;
          b_f = f;
          b_next = Array.init k (fun p -> Atomic.make (p * n / k));
          b_stop = Array.init k (fun p -> (p + 1) * n / k);
          b_done = Atomic.make 0;
          b_exn = ref None;
        }
      in
      Mutex.lock pool.p_lock;
      if pool.p_down then begin
        Mutex.unlock pool.p_lock;
        invalid_arg "Pool.parallel_for: pool already shut down"
      end;
      pool.p_gen <- pool.p_gen + 1;
      pool.p_batch <- Some (pool.p_gen, b);
      Condition.broadcast pool.p_work;
      Mutex.unlock pool.p_lock;
      participate pool b 0;
      Mutex.lock pool.p_lock;
      while Atomic.get b.b_done < n do
        Condition.wait pool.p_idle pool.p_lock
      done;
      pool.p_batch <- None;
      Mutex.unlock pool.p_lock;
      match !(b.b_exn) with
      | Some (_i, e) -> raise e
      | None -> ()
    end
  end

let map_array ?chunk pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?chunk pool ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map
      (function
        | Some y -> y
        | None -> invalid_arg "Pool.map_array: task produced no result")
      out
  end

let map_list ?chunk pool f xs =
  Array.to_list (map_array ?chunk pool f (Array.of_list xs))

let shutdown pool =
  Mutex.lock pool.p_lock;
  pool.p_down <- true;
  Condition.broadcast pool.p_work;
  let workers = pool.p_workers in
  pool.p_workers <- [];
  Mutex.unlock pool.p_lock;
  List.iter Domain.join workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
