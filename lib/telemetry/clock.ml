type t =
  | Null
  | Counting of int ref
  | Manual of int ref
  | Fn of (unit -> int)

let null = Null
let counting () = Counting (ref 0)
let manual () = Manual (ref 0)
let of_fun f = Fn f

let ticks = function
  | Null -> 0
  | Counting r ->
    let v = !r in
    incr r;
    v
  | Manual r -> !r
  | Fn f -> f ()

let advance t n =
  match t with
  | Manual r -> if n > 0 then r := !r + n
  | Null | Counting _ | Fn _ -> ()
