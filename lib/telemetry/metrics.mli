(** Metrics registry and structured event sink.

    One registry is shared by every engine participating in a run:
    engines look up named instruments once at creation time and bump
    them on their hot paths.  Instruments are monotonic counters, gauges
    (last value + high-water mark), span statistics (count/total/max
    duration under the registry's {!Clock}), and a bounded structured
    event log (a {!Ring}).

    The rendered {!report} is sorted by instrument name and contains no
    wall-clock input when the registry uses a deterministic clock, so it
    is byte-for-byte reproducible — the property the CLI and the tests
    rely on.

    A registry created with {!disabled} (and the shared {!null}) turns
    every operation into a cheap branch, which is what the E11 bench
    measures instrumentation overhead against. *)

type t

type counter
type gauge

(** A typed field of a structured event. *)
type field =
  | F_int of int
  | F_bool of bool
  | F_str of string

type event = {
  ev_seq : int;  (** 0-based emission index *)
  ev_tick : int;  (** registry clock reading at emission *)
  ev_scope : string;  (** emitting subsystem, e.g. ["statechart"] *)
  ev_name : string;
  ev_fields : (string * field) list;
}

val create : ?clock:Clock.t -> ?event_capacity:int -> unit -> t
(** A live registry.  [clock] defaults to {!Clock.counting} (logical,
    deterministic); [event_capacity] (default 4096) bounds the event
    ring. *)

val disabled : unit -> t
(** A registry that records nothing: counters, gauges, spans and events
    all no-op. *)

val null : t
(** A shared disabled registry — the default instrument target for
    engines created without explicit telemetry. *)

val live : t -> bool
(** [false] exactly for disabled registries; lets callers skip building
    expensive event payloads. *)

val counter : t -> string -> counter
(** Find or register the named counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> int -> unit
(** Record the current level; the maximum ever set is kept as well. *)

val gauge_value : gauge -> int
val gauge_max : gauge -> int

val span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its clock-tick duration to the named span
    statistic (also on exception). *)

val event : t -> scope:string -> string -> (string * field) list -> unit
(** Append a structured event to the ring (dropped when full or when
    the registry is disabled). *)

val events : t -> event list
(** Retained events, oldest first. *)

val events_dropped : t -> int

val render_event : event -> string
(** One-line rendering, e.g.
    ["000012 @34 statechart/step event=toggle fired=1"]. *)

val report : t -> string
(** The full deterministic metrics report: counters, gauges and spans
    sorted by name, then an event-volume summary line. *)

(** {1 Accumulate-then-merge}

    The parallel fan-outs ({!Fault.Campaign}, {!Petri.Compiled}, the
    CLI) never share one registry across domains.  Each task records
    into its own {!fork} and the caller folds the forks back with
    {!merge_into} in task order — so with a counting clock the merged
    registry {!report}s byte-for-byte what a sequential run over the
    same tasks would have produced, at any domain count. *)

val fork : t -> t
(** A fresh live registry suitable for one parallel task: same event
    capacity as the parent, its own {!Clock.counting} clock (span
    durations under a counting clock are relative, so they merge
    exactly).  Forking a disabled registry returns {!null}. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds a fork back: counters and span
    statistics add, span/gauge maxima combine, gauges written in [src]
    overwrite [into]'s last value (call in task order — last writer
    wins, as it would sequentially), and [src]'s retained events are
    appended with re-assigned sequence numbers ([src] drop counts carry
    over, so recorded+dropped is conserved).  Event {e ticks} stay
    task-local — only event counts, never merged ticks, appear in
    {!report}.  No-op when either side is disabled. *)
