(** Pluggable monotonic clocks for telemetry spans and event stamps.

    Telemetry must never make a deterministic engine nondeterministic,
    so the default clock is a logical one: {!counting} hands out
    successive integers, which depend only on the sequence of telemetry
    calls — identical across runs and machines.  Wall-clock time can be
    injected through {!of_fun} when a caller really wants it. *)

type t

val null : t
(** Always reads 0; spans all have zero duration. *)

val counting : unit -> t
(** A fresh logical clock: each read returns 0, 1, 2, … *)

val manual : unit -> t
(** A clock driven entirely by {!advance}; reads do not move it. *)

val of_fun : (unit -> int) -> t
(** Wrap an arbitrary tick source (e.g. wall time in microseconds).
    Determinism is then the caller's problem. *)

val ticks : t -> int
(** Read the current tick (advancing a {!counting} clock by one). *)

val advance : t -> int -> unit
(** Move a {!manual} clock forward by [n] ticks ([n >= 0]); a no-op on
    every other clock kind. *)
