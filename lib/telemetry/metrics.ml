type counter = {
  mutable c_value : int;
  c_on : bool;
}

type gauge = {
  mutable g_last : int;
  mutable g_max : int;
  mutable g_set : bool;  (** ever written; merge skips untouched gauges *)
  g_on : bool;
}

type span_stat = {
  mutable s_count : int;
  mutable s_total : int;
  mutable s_max : int;
}

type field =
  | F_int of int
  | F_bool of bool
  | F_str of string

type event = {
  ev_seq : int;
  ev_tick : int;
  ev_scope : string;
  ev_name : string;
  ev_fields : (string * field) list;
}

type t = {
  on : bool;
  clock : Clock.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  spans : (string, span_stat) Hashtbl.t;
  sink : event Ring.t;
  mutable seq : int;
}

let make ~on ~clock ~event_capacity =
  {
    on;
    clock;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    spans = Hashtbl.create 8;
    sink = Ring.create event_capacity;
    seq = 0;
  }

let create ?clock ?(event_capacity = 4096) () =
  let clock =
    match clock with
    | Some c -> c
    | None -> Clock.counting ()
  in
  make ~on:true ~clock ~event_capacity

let disabled () = make ~on:false ~clock:Clock.null ~event_capacity:0
let null = disabled ()
let live t = t.on

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_value = 0; c_on = t.on } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) c = if c.c_on then c.c_value <- c.c_value + by
let counter_value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_last = 0; g_max = 0; g_set = false; g_on = t.on } in
    Hashtbl.replace t.gauges name g;
    g

let set_gauge g v =
  if g.g_on then begin
    g.g_last <- v;
    g.g_set <- true;
    if v > g.g_max then g.g_max <- v
  end

let gauge_value g = g.g_last
let gauge_max g = g.g_max

let span_stat t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
    let s = { s_count = 0; s_total = 0; s_max = 0 } in
    Hashtbl.replace t.spans name s;
    s

let span t name f =
  if not t.on then f ()
  else begin
    let st = span_stat t name in
    let t0 = Clock.ticks t.clock in
    Fun.protect
      ~finally:(fun () ->
        let dt = max 0 (Clock.ticks t.clock - t0) in
        st.s_count <- st.s_count + 1;
        st.s_total <- st.s_total + dt;
        if dt > st.s_max then st.s_max <- dt)
      f
  end

let event t ~scope name fields =
  if t.on then begin
    let e =
      {
        ev_seq = t.seq;
        ev_tick = Clock.ticks t.clock;
        ev_scope = scope;
        ev_name = name;
        ev_fields = fields;
      }
    in
    t.seq <- t.seq + 1;
    Ring.push t.sink e
  end

let events t = Ring.to_list t.sink
let events_dropped t = Ring.dropped t.sink

(* --- accumulate-then-merge (parallel fan-out) -------------------------- *)

(* A fork always gets a fresh counting clock: span durations under a
   counting clock are *relative* (the number of clock reads strictly
   inside the span), so a task recording into its own fork reproduces
   exactly the durations it would have recorded into the parent — the
   property the byte-identical [--jobs N] reports rest on. *)
let fork t =
  if not t.on then null
  else
    make ~on:true ~clock:(Clock.counting ())
      ~event_capacity:(Ring.capacity t.sink)

let merge_into ~into src =
  if into.on && src.on && into != src then begin
    Hashtbl.iter
      (fun name (c : counter) ->
        let dst = counter into name in
        dst.c_value <- dst.c_value + c.c_value)
      src.counters;
    Hashtbl.iter
      (fun name (g : gauge) ->
        if g.g_set then begin
          let dst = gauge into name in
          dst.g_last <- g.g_last;
          dst.g_set <- true;
          if g.g_max > dst.g_max then dst.g_max <- g.g_max
        end)
      src.gauges;
    Hashtbl.iter
      (fun name (s : span_stat) ->
        let dst = span_stat into name in
        dst.s_count <- dst.s_count + s.s_count;
        dst.s_total <- dst.s_total + s.s_total;
        if s.s_max > dst.s_max then dst.s_max <- s.s_max)
      src.spans;
    (* Events are re-stamped with the destination's sequence (matching
       what a sequential run would have assigned); ticks stay task-local.
       Sibling drops carry over so recorded+dropped is conserved. *)
    List.iter
      (fun e ->
        Ring.push into.sink { e with ev_seq = into.seq };
        into.seq <- into.seq + 1)
      (Ring.to_list src.sink);
    Ring.add_dropped into.sink (Ring.dropped src.sink)
  end

let field_to_string = function
  | F_int i -> string_of_int i
  | F_bool b -> string_of_bool b
  | F_str s -> s

let render_event e =
  let fields =
    String.concat ""
      (List.map
         (fun (k, v) -> Printf.sprintf " %s=%s" k (field_to_string v))
         e.ev_fields)
  in
  Printf.sprintf "%06d @%d %s/%s%s" e.ev_seq e.ev_tick e.ev_scope e.ev_name
    fields

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let report t =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, c) ->
      Buffer.add_string b (Printf.sprintf "counter %-34s %d\n" name c.c_value))
    (sorted_bindings t.counters);
  List.iter
    (fun (name, g) ->
      Buffer.add_string b
        (Printf.sprintf "gauge   %-34s last=%d max=%d\n" name g.g_last g.g_max))
    (sorted_bindings t.gauges);
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf "span    %-34s count=%d total=%d max=%d\n" name
           s.s_count s.s_total s.s_max))
    (sorted_bindings t.spans);
  Buffer.add_string b
    (Printf.sprintf "events  recorded=%d dropped=%d\n" (Ring.length t.sink)
       (Ring.dropped t.sink));
  Buffer.contents b
