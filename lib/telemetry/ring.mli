(** Bounded ring buffer: keeps the most recent [capacity] items.

    Pushing onto a full ring overwrites the oldest item and counts it as
    dropped, so long-running engines can stream events without unbounded
    memory growth.  A capacity of 0 drops everything (disabled sink). *)

type 'a t

val create : int -> 'a t
(** @raise Invalid_argument when capacity is negative. *)

val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Items overwritten (or refused, for capacity 0) so far. *)

val push : 'a t -> 'a -> unit

val add_dropped : 'a t -> int -> unit
(** Account for [n] items dropped elsewhere (e.g. in a forked sibling
    ring being merged in); leaves the retained items untouched. *)

val to_list : 'a t -> 'a list
(** Retained items, oldest first. *)

val clear : 'a t -> unit
(** Empty the buffer and reset the dropped count. *)
