type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable start : int;  (** index of the oldest retained item *)
  mutable len : int;
  mutable dropped : int;
}

let create cap =
  if cap < 0 then invalid_arg "Ring.create: negative capacity";
  { buf = Array.make (max cap 1) None; cap; start = 0; len = 0; dropped = 0 }

let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped

let push t x =
  if t.cap = 0 then t.dropped <- t.dropped + 1
  else if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end

let add_dropped t n = if n > 0 then t.dropped <- t.dropped + n

let to_list t =
  List.init t.len (fun i ->
      match t.buf.((t.start + i) mod t.cap) with
      | Some x -> x
      | None -> invalid_arg "Ring.to_list: corrupted buffer")

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
