(** The model container.

    A model owns every element, keyed by identifier, plus stereotype
    applications and diagrams.  The container is imperative (hash-indexed
    for O(1) lookup in large models) but preserves insertion order so
    that serialization and code generation are deterministic. *)

type element =
  | E_classifier of Classifier.t
  | E_association of Classifier.association
  | E_package of Pkg.t
  | E_state_machine of Smachine.t
  | E_activity of Activityg.t
  | E_interaction of Interaction.t
  | E_use_case of Usecase.t
  | E_component of Component.t
  | E_instance of Instance.t
  | E_link of Instance.link
  | E_deployment_node of Deployment.node
  | E_artifact of Deployment.artifact
  | E_deployment of Deployment.deployment
  | E_communication_path of Deployment.communication_path
  | E_profile of Profile.t
[@@deriving eq, show]

type t

val create : ?capacity:int -> string -> t
(** [create name] makes an empty model.  [capacity] pre-sizes the
    element index when the caller knows how many elements are coming
    (bulk loaders), avoiding rehash chains during construction. *)

val name : t -> string
val set_name : t -> string -> unit

val element_id : element -> Ident.t
val element_name : element -> string
val element_kind : element -> string
(** Metaclass-style name of the variant, e.g. ["Class"],
    ["StateMachine"]. *)

val add : t -> element -> unit
(** @raise Invalid_argument on a duplicate identifier.  A model that
    raised here is half-updated and must be discarded (every in-repo
    caller builds a fresh model and drops it on failure). *)

val replace : t -> element -> unit
(** Replace the element with the same identifier; adds if absent.
    Insertion order of a replaced element is preserved. *)

val remove : t -> Ident.t -> unit
val find : t -> Ident.t -> element option
val mem : t -> Ident.t -> bool
val elements : t -> element list
(** All elements in insertion order. *)

val size : t -> int
val iter : (element -> unit) -> t -> unit
val fold : ('a -> element -> 'a) -> 'a -> t -> 'a

val classifiers : t -> Classifier.t list
val components : t -> Component.t list
val state_machines : t -> Smachine.t list
val activities : t -> Activityg.t list
val packages : t -> Pkg.t list
val interactions : t -> Interaction.t list
val use_cases : t -> Usecase.t list
val profiles : t -> Profile.t list
val instances : t -> Instance.t list
val associations : t -> Classifier.association list

val find_classifier : t -> Ident.t -> Classifier.t option
val find_component : t -> Ident.t -> Component.t option
val find_state_machine : t -> Ident.t -> Smachine.t option
val find_activity : t -> Ident.t -> Activityg.t option

val classifier_named : t -> string -> Classifier.t option
val component_named : t -> string -> Component.t option

val add_application : t -> Profile.application -> unit
val applications : t -> Profile.application list
val applications_of : t -> Ident.t -> Profile.application list
(** Stereotype applications attached to the given element. *)

val has_stereotype : t -> Ident.t -> string -> bool
(** [has_stereotype m elt name]: is a stereotype called [name] (from any
    applied profile) applied to element [elt]? *)

val stereotype_named : t -> string -> (Profile.t * Profile.stereotype) option

val add_diagram : t -> Diagram.t -> unit
val diagrams : t -> Diagram.t list

val equal : t -> t -> bool
(** Deep structural equality: same name, same elements in the same
    order, same applications and diagrams. *)

val copy : t -> t

val generalization_parents : t -> Ident.t -> Ident.t list
(** Direct generalization targets of a classifier (empty for other
    elements). *)

val all_ancestors : t -> Ident.t -> Ident.Set.t
(** Transitive generalization closure; stops on cycles. *)

val feature_index : t -> (Ident.t, Profile.metaclass) Hashtbl.t
(** Metaclasses of every *nested* feature (attributes, operations,
    ports, parts, connectors, states, transitions, activity nodes) keyed
    by identifier.  Built by one model scan per call; top-level elements
    are not included. *)

val pp : Format.formatter -> t -> unit
