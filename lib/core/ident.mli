(** Element identifiers.

    Every model element carries a unique identifier, playing the role of
    the [xmi:id] attribute in XMI serializations.  Identifiers are opaque
    strings; [fresh] draws from a deterministic process-wide counter so
    that repeated runs produce identical models (important for the
    determinism experiments). *)

type t = string [@@deriving eq, ord, show]

val fresh : ?prefix:string -> unit -> t
(** [fresh ~prefix ()] returns a new identifier, unique within the
    process (domain-safe: the counter is atomic).  The default prefix
    is ["e"].  Identifier {e values} drawn concurrently from several
    domains depend on scheduling; deterministic pipelines allocate on
    one domain or keep fresh idents out of their output. *)

val reset_counter : unit -> unit
(** Reset the generator; only for tests and benches that need identical
    identifier streams. *)

val of_string : string -> t
(** Use an externally supplied identifier (e.g. from an XMI file). *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
