type element =
  | E_classifier of Classifier.t
  | E_association of Classifier.association
  | E_package of Pkg.t
  | E_state_machine of Smachine.t
  | E_activity of Activityg.t
  | E_interaction of Interaction.t
  | E_use_case of Usecase.t
  | E_component of Component.t
  | E_instance of Instance.t
  | E_link of Instance.link
  | E_deployment_node of Deployment.node
  | E_artifact of Deployment.artifact
  | E_deployment of Deployment.deployment
  | E_communication_path of Deployment.communication_path
  | E_profile of Profile.t
[@@deriving eq, show]

type t = {
  mutable model_name : string;
  mutable order : Ident.t list;  (** reverse insertion order *)
  index : (Ident.t, element) Hashtbl.t;
  mutable apps : Profile.application list;  (** reverse order *)
  mutable diags : Diagram.t list;  (** reverse order *)
}

let create ?(capacity = 64) name =
  { model_name = name; order = []; index = Hashtbl.create capacity;
    apps = []; diags = [] }

let name m = m.model_name
let set_name m n = m.model_name <- n

let element_id = function
  | E_classifier c -> c.Classifier.cl_id
  | E_association a -> a.Classifier.assoc_id
  | E_package p -> p.Pkg.pkg_id
  | E_state_machine sm -> sm.Smachine.sm_id
  | E_activity a -> a.Activityg.ac_id
  | E_interaction i -> i.Interaction.in_id
  | E_use_case u -> u.Usecase.uc_id
  | E_component c -> c.Component.cmp_id
  | E_instance i -> i.Instance.inst_id
  | E_link l -> l.Instance.link_id
  | E_deployment_node n -> n.Deployment.dn_id
  | E_artifact a -> a.Deployment.art_id
  | E_deployment d -> d.Deployment.dep_id
  | E_communication_path c -> c.Deployment.cpath_id
  | E_profile p -> p.Profile.prof_id

let element_name = function
  | E_classifier c -> c.Classifier.cl_name
  | E_association a -> a.Classifier.assoc_name
  | E_package p -> p.Pkg.pkg_name
  | E_state_machine sm -> sm.Smachine.sm_name
  | E_activity a -> a.Activityg.ac_name
  | E_interaction i -> i.Interaction.in_name
  | E_use_case u -> u.Usecase.uc_name
  | E_component c -> c.Component.cmp_name
  | E_instance i -> i.Instance.inst_name
  | E_link _ -> ""
  | E_deployment_node n -> n.Deployment.dn_name
  | E_artifact a -> a.Deployment.art_name
  | E_deployment _ -> ""
  | E_communication_path _ -> ""
  | E_profile p -> p.Profile.prof_name

let element_kind = function
  | E_classifier c -> (
    match c.Classifier.cl_kind with
    | Classifier.Class -> "Class"
    | Classifier.Interface -> "Interface"
    | Classifier.Data_type -> "DataType"
    | Classifier.Primitive_type -> "PrimitiveType"
    | Classifier.Enumeration _ -> "Enumeration"
    | Classifier.Signal -> "Signal"
    | Classifier.Actor_kind -> "Actor")
  | E_association _ -> "Association"
  | E_package _ -> "Package"
  | E_state_machine _ -> "StateMachine"
  | E_activity _ -> "Activity"
  | E_interaction _ -> "Interaction"
  | E_use_case _ -> "UseCase"
  | E_component _ -> "Component"
  | E_instance _ -> "InstanceSpecification"
  | E_link _ -> "Link"
  | E_deployment_node _ -> "Node"
  | E_artifact _ -> "Artifact"
  | E_deployment _ -> "Deployment"
  | E_communication_path _ -> "CommunicationPath"
  | E_profile _ -> "Profile"

let add m e =
  let id = element_id e in
  (* single probe instead of [mem] + [add]: [replace] hashes once, and
     an unchanged table size afterwards means the id was already bound.
     [add] sits on the bulk-load path, so the doubled hashing showed. *)
  let before = Hashtbl.length m.index in
  Hashtbl.replace m.index id e;
  if Hashtbl.length m.index = before then
    invalid_arg (Printf.sprintf "Model.add: duplicate identifier %s" id);
  m.order <- id :: m.order

let replace m e =
  let id = element_id e in
  if Hashtbl.mem m.index id then Hashtbl.replace m.index id e else add m e

let remove m id =
  if Hashtbl.mem m.index id then begin
    Hashtbl.remove m.index id;
    m.order <- List.filter (fun i -> not (Ident.equal i id)) m.order
  end

let find m id = Hashtbl.find_opt m.index id
let mem m id = Hashtbl.mem m.index id

let elements m =
  let collect acc id =
    match Hashtbl.find_opt m.index id with
    | Some e -> e :: acc
    | None -> acc
  in
  List.fold_left collect [] m.order

let size m = Hashtbl.length m.index
let iter f m = List.iter f (elements m)
let fold f init m = List.fold_left f init (elements m)

let project pick m = List.filter_map pick (elements m)

let classifiers m =
  project (function E_classifier c -> Some c | _e -> None) m

let components m =
  project (function E_component c -> Some c | _e -> None) m

let state_machines m =
  project (function E_state_machine s -> Some s | _e -> None) m

let activities m =
  project (function E_activity a -> Some a | _e -> None) m

let packages m = project (function E_package p -> Some p | _e -> None) m

let interactions m =
  project (function E_interaction i -> Some i | _e -> None) m

let use_cases m = project (function E_use_case u -> Some u | _e -> None) m
let profiles m = project (function E_profile p -> Some p | _e -> None) m
let instances m = project (function E_instance i -> Some i | _e -> None) m

let associations m =
  project (function E_association a -> Some a | _e -> None) m

let find_classifier m id =
  match find m id with
  | Some (E_classifier c) -> Some c
  | Some _ | None -> None

let find_component m id =
  match find m id with
  | Some (E_component c) -> Some c
  | Some _ | None -> None

let find_state_machine m id =
  match find m id with
  | Some (E_state_machine s) -> Some s
  | Some _ | None -> None

let find_activity m id =
  match find m id with
  | Some (E_activity a) -> Some a
  | Some _ | None -> None

let classifier_named m n =
  List.find_opt (fun c -> c.Classifier.cl_name = n) (classifiers m)

let component_named m n =
  List.find_opt (fun c -> c.Component.cmp_name = n) (components m)

let add_application m app = m.apps <- app :: m.apps
let applications m = List.rev m.apps

let applications_of m id =
  List.filter (fun a -> Ident.equal a.Profile.app_element id) (applications m)

let stereotype_named m n =
  let in_profile p =
    match Profile.find_stereotype p n with
    | Some s -> Some (p, s)
    | None -> None
  in
  List.find_map in_profile (profiles m)

let has_stereotype m elt n =
  match stereotype_named m n with
  | None -> false
  | Some (_, ster) ->
    List.exists
      (fun a ->
        Ident.equal a.Profile.app_element elt
        && Ident.equal a.Profile.app_stereotype ster.Profile.ster_id)
      m.apps

let add_diagram m d = m.diags <- d :: m.diags
let diagrams m = List.rev m.diags

let equal m1 m2 =
  m1.model_name = m2.model_name
  && List.equal equal_element (elements m1) (elements m2)
  && List.equal Profile.equal_application (applications m1) (applications m2)
  && List.equal Diagram.equal (diagrams m1) (diagrams m2)

let copy m =
  {
    model_name = m.model_name;
    order = m.order;
    index = Hashtbl.copy m.index;
    apps = m.apps;
    diags = m.diags;
  }

let generalization_parents m id =
  match find_classifier m id with
  | Some c -> c.Classifier.cl_generals
  | None -> []

let all_ancestors m id =
  let rec visit seen id =
    let parents = generalization_parents m id in
    let visit_parent seen p =
      if Ident.Set.mem p seen then seen
      else visit (Ident.Set.add p seen) p
    in
    List.fold_left visit_parent seen parents
  in
  visit Ident.Set.empty id

let feature_index m =
  let tbl = Hashtbl.create 64 in
  let add id mc = Hashtbl.replace tbl id mc in
  let scan = function
    | E_classifier c ->
      List.iter
        (fun (p : Classifier.property) ->
          add p.Classifier.prop_id Profile.M_property)
        c.Classifier.cl_attributes;
      List.iter
        (fun (o : Classifier.operation) ->
          add o.Classifier.op_id Profile.M_operation)
        c.Classifier.cl_operations
    | E_component c ->
      List.iter
        (fun (p : Component.port) -> add p.Component.port_id Profile.M_port)
        c.Component.cmp_ports;
      List.iter
        (fun (p : Component.part) ->
          add p.Component.part_id Profile.M_property)
        c.Component.cmp_parts;
      List.iter
        (fun (conn : Component.connector) ->
          add conn.Component.conn_id Profile.M_connector)
        c.Component.cmp_connectors
    | E_state_machine sm ->
      List.iter
        (fun v ->
          match v with
          | Smachine.State s -> add s.Smachine.st_id Profile.M_state
          | Smachine.Pseudo p -> add p.Smachine.ps_id Profile.M_state
          | Smachine.Final f -> add f.Smachine.fs_id Profile.M_state)
        (Smachine.all_vertices sm);
      List.iter
        (fun (tr : Smachine.transition) ->
          add tr.Smachine.tr_id Profile.M_transition)
        (Smachine.all_transitions sm)
    | E_activity a ->
      List.iter
        (fun n -> add (Activityg.node_id n) Profile.M_action)
        a.Activityg.ac_nodes;
      List.iter
        (fun (e : Activityg.edge) -> add e.Activityg.ed_id Profile.M_any)
        a.Activityg.ac_edges
    | E_association _ | E_package _ | E_interaction _ | E_use_case _
    | E_instance _ | E_link _ | E_deployment_node _ | E_artifact _
    | E_deployment _ | E_communication_path _ | E_profile _ ->
      ()
  in
  iter scan m;
  tbl

let pp fmt m =
  Format.fprintf fmt "@[<v 2>model %S (%d elements)" m.model_name (size m);
  let pp_elem e =
    Format.fprintf fmt "@,%s %s (%s)" (element_kind e) (element_name e)
      (Ident.to_string (element_id e))
  in
  iter pp_elem m;
  Format.fprintf fmt "@]"
