type t = string [@@deriving eq, ord, show]

(* Atomic so parallel tasks (e.g. lint sharded by model, which runs
   [Mda.Generate] per task) allocate distinct idents without a race.
   Allocation *order* across domains is unspecified, so anything that
   must be byte-deterministic either keeps ident allocation on one
   domain or never lets fresh idents reach its output. *)
let counter = Atomic.make 0

let fresh ?(prefix = "e") () =
  Printf.sprintf "%s%06d" prefix (Atomic.fetch_and_add counter 1 + 1)

let reset_counter () = Atomic.set counter 0
let of_string s = s
let to_string t = t

module Set = Set.Make (String)
module Map = Map.Make (String)
