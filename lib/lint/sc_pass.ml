open Uml

(* --- per-machine indexes ---------------------------------------------- *)

type index = {
  vertices : (Ident.t, Smachine.vertex) Hashtbl.t;
  parent_state : (Ident.t, Ident.t) Hashtbl.t;
      (* vertex -> enclosing composite state *)
  outgoing : (Ident.t, Smachine.transition list) Hashtbl.t;
}

let build_index (sm : Smachine.t) =
  let idx =
    {
      vertices = Hashtbl.create 64;
      parent_state = Hashtbl.create 64;
      outgoing = Hashtbl.create 64;
    }
  in
  let rec add_region ~parent (r : Smachine.region) =
    List.iter
      (fun v ->
        let id = Smachine.vertex_id v in
        Hashtbl.replace idx.vertices id v;
        (match parent with
         | Some p -> Hashtbl.replace idx.parent_state id p
         | None -> ());
        match v with
        | Smachine.State st ->
          List.iter
            (add_region ~parent:(Some st.Smachine.st_id))
            st.Smachine.st_regions
        | Smachine.Pseudo _ | Smachine.Final _ -> ())
      r.Smachine.rg_vertices
  in
  List.iter (add_region ~parent:None) sm.Smachine.sm_regions;
  List.iter
    (fun (t : Smachine.transition) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt idx.outgoing t.Smachine.tr_source)
      in
      Hashtbl.replace idx.outgoing t.Smachine.tr_source (prev @ [ t ]))
    (Smachine.all_transitions sm);
  idx

let region_initials (r : Smachine.region) =
  List.filter_map
    (fun v ->
      match v with
      | Smachine.Pseudo p when p.Smachine.ps_kind = Smachine.Initial ->
        Some p.Smachine.ps_id
      | Smachine.Pseudo _ | Smachine.State _ | Smachine.Final _ -> None)
    r.Smachine.rg_vertices

(* --- SC-01: reachability --------------------------------------------- *)

let check_reachability idx (sm : Smachine.t) acc =
  let seeds = List.concat_map region_initials sm.Smachine.sm_regions in
  if seeds = [] then acc (* entry is external; nothing to anchor on *)
  else begin
    let marked = Hashtbl.create 64 in
    let rec mark id =
      if not (Hashtbl.mem marked id) then begin
        Hashtbl.replace marked id ();
        (* a marked vertex implies its enclosing states are active *)
        (match Hashtbl.find_opt idx.parent_state id with
         | Some p -> mark p
         | None -> ());
        (* default entry of a composite state enters its region initials *)
        (match Hashtbl.find_opt idx.vertices id with
         | Some (Smachine.State st) ->
           List.iter
             (fun r -> List.iter mark (region_initials r))
             st.Smachine.st_regions
         | Some (Smachine.Pseudo _) | Some (Smachine.Final _) | None -> ());
        List.iter
          (fun (t : Smachine.transition) -> mark t.Smachine.tr_target)
          (Option.value ~default:[] (Hashtbl.find_opt idx.outgoing id))
      end
    in
    List.iter mark seeds;
    (* audited: this fold emits diagnostics in hash order, but every
       caller goes through [Check.apply], whose [Model_info.sort] is a
       total order on (rule, element, message) — table internals never
       reach user-visible ordering *)
    Hashtbl.fold
      (fun id v acc ->
        match v with
        | Smachine.State st when not (Hashtbl.mem marked id) ->
          Model_info.diagf ~code:"SC-01" ~element:id
            "state %s is unreachable from the initial configuration of %s"
            st.Smachine.st_name sm.Smachine.sm_name
          :: acc
        | Smachine.State _ | Smachine.Pseudo _ | Smachine.Final _ -> acc)
      idx.vertices acc
  end

(* --- SC-02: transient pseudostates must reach a stable vertex -------- *)

let check_stabilization idx (sm : Smachine.t) acc =
  (* Memoized: can this vertex, crossing only pseudostates, reach a
     state or final?  History restores a state and terminate halts the
     machine; both count as settled. *)
  let memo = Hashtbl.create 16 in
  let rec stabilizes visited id =
    match Hashtbl.find_opt memo id with
    | Some b -> b
    | None ->
      if Ident.Set.mem id visited then false
      else
        let visited = Ident.Set.add id visited in
        let b =
          match Hashtbl.find_opt idx.vertices id with
          | Some (Smachine.State _) | Some (Smachine.Final _) | None -> true
          | Some (Smachine.Pseudo p) -> (
            match p.Smachine.ps_kind with
            | Smachine.Deep_history | Smachine.Shallow_history
            | Smachine.Terminate ->
              true
            | Smachine.Initial | Smachine.Join | Smachine.Fork
            | Smachine.Junction | Smachine.Choice | Smachine.Entry_point
            | Smachine.Exit_point ->
              List.exists
                (fun (t : Smachine.transition) ->
                  stabilizes visited t.Smachine.tr_target)
                (Option.value ~default:[]
                   (Hashtbl.find_opt idx.outgoing id)))
        in
        Hashtbl.replace memo id b;
        b
  in
  (* audited: hash-order fold, neutralized by [Model_info.sort] in
     [Check.apply] (see the SC-01 pass) *)
  Hashtbl.fold
    (fun id v acc ->
      match v with
      | Smachine.Pseudo p
        when Hashtbl.find_opt idx.outgoing id <> None
             && not (stabilizes Ident.Set.empty id) ->
        Model_info.diagf ~code:"SC-02" ~element:id
          "pseudostate %s of %s cannot reach a stable state (paths stay \
           inside pseudostates)"
          (if p.Smachine.ps_name = "" then Ident.to_string id
           else p.Smachine.ps_name)
          sm.Smachine.sm_name
        :: acc
      | Smachine.Pseudo _ | Smachine.State _ | Smachine.Final _ -> acc)
    idx.vertices acc

(* --- SC-03: nondeterministic transitions ------------------------------ *)

let effective_triggers (t : Smachine.transition) =
  match t.Smachine.tr_triggers with
  | [] -> [ Smachine.Completion ]
  | l -> l

let triggers_overlap a b =
  Smachine.equal_trigger a b
  ||
  match a, b with
  | Smachine.Any_trigger, Smachine.Signal_trigger _
  | Smachine.Signal_trigger _, Smachine.Any_trigger ->
    true
  | ( ( Smachine.Signal_trigger _ | Smachine.Time_trigger _
      | Smachine.Any_trigger | Smachine.Completion ),
      ( Smachine.Signal_trigger _ | Smachine.Time_trigger _
      | Smachine.Any_trigger | Smachine.Completion ) ) ->
    false

(* Conservative: distinct guard texts are assumed disjoint (they usually
   partition a value); a missing guard overlaps everything. *)
let guards_overlap g1 g2 =
  match g1, g2 with
  | None, _ | _, None -> true
  | Some a, Some b -> String.equal a b

let trigger_name = function
  | Smachine.Signal_trigger s -> s
  | Smachine.Time_trigger n -> Printf.sprintf "after(%d)" n
  | Smachine.Any_trigger -> "any"
  | Smachine.Completion -> "completion"

let check_nondeterminism idx (_sm : Smachine.t) acc =
  (* audited: hash-order fold, neutralized by [Model_info.sort] in
     [Check.apply] (see the SC-01 pass) *)
  Hashtbl.fold
    (fun id v acc ->
      match v with
      | Smachine.Pseudo _ | Smachine.Final _ -> acc
      | Smachine.State st ->
        let ts =
          Option.value ~default:[] (Hashtbl.find_opt idx.outgoing id)
        in
        let rec pairs acc = function
          | [] -> acc
          | (t1 : Smachine.transition) :: rest ->
            let acc =
              List.fold_left
                (fun acc (t2 : Smachine.transition) ->
                  let shared =
                    List.find_opt
                      (fun a ->
                        List.exists (triggers_overlap a)
                          (effective_triggers t2))
                      (effective_triggers t1)
                  in
                  match shared with
                  | Some trig
                    when guards_overlap t1.Smachine.tr_guard
                           t2.Smachine.tr_guard ->
                    Model_info.diagf ~code:"SC-03" ~element:id
                      "transitions %s and %s from state %s overlap on \
                       trigger %s with non-exclusive guards"
                      t1.Smachine.tr_id t2.Smachine.tr_id st.Smachine.st_name
                      (trigger_name trig)
                    :: acc
                  | Some _ | None -> acc)
                acc rest
            in
            pairs acc rest
        in
        pairs acc ts)
    idx.vertices acc

(* --- SC-04: regions with states but no initial ------------------------ *)

let check_region_initials (sm : Smachine.t) acc =
  List.fold_left
    (fun acc (r : Smachine.region) ->
      let has_state =
        List.exists
          (fun v ->
            match v with
            | Smachine.State _ -> true
            | Smachine.Pseudo _ | Smachine.Final _ -> false)
          r.Smachine.rg_vertices
      in
      if has_state && region_initials r = [] then
        Model_info.diagf ~code:"SC-04" ~element:r.Smachine.rg_id
          "region %s of %s has states but no initial pseudostate; default \
           entry is undefined"
          r.Smachine.rg_name sm.Smachine.sm_name
        :: acc
      else acc)
    acc
    (Smachine.all_regions sm)

let check m =
  List.fold_left
    (fun acc sm ->
      let idx = build_index sm in
      check_reachability idx sm acc
      |> (fun acc -> check_stabilization idx sm acc)
      |> (fun acc -> check_nondeterminism idx sm acc)
      |> check_region_initials sm)
    []
    (Model.state_machines m)
