(** The activity lint pass: token-flow analysis through the
    Activity→Petri translation ({!Activity.Translate}) and the [petri]
    analyses.

    Rules:
    - [ACT-01] (error): the activity can reach a stuck marking — tokens
      remain but no node can fire and no activity-final was reached
      (e.g. a join whose branches cannot all complete);
    - [ACT-02] (warning): the token flow is unbounded (tokens accumulate
      without limit, per Karp–Miller coverability);
    - [ACT-03] (warning): a node can never fire in any execution.

    Activities whose edges reference unknown nodes are skipped here —
    reference resolution is {!Uml.Wfr}'s job ([AC-xx]).  Verdicts
    requiring a complete state space ([ACT-01], [ACT-03]) are suppressed
    when exploration hits the state limit. *)

val check : Uml.Model.t -> Uml.Wfr.diagnostic list
