(** The ASL lint pass: parse and typecheck every embedded behavior
    string in the model against its owning classifier.

    Covered behaviors: transition guards and effects, state
    entry/exit/do actions, operation bodies, activity action bodies, and
    activity edge guards.

    Rules: [ASL-01] (parse failure), [ASL-02] (type error, including
    unknown identifiers and non-Boolean guards), [ASL-03] (guard with a
    side effect: [new], [print], or a non-query operation call).

    Guards and statechart behaviors are checked in the environment the
    statechart engine provides ({!Model_info.guard_env}); activity
    action bodies are checked in node order with top-level variable
    bindings threaded from earlier actions, matching the engine's shared
    interpreter store. *)

val check : Uml.Model.t -> Uml.Wfr.diagnostic list
