(** Rendering of diagnostic reports, shared by [socuml lint] and
    [socuml validate].

    Both renderers are deterministic: identical diagnostics produce
    byte-identical output. *)

val to_text : ?model:string -> Uml.Wfr.diagnostic list -> string
(** One {!Uml.Wfr.to_string} line per diagnostic, then a summary line
    ["N diagnostics (E errors, W warnings)"].  Ends with a newline. *)

val rules_to_text : unit -> string
(** The registered rule table ([socuml rules]): one
    ["CODE  severity  summary"] line per rule in {!Rules.all} order,
    then a count line.  Sourced from the registry, so it cannot drift
    from the rules the passes enforce. *)

val rules_to_json : unit -> string
(** The same table as a JSON object [{rules: [{code, severity,
    summary}], count}]. *)

val to_json : ?model:string -> Uml.Wfr.diagnostic list -> string
(** A JSON object with [model] (when given), [errors], [warnings] and a
    [diagnostics] array of [{severity, rule, element, message}].  Hand
    rolled — the toolchain ships no JSON library — with full string
    escaping.  Ends with a newline. *)
