(** Rendering of diagnostic reports, shared by [socuml lint] and
    [socuml validate].

    Both renderers are deterministic: identical diagnostics produce
    byte-identical output. *)

val to_text : ?model:string -> Uml.Wfr.diagnostic list -> string
(** One {!Uml.Wfr.to_string} line per diagnostic, then a summary line
    ["N diagnostics (E errors, W warnings)"].  Ends with a newline. *)

val to_json : ?model:string -> Uml.Wfr.diagnostic list -> string
(** A JSON object with [model] (when given), [errors], [warnings] and a
    [diagnostics] array of [{severity, rule, element, message}].  Hand
    rolled — the toolchain ships no JSON library — with full string
    escaping.  Ends with a newline. *)
