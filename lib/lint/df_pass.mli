(** The dataflow passes ({!Dataflow.Asl_flow}, {!Dataflow.Event_flow},
    {!Dataflow.Netlist_flow}) lifted into lint diagnostics (DF-01..06,
    HDL-12, HDL-13). *)

val check_model :
  ?metrics:Telemetry.Metrics.t -> Uml.Model.t -> Uml.Wfr.diagnostic list
(** ASL abstract interpretation + event-flow matching. *)

val check_design :
  ?metrics:Telemetry.Metrics.t ->
  Hdl.Module_.design ->
  Uml.Wfr.diagnostic list
(** Netlist clock-domain / reset analysis. *)
