open Uml

let state_limit = 4096

let resolves (ac : Activityg.t) =
  List.for_all
    (fun (e : Activityg.edge) ->
      Activityg.find_node ac e.Activityg.ed_source <> None
      && Activityg.find_node ac e.Activityg.ed_target <> None)
    ac.Activityg.ac_edges

(* The net transitions realizing one activity node (see the naming
   scheme in Activity.Translate). *)
let transitions_of_node (ac : Activityg.t) node =
  let id = Activityg.node_id node in
  match node with
  | Activityg.Decision_node _ ->
    List.map
      (fun (e : Activityg.edge) ->
        Activity.Translate.decision_branch id e.Activityg.ed_id)
      (Activityg.outgoing ac id)
  | Activityg.Merge_node _ ->
    List.map
      (fun (e : Activityg.edge) ->
        Activity.Translate.merge_branch id e.Activityg.ed_id)
      (Activityg.incoming ac id)
  | Activityg.Action _ | Activityg.Call_behavior _ | Activityg.Send_signal _
  | Activityg.Accept_event _ | Activityg.Object_node _
  | Activityg.Initial_node _ | Activityg.Activity_final _
  | Activityg.Flow_final _ | Activityg.Fork_node _ | Activityg.Join_node _ ->
    [ Activity.Translate.transition_of_node id ]

let check_activity (ac : Activityg.t) acc =
  let element = ac.Activityg.ac_id in
  match Activity.Translate.to_petri ac with
  | exception Invalid_argument _ ->
    (* structurally broken beyond edge resolution; Wfr territory *)
    acc
  | net, m0 ->
    (* one state-space exploration per activity: ACT-01 (deadlocks) and
       ACT-03 (dead transitions) both read off the same summary *)
    let summary = Petri.Analysis.explore ~limit:state_limit net m0 in
    let reach = summary.Petri.Analysis.sum_reach in
    let acc =
      if reach.Petri.Analysis.truncated then acc
      else
        let stuck =
          List.filter
            (fun mk ->
              Petri.Marking.total mk > 0
              && Petri.Marking.tokens mk Activity.Translate.done_place = 0)
            reach.Petri.Analysis.deadlocks
        in
        if stuck = [] then acc
        else
          Model_info.diagf ~code:"ACT-01" ~element
            "activity %s can deadlock: %d reachable marking%s leave%s \
             tokens stuck without reaching a final node"
            ac.Activityg.ac_name (List.length stuck)
            (if List.length stuck = 1 then "" else "s")
            (if List.length stuck = 1 then "s" else "")
          :: acc
    in
    let acc =
      match Petri.Coverability.is_bounded ~limit:state_limit net m0 with
      | Some false ->
        Model_info.diagf ~code:"ACT-02" ~element
          "activity %s has unbounded token flow (tokens can accumulate \
           without limit)"
          ac.Activityg.ac_name
        :: acc
      | Some true | None -> acc
    in
    if reach.Petri.Analysis.truncated then acc
    else
      let dead = summary.Petri.Analysis.sum_dead_transitions in
      List.fold_left
        (fun acc node ->
          let tns = transitions_of_node ac node in
          if tns <> [] && List.for_all (fun tn -> List.mem tn dead) tns then
            Model_info.diagf ~code:"ACT-03"
              ~element:(Activityg.node_id node)
              "node %s of activity %s can never fire"
              (Activityg.node_name node) ac.Activityg.ac_name
            :: acc
          else acc)
        acc ac.Activityg.ac_nodes

let check m =
  List.fold_left
    (fun acc ac -> if resolves ac then check_activity ac acc else acc)
    []
    (Model.activities m)
