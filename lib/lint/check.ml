let apply selection diags =
  Model_info.sort
    (List.filter
       (fun (d : Uml.Wfr.diagnostic) ->
         Rules.enabled selection d.Uml.Wfr.diag_rule)
       diags)

let model_diags ?metrics m =
  Asl_pass.check m @ Sc_pass.check m @ Act_pass.check m @ Comp_pass.check m
  @ Df_pass.check_model ?metrics m

let check_model ?(selection = Rules.default_selection) ?metrics m =
  apply selection (model_diags ?metrics m)

let check_design ?(selection = Rules.default_selection) ?metrics design =
  apply selection
    (Hdl_pass.check_design design @ Df_pass.check_design ?metrics design)

let check ?(selection = Rules.default_selection) ?metrics ?design m =
  let hdl =
    match design with
    | None -> []
    | Some d -> Hdl_pass.check_design d @ Df_pass.check_design ?metrics d
  in
  apply selection (model_diags ?metrics m @ hdl)
