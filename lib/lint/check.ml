let apply selection diags =
  Model_info.sort
    (List.filter
       (fun (d : Uml.Wfr.diagnostic) ->
         Rules.enabled selection d.Uml.Wfr.diag_rule)
       diags)

let model_diags m =
  Asl_pass.check m @ Sc_pass.check m @ Act_pass.check m @ Comp_pass.check m

let check_model ?(selection = Rules.default_selection) m =
  apply selection (model_diags m)

let check_design ?(selection = Rules.default_selection) design =
  apply selection (Hdl_pass.check_design design)

let check ?(selection = Rules.default_selection) ?design m =
  let hdl =
    match design with
    | None -> []
    | Some d -> Hdl_pass.check_design d
  in
  apply selection (model_diags m @ hdl)
