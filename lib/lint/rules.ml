(* The registry of whole-model lint rules.  Codes are stable: new rules
   get fresh numbers, retired rules leave gaps. *)

type rule = {
  rule_code : string;
  rule_severity : Uml.Wfr.severity;
  rule_summary : string;
}

let r code sev summary =
  { rule_code = code; rule_severity = sev; rule_summary = summary }

let registered =
  [
    (* ASL pass: embedded behavior strings. *)
    r "ASL-01" Uml.Wfr.Error "behavior string fails to parse";
    r "ASL-02" Uml.Wfr.Error "behavior string fails to typecheck";
    r "ASL-03" Uml.Wfr.Warning "transition guard has side effects";
    (* SC pass: statechart behavioral topology. *)
    r "SC-01" Uml.Wfr.Warning "state unreachable from the initial configuration";
    r "SC-02" Uml.Wfr.Error "pseudostate cannot reach a stable configuration";
    r "SC-03" Uml.Wfr.Warning
      "nondeterministic transitions (same trigger, overlapping guards)";
    r "SC-04" Uml.Wfr.Warning "composite region has states but no initial";
    (* ACT pass: activity token flow via the Petri translation. *)
    r "ACT-01" Uml.Wfr.Error "activity can deadlock before reaching a final";
    r "ACT-02" Uml.Wfr.Warning "activity token flow is unbounded";
    r "ACT-03" Uml.Wfr.Warning "activity node can never fire";
    (* COMP pass: component wiring. *)
    r "COMP-01" Uml.Wfr.Warning "required port of a part is unconnected";
    r "COMP-02" Uml.Wfr.Error "assembly connector interfaces do not match";
    r "COMP-03" Uml.Wfr.Warning "delegation connector interfaces do not match";
    (* HDL pass: netlist diagnostics lifted from Hdl.Check. *)
    r "HDL-01" Uml.Wfr.Error "duplicate port or signal declaration";
    r "HDL-02" Uml.Wfr.Error "expression does not typecheck";
    r "HDL-03" Uml.Wfr.Error "assignment to an unknown or read-only target";
    r "HDL-04" Uml.Wfr.Error "width or case-shape mismatch";
    r "HDL-05" Uml.Wfr.Error "signal driven from multiple processes";
    r "HDL-06" Uml.Wfr.Error "combinational loop";
    r "HDL-07" Uml.Wfr.Error "bad clock or reset signal";
    r "HDL-08" Uml.Wfr.Error "instance wiring error";
    r "HDL-09" Uml.Wfr.Error "design top module missing";
    r "HDL-10" Uml.Wfr.Error "signal read or required but never driven";
    r "HDL-11" Uml.Wfr.Warning "signal neither read nor driven";
    (* Dataflow tier (lib/dataflow): abstract interpretation of ASL,
       netlist clock/reset analysis, cross-layer event flow. *)
    r "DF-01" Uml.Wfr.Warning "variable may be read before initialization";
    r "DF-02" Uml.Wfr.Warning "assigned value is never read (dead store)";
    r "DF-03" Uml.Wfr.Warning
      "statement unreachable under constant-folded conditions";
    r "DF-04" Uml.Wfr.Warning "guard is provably always true or always false";
    r "DF-05" Uml.Wfr.Warning "event is emitted but never consumed";
    r "DF-06" Uml.Wfr.Warning "trigger is never emitted by any behavior";
    r "HDL-12" Uml.Wfr.Error "clock-domain crossing without a synchronizer";
    r "HDL-13" Uml.Wfr.Warning
      "unreset register drives an output before the first clock edge";
  ]

let all =
  List.sort (fun a b -> compare a.rule_code b.rule_code) registered

let find code = List.find_opt (fun ru -> ru.rule_code = code) all

type selection = {
  sel_only : string list option;
  sel_disabled : string list;
}

let default_selection = { sel_only = None; sel_disabled = [] }

let selection_of_strings ?only ?(disabled = []) () =
  { sel_only = only; sel_disabled = disabled }

(* "ASL" matches "ASL-01"; "ASL-01" matches only itself. *)
let selector_matches selector code =
  selector = code
  ||
  let n = String.length selector in
  String.length code > n
  && String.sub code 0 n = selector
  && code.[n] = '-'

let enabled sel code =
  let allowed =
    match sel.sel_only with
    | None -> true
    | Some l -> List.exists (fun s -> selector_matches s code) l
  in
  allowed && not (List.exists (fun s -> selector_matches s code) sel.sel_disabled)

let unknown_selectors sel =
  let selectors = (match sel.sel_only with None -> [] | Some l -> l) @ sel.sel_disabled in
  List.filter
    (fun s -> not (List.exists (fun ru -> selector_matches s ru.rule_code) all))
    selectors
