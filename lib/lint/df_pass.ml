(* Lift dataflow findings into lint diagnostics: the registry owns the
   severity, the dataflow library owns the analysis. *)

let lift (f : Dataflow.Finding.t) =
  match f.Dataflow.Finding.f_element with
  | Some element ->
    Model_info.diag ~code:f.Dataflow.Finding.f_code ~element
      f.Dataflow.Finding.f_message
  | None ->
    Model_info.diag ~code:f.Dataflow.Finding.f_code
      f.Dataflow.Finding.f_message

let check_model ?metrics m =
  List.map lift
    (Dataflow.Asl_flow.check ?metrics m @ Dataflow.Event_flow.check ?metrics m)

let check_design ?metrics design =
  List.map lift (Dataflow.Netlist_flow.check ?metrics design)
