(** The statechart lint pass: behavioral topology of state machines,
    complementing the local well-formedness rules ([SM-xx]) in
    {!Uml.Wfr}.

    Rules:
    - [SC-01] (warning): a state is unreachable from the machine's
      initial configuration (skipped when the machine has no top-level
      initial pseudostate);
    - [SC-02] (error): a transient pseudostate has outgoing transitions
      but none of its paths through pseudostates reaches a state or
      final (e.g. a junction cycle);
    - [SC-03] (warning): two transitions leaving the same state overlap
      (a shared trigger, with guards absent or identical) — the choice
      between them is nondeterministic;
    - [SC-04] (warning): a region owns states but no initial
      pseudostate, so default entry is undefined. *)

val check : Uml.Model.t -> Uml.Wfr.diagnostic list
