(** The lint driver: run every pass over a model (and optionally a
    generated HDL design), filter by rule selection, and return one
    deterministically ordered report.

    Diagnostics reuse the {!Uml.Wfr.diagnostic} shape, so lint output
    composes with well-formedness output in the CLI.

    [metrics] (default {!Telemetry.Metrics.null}) receives the
    dataflow tier's per-pass counters ([dataflow.asl.*],
    [dataflow.events.*], [dataflow.netlist.*]). *)

val check_model :
  ?selection:Rules.selection ->
  ?metrics:Telemetry.Metrics.t ->
  Uml.Model.t ->
  Uml.Wfr.diagnostic list
(** ASL, statechart, activity, component and model-level dataflow
    passes over the model.  Sorted by (rule, element, message). *)

val check_design :
  ?selection:Rules.selection ->
  ?metrics:Telemetry.Metrics.t ->
  Hdl.Module_.design ->
  Uml.Wfr.diagnostic list
(** HDL + netlist dataflow passes alone, over an already-generated
    design. *)

val check :
  ?selection:Rules.selection ->
  ?metrics:Telemetry.Metrics.t ->
  ?design:Hdl.Module_.design ->
  Uml.Model.t ->
  Uml.Wfr.diagnostic list
(** Model passes plus, when [design] is given, the HDL and netlist
    dataflow passes.  The caller derives the design (e.g.
    {!Mda.Generate.hw_design}); [lint] itself does not depend on the
    generators. *)
