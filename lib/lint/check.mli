(** The lint driver: run every pass over a model (and optionally a
    generated HDL design), filter by rule selection, and return one
    deterministically ordered report.

    Diagnostics reuse the {!Uml.Wfr.diagnostic} shape, so lint output
    composes with well-formedness output in the CLI. *)

val check_model :
  ?selection:Rules.selection -> Uml.Model.t -> Uml.Wfr.diagnostic list
(** ASL, statechart, activity and component passes over the model.
    Sorted by (rule, element, message). *)

val check_design :
  ?selection:Rules.selection -> Hdl.Module_.design -> Uml.Wfr.diagnostic list
(** HDL pass alone, over an already-generated netlist. *)

val check :
  ?selection:Rules.selection ->
  ?design:Hdl.Module_.design ->
  Uml.Model.t ->
  Uml.Wfr.diagnostic list
(** Model passes plus, when [design] is given, the HDL pass.  The
    caller derives the design (e.g. {!Mda.Generate.hw_design}); [lint]
    itself does not depend on the generators. *)
