(** The HDL lint pass: lifts {!Hdl.Check} netlist diagnostics
    ([HDL-01] … [HDL-11]) into the model-level diagnostic shape.

    The [hdl] library has no UML dependency, so HDL diagnostics carry no
    element identifier; signal and module names live in the message. *)

val lift : Hdl.Check.diagnostic -> Uml.Wfr.diagnostic

val check_design : Hdl.Module_.design -> Uml.Wfr.diagnostic list
