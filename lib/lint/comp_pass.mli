(** The component lint pass: wiring of composite structure, beyond the
    reference-resolution rules ([CO-xx]) in {!Uml.Wfr}.

    Rules:
    - [COMP-01] (warning): a port of a part with required interfaces has
      no connector attached inside the containing component;
    - [COMP-02] (error): an assembly connector joins two ports with no
      matching interface (nothing one end requires is provided by the
      other);
    - [COMP-03] (warning): a delegation connector joins an outer port
      and an inner port with no shared provided or required interface.

    Ends that do not resolve (unknown part, port, or part type) are
    skipped here; {!Uml.Wfr} reports them. *)

val check : Uml.Model.t -> Uml.Wfr.diagnostic list
