open Uml

(* Resolve a connector end inside [cmp]: the port record, plus the part
   (None for the containing component itself).  [None] overall when the
   reference chain is broken (Wfr reports that). *)
let resolve_end m (cmp : Component.t) (e : Component.connector_end) =
  match e.Component.cend_part with
  | None ->
    Option.map
      (fun port -> (None, port))
      (List.find_opt
         (fun (p : Component.port) ->
           Ident.equal p.Component.port_id e.Component.cend_port)
         cmp.Component.cmp_ports)
  | Some pid -> (
    match
      List.find_opt
        (fun (p : Component.part) -> Ident.equal p.Component.part_id pid)
        cmp.Component.cmp_parts
    with
    | None -> None
    | Some part -> (
      match Model.find_component m part.Component.part_type with
      | None -> None (* class-typed part: no port inventory to check *)
      | Some inner ->
        Option.map
          (fun port -> (Some part, port))
          (List.find_opt
             (fun (p : Component.port) ->
               Ident.equal p.Component.port_id e.Component.cend_port)
             inner.Component.cmp_ports)))

let intersects a b = List.exists (fun x -> List.exists (Ident.equal x) b) a

(* COMP-01: every required port of every part should be wired. *)
let check_required_ports m (cmp : Component.t) acc =
  let connected part_id port_id =
    List.exists
      (fun (c : Component.connector) ->
        List.exists
          (fun (e : Component.connector_end) ->
            e.Component.cend_part = Some part_id
            && Ident.equal e.Component.cend_port port_id)
          c.Component.conn_ends)
      cmp.Component.cmp_connectors
  in
  List.fold_left
    (fun acc (part : Component.part) ->
      match Model.find_component m part.Component.part_type with
      | None -> acc
      | Some inner ->
        List.fold_left
          (fun acc (port : Component.port) ->
            if
              port.Component.port_required <> []
              && not (connected part.Component.part_id port.Component.port_id)
            then
              Model_info.diagf ~code:"COMP-01"
                ~element:part.Component.part_id
                "required port %s of part %s in component %s is not \
                 connected"
                port.Component.port_name part.Component.part_name
                cmp.Component.cmp_name
              :: acc
            else acc)
          acc inner.Component.cmp_ports)
    acc cmp.Component.cmp_parts

let check_connectors m (cmp : Component.t) acc =
  List.fold_left
    (fun acc (conn : Component.connector) ->
      match conn.Component.conn_ends with
      | [ e1; e2 ] -> (
        match resolve_end m cmp e1, resolve_end m cmp e2 with
        | Some (_, p1), Some (_, p2) -> (
          let prov1 = p1.Component.port_provided
          and req1 = p1.Component.port_required
          and prov2 = p2.Component.port_provided
          and req2 = p2.Component.port_required in
          match conn.Component.conn_kind with
          | Component.Assembly ->
            (* one side must provide what the other requires *)
            if
              (prov1 @ req1 <> [] || prov2 @ req2 <> [])
              && (not (intersects req1 prov2))
              && not (intersects req2 prov1)
            then
              Model_info.diagf ~code:"COMP-02"
                ~element:conn.Component.conn_id
                "assembly connector %s in component %s joins ports %s and \
                 %s with no matching interface"
                conn.Component.conn_name cmp.Component.cmp_name
                p1.Component.port_name p2.Component.port_name
              :: acc
            else acc
          | Component.Delegation ->
            (* outer and inner port should relay the same contract *)
            if
              (prov1 @ req1 <> [] || prov2 @ req2 <> [])
              && (not (intersects prov1 prov2))
              && not (intersects req1 req2)
            then
              Model_info.diagf ~code:"COMP-03"
                ~element:conn.Component.conn_id
                "delegation connector %s in component %s joins ports %s \
                 and %s with no shared interface"
                conn.Component.conn_name cmp.Component.cmp_name
                p1.Component.port_name p2.Component.port_name
              :: acc
            else acc)
        | None, _ | _, None -> acc)
      | _other_arity -> acc (* CO-07 *))
    acc cmp.Component.cmp_connectors

let check m =
  List.fold_left
    (fun acc cmp -> check_required_ports m cmp acc |> check_connectors m cmp)
    []
    (Model.components m)
