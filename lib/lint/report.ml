open Uml

let summary_line diags =
  Printf.sprintf "%d diagnostics (%d errors, %d warnings)"
    (List.length diags)
    (List.length (Wfr.errors diags))
    (List.length (Wfr.warnings diags))

let to_text ?model diags =
  let buf = Buffer.create 256 in
  (match model with
   | Some name -> Buffer.add_string buf (Printf.sprintf "lint: %s\n" name)
   | None -> ());
  List.iter
    (fun d ->
      Buffer.add_string buf (Wfr.to_string d);
      Buffer.add_char buf '\n')
    diags;
  Buffer.add_string buf (summary_line diags);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_diag (d : Wfr.diagnostic) =
  let fields =
    [
      ("severity",
       json_string
         (match d.Wfr.diag_severity with
          | Wfr.Error -> "error"
          | Wfr.Warning -> "warning"));
      ("rule", json_string d.Wfr.diag_rule);
    ]
    @ (match d.Wfr.diag_element with
       | Some id -> [ ("element", json_string (Ident.to_string id)) ]
       | None -> [])
    @ [ ("message", json_string d.Wfr.diag_message) ]
  in
  "    {"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"

(* --- rule table (socuml rules) ---------------------------------------- *)

let severity_name s =
  match s with
  | Wfr.Error -> "error"
  | Wfr.Warning -> "warning"

let rules_to_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Rules.rule) ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s %-8s %s\n" r.Rules.rule_code
           (severity_name r.Rules.rule_severity)
           r.Rules.rule_summary))
    Rules.all;
  Buffer.add_string buf (Printf.sprintf "%d rules\n" (List.length Rules.all));
  Buffer.contents buf

let rules_to_json () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"rules\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (r : Rules.rule) ->
            Printf.sprintf
              "    {\"code\": %s, \"severity\": %s, \"summary\": %s}"
              (json_string r.Rules.rule_code)
              (json_string (severity_name r.Rules.rule_severity))
              (json_string r.Rules.rule_summary))
          Rules.all));
  Buffer.add_string buf
    (Printf.sprintf "\n  ],\n  \"count\": %d\n}\n" (List.length Rules.all));
  Buffer.contents buf

let to_json ?model diags =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  (match model with
   | Some name ->
     Buffer.add_string buf
       (Printf.sprintf "  \"model\": %s,\n" (json_string name))
   | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "  \"errors\": %d,\n"
       (List.length (Wfr.errors diags)));
  Buffer.add_string buf
    (Printf.sprintf "  \"warnings\": %d,\n"
       (List.length (Wfr.warnings diags)));
  Buffer.add_string buf "  \"diagnostics\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map json_diag diags));
  if diags <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
