(** Shared helpers for the lint passes: the ASL class-info oracle over a
    model, owning-classifier resolution for behaviors, and diagnostic
    constructors that pull severities from the {!Rules} registry. *)

val ty_of_dtype : Uml.Model.t -> Uml.Dtype.t -> Asl.Typecheck.ty
(** ASL view of a UML type reference ([Ref] resolved to its class
    name when the classifier exists). *)

val class_info_of_model : Uml.Model.t -> Asl.Typecheck.class_info
(** Attribute/operation oracle backed by the model's classifiers, as the
    code generator and interpreter resolve them. *)

val self_class : Uml.Model.t -> Uml.Ident.t option -> string option
(** Name of the classifier behind a behavior's context reference
    ([sm_context] / [ac_context]), when it resolves. *)

val guard_env : (string * Asl.Typecheck.ty) list
(** The identifier environment the statechart engine provides to guards
    and effects: event parameters [e1] … [e9] as integers and [event] as
    the triggering signal name.  An approximation — parameters are
    integers in every workload and example model. *)

val diag :
  code:string -> ?element:Uml.Ident.t -> string -> Uml.Wfr.diagnostic
(** Build a diagnostic whose severity comes from the registry entry for
    [code] (Error if the code is unregistered). *)

val diagf :
  code:string ->
  ?element:Uml.Ident.t ->
  ('a, unit, string, Uml.Wfr.diagnostic) format4 ->
  'a

val sort : Uml.Wfr.diagnostic list -> Uml.Wfr.diagnostic list
(** Deterministic report order: by rule code, then element, then
    message. *)
