open Uml

let ty_of_dtype m (d : Dtype.t) : Asl.Typecheck.ty =
  match d with
  | Dtype.Boolean -> Asl.Typecheck.T_bool
  | Dtype.Integer | Dtype.Unlimited_natural -> Asl.Typecheck.T_int
  | Dtype.Real -> Asl.Typecheck.T_real
  | Dtype.String_type -> Asl.Typecheck.T_string
  | Dtype.Void -> Asl.Typecheck.T_void
  | Dtype.Ref id -> (
    match Model.find_classifier m id with
    | Some cl -> Asl.Typecheck.T_obj (Some cl.Classifier.cl_name)
    | None -> Asl.Typecheck.T_obj None)

(* Mirrors the oracle the code generator and interpreter use, so lint
   agrees with them about what resolves. *)
let class_info_of_model m : Asl.Typecheck.class_info =
  let find_class name =
    List.find_opt (fun c -> c.Classifier.cl_name = name) (Model.classifiers m)
  in
  let ty_of_dtype = ty_of_dtype m in
  {
    Asl.Typecheck.class_exists = (fun n -> find_class n <> None);
    attr_type =
      (fun cname aname ->
        match find_class cname with
        | None -> None
        | Some cl ->
          Option.map
            (fun (p : Classifier.property) -> ty_of_dtype p.Classifier.prop_type)
            (Classifier.find_attribute cl aname));
    op_signature =
      (fun cname oname ->
        match find_class cname with
        | None -> None
        | Some cl -> (
          match Classifier.find_operation cl oname with
          | None -> None
          | Some op ->
            let params =
              List.filter_map
                (fun (p : Classifier.parameter) ->
                  if p.Classifier.param_direction = Classifier.Return then None
                  else Some (ty_of_dtype p.Classifier.param_type))
                op.Classifier.op_params
            in
            Some (params, ty_of_dtype (Classifier.result_type op))));
  }

let self_class m context =
  match context with
  | None -> None
  | Some id ->
    Option.map
      (fun cl -> cl.Classifier.cl_name)
      (Model.find_classifier m id)

let guard_env =
  List.init 9 (fun i -> (Printf.sprintf "e%d" (i + 1), Asl.Typecheck.T_int))
  @ [ ("event", Asl.Typecheck.T_string) ]

let severity_of code =
  match Rules.find code with
  | Some ru -> ru.Rules.rule_severity
  | None -> Wfr.Error

let diag ~code ?element message =
  {
    Wfr.diag_severity = severity_of code;
    diag_rule = code;
    diag_element = element;
    diag_message = message;
  }

let diagf ~code ?element fmt = Printf.ksprintf (diag ~code ?element) fmt

let sort diags =
  List.sort
    (fun (a : Wfr.diagnostic) (b : Wfr.diagnostic) ->
      match compare a.Wfr.diag_rule b.Wfr.diag_rule with
      | 0 -> (
        match compare a.Wfr.diag_element b.Wfr.diag_element with
        | 0 -> compare a.Wfr.diag_message b.Wfr.diag_message
        | c -> c)
      | c -> c)
    diags
