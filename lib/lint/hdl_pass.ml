let lift (d : Hdl.Check.diagnostic) =
  {
    Uml.Wfr.diag_severity =
      (match d.Hdl.Check.diag_severity with
       | Hdl.Check.Error -> Uml.Wfr.Error
       | Hdl.Check.Warning -> Uml.Wfr.Warning);
    diag_rule = d.Hdl.Check.diag_code;
    diag_element = None;
    diag_message = d.Hdl.Check.diag_message;
  }

let check_design design = List.map lift (Hdl.Check.check_design design)
