(** The lint rule registry: every whole-model static-analysis rule with
    its stable code, default severity and one-line summary.

    Rule codes are stable identifiers (never renumbered, only retired)
    grouped by pass prefix:

    - [ASL-xx] — embedded behavior strings (guards, effects, bodies);
    - [SC-xx]  — statechart behavioral topology (beyond the structural
      [SM-xx] well-formedness rules in {!Uml.Wfr});
    - [ACT-xx] — activity token-flow analysis via the Petri translation;
    - [COMP-xx] — component wiring (ports, interfaces, connectors);
    - [HDL-xx] — netlist checks lifted from {!Hdl.Check} (01..11) and
      the netlist dataflow pass (12..13: clock-domain crossings,
      unreset registers);
    - [DF-xx]  — the dataflow tier ([lib/dataflow]): ASL abstract
      interpretation (use-before-init, dead stores, constant-folded
      unreachability, constant guards) and cross-layer event flow.

    See LINT_RULES.md for the full documented table. *)

type rule = {
  rule_code : string;  (** e.g. ["ASL-01"] *)
  rule_severity : Uml.Wfr.severity;  (** default severity *)
  rule_summary : string;
}

val all : rule list
(** Every registered rule, sorted by code.  [HDL-xx] codes mirror the
    diagnostics emitted by {!Hdl.Check}. *)

val find : string -> rule option

(** Which rules to run.  [sel_only = Some l] restricts to codes matching
    [l]; [sel_disabled] removes matching codes.  A selector string
    matches a code when equal to it, or when it is a prefix group such
    as ["ASL"] or ["HDL"] (matching every code of that family). *)
type selection = {
  sel_only : string list option;
  sel_disabled : string list;
}

val default_selection : selection
(** Everything enabled. *)

val selection_of_strings :
  ?only:string list -> ?disabled:string list -> unit -> selection

val enabled : selection -> string -> bool
(** Is the rule with this code enabled under the selection? *)

val unknown_selectors : selection -> string list
(** Selector strings that match no registered rule (likely typos). *)
