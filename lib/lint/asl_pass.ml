open Uml

(* Diagnostics accumulate in reverse; the driver sorts the final list,
   so only per-behavior determinism matters here. *)

let parse_failure ~element ~what exn acc =
  match Asl.Parser.error_message exn with
  | Some msg ->
    Model_info.diagf ~code:"ASL-01" ~element "%s does not parse: %s" what msg
    :: acc
  | None -> raise exn

let type_errors ~element ~what msgs acc =
  List.fold_left
    (fun acc msg ->
      Model_info.diagf ~code:"ASL-02" ~element "%s: %s" what msg :: acc)
    acc msgs

(* --- guard side effects (ASL-03) ------------------------------------- *)

(* Static receiver class of an expression, for query-ness lookup.  Uses
   the typechecker so resolution agrees with ASL-02. *)
let receiver_class info ~self_class ~env recv =
  match recv with
  | None -> self_class
  | Some r -> (
    match Asl.Typecheck.check_expression ?self_class ~env info r with
    | Ok (Asl.Typecheck.T_obj c) -> c
    | Ok
        ( Asl.Typecheck.T_int | Asl.Typecheck.T_real | Asl.Typecheck.T_bool
        | Asl.Typecheck.T_string | Asl.Typecheck.T_null | Asl.Typecheck.T_void
          )
    | Error _ ->
      None)

let rec first_effect m info ~self_class ~env (e : Asl.Ast.expr) =
  match e with
  | Asl.Ast.Int_lit _ | Asl.Ast.Real_lit _ | Asl.Ast.Bool_lit _
  | Asl.Ast.String_lit _ | Asl.Ast.Null_lit | Asl.Ast.Self | Asl.Ast.Var _ ->
    None
  | Asl.Ast.New cname -> Some (Printf.sprintf "creates a %s instance" cname)
  | Asl.Ast.Attr (obj, _attr) -> first_effect m info ~self_class ~env obj
  | Asl.Ast.Unop (_, e1) -> first_effect m info ~self_class ~env e1
  | Asl.Ast.Binop (_, e1, e2) -> (
    match first_effect m info ~self_class ~env e1 with
    | Some _ as eff -> eff
    | None -> first_effect m info ~self_class ~env e2)
  | Asl.Ast.Call (recv, name, args) -> (
    let sub = (match recv with None -> [] | Some r -> [ r ]) @ args in
    match List.find_map (first_effect m info ~self_class ~env) sub with
    | Some _ as eff -> eff
    | None ->
      if recv = None && name = "print" then Some "calls print"
      else (
        match receiver_class info ~self_class ~env recv with
        | None -> None
        | Some cname -> (
          match
            List.find_opt
              (fun c -> c.Classifier.cl_name = cname)
              (Model.classifiers m)
          with
          | None -> None
          | Some cl -> (
            match Classifier.find_operation cl name with
            | Some op when not op.Classifier.op_is_query ->
              Some
                (Printf.sprintf "calls non-query operation %s.%s" cname name)
            | Some _ | None -> None))))

(* --- per-behavior checks --------------------------------------------- *)

let check_guard_src m info ~self_class ~element ~what src acc =
  match Asl.Parser.parse_expression src with
  | exception exn -> parse_failure ~element ~what exn acc
  | ast -> (
    let acc =
      match
        Asl.Typecheck.check_guard ?self_class ~env:Model_info.guard_env info
          src
      with
      | Ok () -> acc
      | Error msgs -> type_errors ~element ~what msgs acc
    in
    match
      first_effect m info ~self_class ~env:Model_info.guard_env ast
    with
    | None -> acc
    | Some eff ->
      Model_info.diagf ~code:"ASL-03" ~element "%s %s" what eff :: acc)

let check_program_src info ~env ~self_class ~element ~what src acc =
  match Asl.Parser.parse_program src with
  | exception exn -> (parse_failure ~element ~what exn acc, None)
  | prog -> (
    match Asl.Typecheck.check_program ?self_class ~env info prog with
    | Ok () -> (acc, Some prog)
    | Error msgs -> (type_errors ~element ~what msgs acc, Some prog))

let check_opt f src acc =
  match src with
  | None -> acc
  | Some src -> f src acc

(* --- state machines --------------------------------------------------- *)

let check_state_machine m info (sm : Smachine.t) acc =
  let self_class = Model_info.self_class m sm.Smachine.sm_context in
  let env = Model_info.guard_env in
  let acc =
    List.fold_left
      (fun acc (tr : Smachine.transition) ->
        let element = tr.Smachine.tr_id in
        let acc =
          check_opt
            (check_guard_src m info ~self_class ~element
               ~what:"transition guard")
            tr.Smachine.tr_guard acc
        in
        check_opt
          (fun src acc ->
            fst
              (check_program_src info ~env ~self_class ~element
                 ~what:"transition effect" src acc))
          tr.Smachine.tr_effect acc)
      acc
      (Smachine.all_transitions sm)
  in
  List.fold_left
    (fun acc v ->
      match v with
      | Smachine.Pseudo _ | Smachine.Final _ -> acc
      | Smachine.State st ->
        let element = st.Smachine.st_id in
        let prog what src acc =
          fst (check_program_src info ~env ~self_class ~element ~what src acc)
        in
        check_opt (prog "state entry behavior") st.Smachine.st_entry acc
        |> check_opt (prog "state exit behavior") st.Smachine.st_exit
        |> check_opt (prog "state do behavior") st.Smachine.st_do)
    acc
    (Smachine.all_vertices sm)

(* --- operation bodies -------------------------------------------------- *)

let check_classifier m info (cl : Classifier.t) acc =
  let self_class = Some cl.Classifier.cl_name in
  List.fold_left
    (fun acc (op : Classifier.operation) ->
      match op.Classifier.op_body with
      | None -> acc
      | Some src ->
        let env =
          List.filter_map
            (fun (p : Classifier.parameter) ->
              if p.Classifier.param_direction = Classifier.Return then None
              else
                Some
                  ( p.Classifier.param_name,
                    Model_info.ty_of_dtype m p.Classifier.param_type ))
            op.Classifier.op_params
        in
        let what =
          Printf.sprintf "body of %s.%s" cl.Classifier.cl_name
            op.Classifier.op_name
        in
        fst
          (check_program_src info ~env ~self_class
             ~element:op.Classifier.op_id ~what src acc))
    acc cl.Classifier.cl_operations

(* --- activities -------------------------------------------------------- *)

(* Top-level variable bindings a program leaves in the interpreter's
   shared store, typed under [env] (matches Typecheck's block scoping:
   nested assignments do not escape). *)
let program_bindings info ~self_class ~env prog =
  List.fold_left
    (fun env (s : Asl.Ast.stmt) ->
      match s with
      | Asl.Ast.Var_decl (name, e) | Asl.Ast.Assign (Asl.Ast.L_var name, e)
        -> (
        match Asl.Typecheck.check_expression ?self_class ~env info e with
        | Ok t -> (name, t) :: env
        | Error _ -> env)
      | Asl.Ast.Skip
      | Asl.Ast.Assign (Asl.Ast.L_attr _, _)
      | Asl.Ast.Expr_stmt _ | Asl.Ast.If _ | Asl.Ast.While _ | Asl.Ast.For _
      | Asl.Ast.Return _ | Asl.Ast.Send _ | Asl.Ast.Delete _ ->
        env)
    env prog

let check_activity m info (ac : Activityg.t) acc =
  let self_class = Model_info.self_class m ac.Activityg.ac_context in
  (* Action bodies run against one shared interpreter store, in token
     order; checking in node order with threaded bindings approximates
     that. *)
  let acc, env =
    List.fold_left
      (fun (acc, env) node ->
        match node with
        | Activityg.Action a -> (
          match a.Activityg.act_body with
          | None -> (acc, env)
          | Some src ->
            let what =
              Printf.sprintf "body of action %s"
                a.Activityg.act_head.Activityg.nd_name
            in
            let acc, prog =
              check_program_src info ~env ~self_class
                ~element:a.Activityg.act_head.Activityg.nd_id ~what src acc
            in
            let env =
              match prog with
              | None -> env
              | Some prog -> program_bindings info ~self_class ~env prog
            in
            (acc, env))
        | Activityg.Call_behavior _ | Activityg.Send_signal _
        | Activityg.Accept_event _ | Activityg.Object_node _
        | Activityg.Initial_node _ | Activityg.Activity_final _
        | Activityg.Flow_final _ | Activityg.Fork_node _
        | Activityg.Join_node _ | Activityg.Decision_node _
        | Activityg.Merge_node _ ->
          (acc, env))
      (acc, []) ac.Activityg.ac_nodes
  in
  List.fold_left
    (fun acc (e : Activityg.edge) ->
      match e.Activityg.ed_guard with
      | None -> acc
      | Some src -> (
        match Asl.Parser.parse_expression src with
        | exception exn ->
          parse_failure ~element:e.Activityg.ed_id ~what:"edge guard" exn acc
        | _ast -> (
          match
            Asl.Typecheck.check_guard ?self_class ~env info src
          with
          | Ok () -> acc
          | Error msgs ->
            type_errors ~element:e.Activityg.ed_id ~what:"edge guard" msgs acc
          )))
    acc ac.Activityg.ac_edges

let check m =
  let info = Model_info.class_info_of_model m in
  let acc =
    List.fold_left
      (fun acc sm -> check_state_machine m info sm acc)
      []
      (Model.state_machines m)
  in
  let acc =
    List.fold_left (fun acc cl -> check_classifier m info cl acc) acc
      (Model.classifiers m)
  in
  List.fold_left
    (fun acc ac -> check_activity m info ac acc)
    acc (Model.activities m)
