exception Error of {
  line : int;
  column : int;
  message : string;
}

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
  keep_whitespace : bool;
}

let fail st message =
  raise (Error { line = st.line; column = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.input

let peek st =
  if eof st then '\000' else st.input.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.input then '\000'
  else st.input.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    if st.input.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let skip_n st n =
  for _ = 1 to n do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input
  && String.sub st.input st.pos n = s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.input start (st.pos - start)

let decode_entity st buf =
  (* called just past '&' *)
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let name = String.sub st.input start (st.pos - start) in
  advance st (* ';' *);
  match name with
  | "amp" -> Buffer.add_char buf '&'
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    let numeric =
      if String.length name > 1 && name.[0] = '#' then
        let body = String.sub name 1 (String.length name - 1) in
        let value =
          if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X')
          then
            int_of_string_opt ("0x" ^ String.sub body 1 (String.length body - 1))
          else int_of_string_opt body
        in
        value
      else None
    in
    (match numeric with
     | Some code ->
       if code < 0 || code > 0x10FFFF then
         fail st
           (Printf.sprintf "character reference &%s; is outside Unicode" name);
       if code >= 0xD800 && code <= 0xDFFF then
         fail st
           (Printf.sprintf "character reference &%s; is a surrogate" name);
       (* encode as UTF-8 *)
       let add c = Buffer.add_char buf (Char.chr c) in
       if code < 0x80 then add code
       else if code < 0x800 then begin
         add (0xC0 lor (code lsr 6));
         add (0x80 lor (code land 0x3F))
       end
       else if code < 0x10000 then begin
         add (0xE0 lor (code lsr 12));
         add (0x80 lor ((code lsr 6) land 0x3F));
         add (0x80 lor (code land 0x3F))
       end
       else begin
         add (0xF0 lor (code lsr 18));
         add (0x80 lor ((code lsr 12) land 0x3F));
         add (0x80 lor ((code lsr 6) land 0x3F));
         add (0x80 lor (code land 0x3F))
       end
     | None -> fail st (Printf.sprintf "unknown entity &%s;" name))

let read_quoted st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        advance st;
        decode_entity st buf;
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        advance st;
        loop ()
      end
  in
  loop ();
  Buffer.contents buf

let skip_comment st =
  (* called at "<!--" *)
  skip_n st 4;
  let rec loop () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then skip_n st 3
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_pi st =
  (* called at "<?" *)
  skip_n st 2;
  let rec loop () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then skip_n st 2
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_doctype st =
  (* called at "<!DOCTYPE"; skip to the matching '>' (no nested subsets
     with '>' inside supported beyond bracket balancing) *)
  let depth = ref 0 in
  let rec loop () =
    if eof st then fail st "unterminated DOCTYPE"
    else begin
      let c = peek st in
      advance st;
      match c with
      | '[' ->
        incr depth;
        loop ()
      | ']' ->
        decr depth;
        loop ()
      | '>' when !depth = 0 -> ()
      | _ -> loop ()
    end
  in
  loop ()

let read_cdata st buf =
  (* called at "<![CDATA[" *)
  skip_n st 9;
  let rec loop () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then skip_n st 3
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ()

let is_blank s = String.for_all is_space s

let rec parse_element st =
  (* at '<' of a start tag *)
  advance st;
  let tag = read_name st in
  let rec read_attrs acc =
    skip_spaces st;
    let c = peek st in
    if c = '/' || c = '>' then List.rev acc
    else begin
      let name = read_name st in
      skip_spaces st;
      if peek st <> '=' then fail st "expected '=' after attribute name";
      advance st;
      skip_spaces st;
      let value = read_quoted st in
      read_attrs ((name, value) :: acc)
    end
  in
  let attrs = read_attrs [] in
  if peek st = '/' then begin
    advance st;
    if peek st <> '>' then fail st "expected '>' after '/'";
    advance st;
    Doc.element ~attrs tag []
  end
  else begin
    if peek st <> '>' then fail st "expected '>'";
    advance st;
    let children = parse_content st tag in
    Doc.element ~attrs tag children
  end

and parse_content st closing_tag =
  let children = ref [] in
  let textbuf = Buffer.create 16 in
  let flush_text () =
    let s = Buffer.contents textbuf in
    Buffer.clear textbuf;
    if s = "" then ()
    else if (not st.keep_whitespace) && is_blank s then ()
    else children := Doc.text s :: !children
  in
  let rec loop () =
    if eof st then fail st (Printf.sprintf "unterminated element <%s>" closing_tag)
    else if looking_at st "<!--" then begin
      flush_text ();
      skip_comment st;
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      read_cdata st textbuf;
      loop ()
    end
    else if looking_at st "</" then begin
      flush_text ();
      skip_n st 2;
      let name = read_name st in
      if name <> closing_tag then
        fail st
          (Printf.sprintf "mismatched closing tag </%s> (expected </%s>)"
             name closing_tag);
      skip_spaces st;
      if peek st <> '>' then fail st "expected '>' in closing tag";
      advance st
    end
    else if peek st = '<' && peek2 st = '?' then begin
      flush_text ();
      skip_pi st;
      loop ()
    end
    else if peek st = '<' then begin
      flush_text ();
      let child = parse_element st in
      children := child :: !children;
      loop ()
    end
    else if peek st = '&' then begin
      advance st;
      decode_entity st textbuf;
      loop ()
    end
    else begin
      Buffer.add_char textbuf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  List.rev !children

let parse_string ?(keep_whitespace = false) input =
  let st = { input; pos = 0; line = 1; bol = 0; keep_whitespace } in
  let rec skip_misc () =
    skip_spaces st;
    if looking_at st "<?" then begin
      skip_pi st;
      skip_misc ()
    end
    else if looking_at st "<!--" then begin
      skip_comment st;
      skip_misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_n st 9;
      skip_doctype st;
      skip_misc ()
    end
  in
  skip_misc ();
  if eof st || peek st <> '<' then fail st "expected root element";
  let root = parse_element st in
  skip_misc ();
  if not (eof st) then fail st "trailing content after root element";
  root

let error_message = function
  | Error { line; column; message } ->
    Some (Printf.sprintf "XML parse error at %d:%d: %s" line column message)
  | _exn -> None
