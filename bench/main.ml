(* Benchmark and experiment harness.

   The paper ("UML 2.0 - Overview and Perspectives in SoC Design", DATE
   2005) has no tables or figures; DESIGN.md maps its five claims to the
   experiment suite E1..E12.  For every experiment this harness

     (a) prints the measured report rows recorded in EXPERIMENTS.md, and
     (b) registers one Bechamel test group with the raw kernels.

   Run: dune exec bench/main.exe            (reports + timings)
        dune exec bench/main.exe -- quick   (reports only)
        dune exec bench/main.exe -- quick --json out.json
                                            (+ machine-readable results) *)

let sep title =
  Printf.printf "\n==== %s ====\n%!" title

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json <file>)

   Every report records its headline numbers under a stable
   "eN.metric.variant" key; the file is emitted with keys sorted
   lexicographically, so the key set and order are byte-deterministic
   across runs (values of timing metrics naturally vary). *)

let json_entries : (string * string) list ref = ref []
let record key value = json_entries := (key, value) :: !json_entries
let record_i key i = record key (string_of_int i)
let record_b key b = record key (string_of_bool b)

let record_f key v =
  (* %.6g never produces NaN/inf here (all recorded values are finite),
     and its exponent form (1e+06) is valid JSON *)
  record key (Printf.sprintf "%.6g" v)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path =
  let entries =
    List.sort_uniq
      (fun (a, _) (b, _) -> String.compare a b)
      !json_entries
  in
  let oc = open_out path in
  output_string oc "{\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  \"%s\": %s%s\n" (json_escape k) v
        (if i < last then "," else ""))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\nwrote %d result keys to %s\n%!" (List.length entries) path

(* ------------------------------------------------------------------ *)
(* Shared workloads                                                    *)

let soc_instances n =
  let catalogue () = Iplib.Cores.catalogue () in
  let rec take k acc cat =
    if k = 0 then List.rev acc
    else
      match cat with
      | [] -> take k acc (catalogue ())
      | core :: rest ->
        take (k - 1) ((Printf.sprintf "u%d" (n - k), core) :: acc) rest
  in
  take n [] (catalogue ())

let pipeline_activity () =
  Workload.Gen_activity.series_parallel ~seed:42 ~size:20 ~max_width:4

(* ------------------------------------------------------------------ *)
(* E1: abstraction / expansion factor                                  *)

let e1_report () =
  sep "E1  model elements vs generated code (expansion factor)";
  Printf.printf "%-6s %-16s %-14s %-10s\n" "IPs" "model elements"
    "generated LoC" "expansion";
  List.iter
    (fun n ->
      let instances = soc_instances n in
      let m = Uml.Model.create (Printf.sprintf "soc%d" n) in
      let profile = Profiles.Soc_profile.install m in
      let _c = Iplib.Soc.component m ~profile ~name:"Soc" instances in
      let elements = Mda.Generate.model_element_count m in
      let design = Iplib.Soc.design ~name:"soc" instances in
      let vhdl = Codegen.Vhdl.of_design design in
      let c_text = Codegen.Cgen.of_model m in
      let loc = Mda.Generate.loc vhdl + Mda.Generate.loc c_text in
      let expansion = float_of_int loc /. float_of_int elements in
      Printf.printf "%-6d %-16d %-14d %9.1fx\n" n elements loc expansion;
      record_f (Printf.sprintf "e1.expansion_factor.ips%02d" n) expansion)
    [ 2; 4; 8; 16; 32 ]

let e1_tests () =
  let design = Iplib.Soc.design ~name:"soc" (soc_instances 8) in
  [
    Bechamel.Test.make ~name:"e1/vhdl-of-8ip-soc"
      (Bechamel.Staged.stage (fun () ->
           ignore (Codegen.Vhdl.of_design design)));
  ]

(* ------------------------------------------------------------------ *)
(* E2: executable models — engine vs flat vs RTL equivalence + speed   *)

let e2_machine seed = Workload.Gen_statechart.flat ~seed ~states:10 ~events:4

let e2_equivalent seed =
  let sm = e2_machine seed in
  let events = Workload.Gen_statechart.event_sequence ~seed ~length:200 4 in
  let engine = Statechart.Engine.create sm in
  Statechart.Engine.start engine;
  let engine_trace =
    List.map
      (fun name ->
        Statechart.Engine.dispatch engine (Statechart.Event.make name);
        Statechart.Engine.signature engine)
      events
  in
  match Statechart.Flatten.flatten sm with
  | Error _ -> false
  | Ok flat -> (
    let flat_trace = Statechart.Flatten.simulate flat events in
    engine_trace = flat_trace
    &&
    match Codegen.Fsm_compile.compile flat with
    | Error _ -> false
    | Ok hmod ->
      let sim = Dsim.Sim.create hmod in
      Dsim.Sim.set_input sim "rst" 1;
      Dsim.Sim.clock_edge sim "clk";
      Dsim.Sim.set_input sim "rst" 0;
      let rtl_trace =
        List.map
          (fun ev ->
            let port = Codegen.Fsm_compile.event_input ev in
            Dsim.Sim.set_input sim port 1;
            Dsim.Sim.clock_edge sim "clk";
            Dsim.Sim.set_input sim port 0;
            Dsim.Sim.get_enum sim "state")
          events
      in
      rtl_trace = flat_trace)

let e2_report () =
  sep "E2  in-model execution vs generated RTL (trace equivalence)";
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let agree = List.length (List.filter e2_equivalent seeds) in
  Printf.printf "engine = flat = RTL on %d/%d random machines x 200 events\n"
    agree (List.length seeds);
  record_i "e2.trace_agreement.machines" agree;
  record_i "e2.trace_agreement.total" (List.length seeds)

let e2_tests () =
  let sm = e2_machine 1 in
  let events = Workload.Gen_statechart.event_sequence ~seed:9 ~length:100 4 in
  let flat =
    match Statechart.Flatten.flatten sm with
    | Ok f -> f
    | Error m -> failwith m
  in
  let hmod =
    match Codegen.Fsm_compile.compile flat with
    | Ok m -> m
    | Error m -> failwith m
  in
  [
    Bechamel.Test.make ~name:"e2/engine-100-events"
      (Bechamel.Staged.stage (fun () ->
           let engine = Statechart.Engine.create sm in
           Statechart.Engine.start engine;
           List.iter
             (fun name ->
               Statechart.Engine.dispatch engine (Statechart.Event.make name))
             events));
    Bechamel.Test.make ~name:"e2/rtl-100-cycles"
      (Bechamel.Staged.stage (fun () ->
           let sim = Dsim.Sim.create hmod in
           Dsim.Sim.set_input sim "rst" 1;
           Dsim.Sim.clock_edge sim "clk";
           Dsim.Sim.set_input sim "rst" 0;
           List.iter
             (fun ev ->
               let port = Codegen.Fsm_compile.event_input ev in
               Dsim.Sim.set_input sim port 1;
               Dsim.Sim.clock_edge sim "clk";
               Dsim.Sim.set_input sim port 0)
             events));
  ]

(* xUML system kernel: a two-object relay model, run to quiescence *)
let relay_model () =
  let open Uml in
  let m = Model.create "relay" in
  let receiver =
    Classifier.make ~is_active:true
      ~attributes:
        [ Classifier.property ~default:(Vspec.of_int 0) "n" Dtype.Integer ]
      "Receiver"
  in
  let s = Smachine.simple_state "S" in
  let i = Smachine.pseudostate Smachine.Initial in
  let r_sm =
    Smachine.make ~context:receiver.Classifier.cl_id "RecvSM"
      [
        Smachine.region
          [ Smachine.Pseudo i; Smachine.State s ]
          [
            Smachine.transition ~source:i.Smachine.ps_id
              ~target:s.Smachine.st_id ();
            Smachine.transition
              ~triggers:[ Smachine.Signal_trigger "msg" ]
              ~effect:"self.n := self.n + 1;" ~kind:Smachine.Internal
              ~source:s.Smachine.st_id ~target:s.Smachine.st_id ();
          ];
      ]
  in
  let receiver =
    { receiver with Classifier.cl_behaviors = [ r_sm.Smachine.sm_id ] }
  in
  Model.add m (Model.E_classifier receiver);
  Model.add m (Model.E_state_machine r_sm);
  let sender =
    Classifier.make ~is_active:true
      ~attributes:
        [
          Classifier.property ~default:(Vspec.of_int 0) "i" Dtype.Integer;
          Classifier.property "peer" (Dtype.Ref receiver.Classifier.cl_id);
        ]
      "Sender"
  in
  let idle = Smachine.simple_state "Idle" in
  let burst = Smachine.simple_state "Burst" in
  let si = Smachine.pseudostate Smachine.Initial in
  let s_sm =
    Smachine.make ~context:sender.Classifier.cl_id "SendSM"
      [
        Smachine.region
          [ Smachine.Pseudo si; Smachine.State idle; Smachine.State burst ]
          [
            Smachine.transition ~source:si.Smachine.ps_id
              ~target:idle.Smachine.st_id ();
            Smachine.transition
              ~triggers:[ Smachine.Signal_trigger "go" ]
              ~source:idle.Smachine.st_id ~target:burst.Smachine.st_id ();
            Smachine.transition ~guard:"self.i < 50"
              ~effect:"self.i := self.i + 1; send msg() to self.peer;"
              ~source:burst.Smachine.st_id ~target:burst.Smachine.st_id ();
            Smachine.transition ~guard:"self.i >= 50"
              ~effect:"self.i := 0;" ~source:burst.Smachine.st_id
              ~target:idle.Smachine.st_id ();
          ];
      ]
  in
  let sender =
    { sender with Classifier.cl_behaviors = [ s_sm.Smachine.sm_id ] }
  in
  Model.add m (Model.E_classifier sender);
  Model.add m (Model.E_state_machine s_sm);
  m

let e2_xuml_test () =
  let m = relay_model () in
  [
    Bechamel.Test.make ~name:"e2/xuml-100-routed-signals"
      (Bechamel.Staged.stage (fun () ->
           let sys = Xuml.System.create m in
           let recv = Xuml.System.instantiate sys "Receiver" in
           let send = Xuml.System.instantiate sys "Sender" in
           ignore
             (Asl.Store.set_attr (Xuml.System.store sys) send "peer"
                (Asl.Value.V_obj recv));
           Xuml.System.send sys ~to_:send "go";
           ignore (Xuml.System.run sys)));
  ]

(* ------------------------------------------------------------------ *)
(* E3: activity tokens vs Petri nets                                   *)

let e3_report () =
  sep "E3  activity token runs as Petri occurrence sequences";
  List.iter
    (fun width ->
      let conforming = ref 0 in
      let steps = ref 0 in
      for seed = 1 to 10 do
        let act =
          Workload.Gen_activity.with_decisions ~seed ~size:(width * 4)
            ~max_width:width
        in
        let r = Activity.Conform.run_and_check ~seed act in
        if r.Activity.Conform.conforms then incr conforming;
        steps := !steps + r.Activity.Conform.steps
      done;
      Printf.printf
        "width %-3d: 10/10 activities, %d total firings, conforming runs: %d/10\n"
        width !steps !conforming;
      record_i (Printf.sprintf "e3.conforming_runs.width%d" width) !conforming;
      record_i (Printf.sprintf "e3.total_firings.width%d" width) !steps)
    [ 2; 4; 8 ]

let e3_tests () =
  let act = pipeline_activity () in
  let net, m0 = Activity.Translate.to_petri act in
  [
    Bechamel.Test.make ~name:"e3/token-engine-run"
      (Bechamel.Staged.stage (fun () ->
           let engine = Activity.Exec.create act in
           ignore (Activity.Exec.run ~seed:3 engine)));
    Bechamel.Test.make ~name:"e3/petri-replay"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Petri.Analysis.random_occurrence_sequence ~seed:3 ~max_steps:200
                net m0)));
  ]

(* ------------------------------------------------------------------ *)
(* E4: HW/SW interchangeability                                        *)

let e4_report () =
  sep "E4  one PIM realized as hardware and as software";
  let act = pipeline_activity () in
  let g = Hwsw.Taskgraph.of_activity act in
  let sw = Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g) in
  let hw = Hwsw.Schedule.run g (Hwsw.Schedule.all_hw g) in
  Printf.printf
    "pipeline of %d tasks: SW %d cycles | HW %d cycles (area %d) | speedup %.1fx\n"
    (List.length g.Hwsw.Taskgraph.tasks)
    sw.Hwsw.Schedule.makespan hw.Hwsw.Schedule.makespan
    hw.Hwsw.Schedule.hw_area
    (float_of_int sw.Hwsw.Schedule.makespan
    /. float_of_int hw.Hwsw.Schedule.makespan);
  record_i "e4.makespan.sw_cycles" sw.Hwsw.Schedule.makespan;
  record_i "e4.makespan.hw_cycles" hw.Hwsw.Schedule.makespan;
  (* behavioral interchangeability: same machine through both flows *)
  let agree = e2_equivalent 99 in
  Printf.printf "same controller behavior in SW engine and generated RTL: %b\n"
    agree;
  record_b "e4.behavior_agreement" agree

let e4_tests () =
  let act = pipeline_activity () in
  let g = Hwsw.Taskgraph.of_activity act in
  [
    Bechamel.Test.make ~name:"e4/schedule-both-sides"
      (Bechamel.Staged.stage (fun () ->
           ignore (Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g));
           ignore (Hwsw.Schedule.run g (Hwsw.Schedule.all_hw g))));
  ]

(* ------------------------------------------------------------------ *)
(* E5: MDA reuse and transformation scaling                            *)

(* Fine-grained reuse: fraction of classifier features (attributes,
   operations) and component ports that survive the mapping unchanged.
   Element-level reuse marks a whole class "changed" for a single
   lowered attribute; this measures what actually had to move. *)
let feature_reuse pim psm =
  let total = ref 0 in
  let kept = ref 0 in
  let count_list equal xs ys =
    List.iter
      (fun x ->
        incr total;
        if List.exists (equal x) ys then incr kept)
      xs
  in
  Uml.Model.iter
    (fun e ->
      match e with
      | Uml.Model.E_classifier c -> (
        match Uml.Model.find_classifier psm c.Uml.Classifier.cl_id with
        | None -> ()
        | Some c' ->
          count_list Uml.Classifier.equal_property
            c.Uml.Classifier.cl_attributes c'.Uml.Classifier.cl_attributes;
          count_list Uml.Classifier.equal_operation
            c.Uml.Classifier.cl_operations c'.Uml.Classifier.cl_operations)
      | Uml.Model.E_component c -> (
        match Uml.Model.find_component psm c.Uml.Component.cmp_id with
        | None -> ()
        | Some c' ->
          count_list Uml.Component.equal_port c.Uml.Component.cmp_ports
            c'.Uml.Component.cmp_ports)
      | _other -> ())
    pim;
  if !total = 0 then 1.0 else float_of_int !kept /. float_of_int !total

let e5_report () =
  sep "E5  PIM -> PSM reuse fraction and scaling";
  Printf.printf "%-8s %14s %14s %14s %14s\n" "classes" "hw elem reuse"
    "hw feat reuse" "sw elem reuse" "sw feat reuse";
  List.iter
    (fun classes ->
      let pim = Workload.Gen_model.structural ~seed:7 ~classes in
      let hw, hw_trace = Mda.Mapping.to_psm Mda.Platform.asic_vhdl pim in
      let sw, sw_trace = Mda.Mapping.to_psm Mda.Platform.sw_c pim in
      Printf.printf "%-8d %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n" classes
        (100. *. Mda.Transform.reuse_fraction hw_trace)
        (100. *. feature_reuse pim hw)
        (100. *. Mda.Transform.reuse_fraction sw_trace)
        (100. *. feature_reuse pim sw);
      record_f
        (Printf.sprintf "e5.hw_feature_reuse.classes%04d" classes)
        (feature_reuse pim hw);
      record_f
        (Printf.sprintf "e5.sw_feature_reuse.classes%04d" classes)
        (feature_reuse pim sw))
    [ 10; 100; 1000 ]

let e5_tests () =
  let pim = Workload.Gen_model.structural ~seed:7 ~classes:300 in
  [
    Bechamel.Test.make ~name:"e5/to-psm-300-classes"
      (Bechamel.Staged.stage (fun () ->
           ignore (Mda.Mapping.to_psm Mda.Platform.asic_vhdl pim)));
  ]

(* ------------------------------------------------------------------ *)
(* E6: partitioning quality                                            *)

let e6_report () =
  sep "E6  partitioning: heuristics vs exhaustive (ablation)";
  Printf.printf "%-4s %-18s %-18s %-18s %-18s\n" "n" "exhaustive"
    "greedy" "greedy+KL" "annealing";
  List.iter
    (fun n ->
      let g = Workload.Gen_taskgraph.layered ~seed:5 ~tasks:n ~layers:4 in
      let budget = 600 in
      let opt = Hwsw.Partition.exhaustive ~budget g in
      let grd = Hwsw.Partition.greedy ~budget g in
      let imp = Hwsw.Partition.improve ~budget g in
      let sa = Hwsw.Partition.annealed ~seed:11 ~budget g in
      let cell (o : Hwsw.Partition.outcome) =
        Printf.sprintf "%4d %.2fx %6dev" o.Hwsw.Partition.cost
          (Hwsw.Partition.quality_ratio ~optimal:opt o)
          o.Hwsw.Partition.evaluations
      in
      Printf.printf "%-4d %-18s %-18s %-18s %-18s\n" n (cell opt) (cell grd)
        (cell imp) (cell sa);
      record_f
        (Printf.sprintf "e6.quality_ratio_greedy.tasks%02d" n)
        (Hwsw.Partition.quality_ratio ~optimal:opt grd);
      record_f
        (Printf.sprintf "e6.quality_ratio_annealed.tasks%02d" n)
        (Hwsw.Partition.quality_ratio ~optimal:opt sa))
    [ 8; 10; 12; 14 ]

let e6_tests () =
  let g50 = Workload.Gen_taskgraph.layered ~seed:5 ~tasks:50 ~layers:6 in
  let g12 = Workload.Gen_taskgraph.layered ~seed:5 ~tasks:12 ~layers:4 in
  [
    Bechamel.Test.make ~name:"e6/greedy-50-tasks"
      (Bechamel.Staged.stage (fun () ->
           ignore (Hwsw.Partition.greedy ~budget:2000 g50)));
    Bechamel.Test.make ~name:"e6/exhaustive-12-tasks"
      (Bechamel.Staged.stage (fun () ->
           ignore (Hwsw.Partition.exhaustive ~budget:600 g12)));
  ]

(* ------------------------------------------------------------------ *)
(* E7: XMI round-trip fidelity and throughput                          *)

let e7_report () =
  sep "E7  XMI round-trip fidelity";
  List.iter
    (fun classes ->
      let m = Workload.Gen_model.structural ~seed:3 ~classes in
      let text = Xmi.Write.to_string m in
      let m' = Xmi.Read.model_of_string text in
      Printf.printf "%-6d classes: %7d bytes, lossless: %b\n" classes
        (String.length text) (Uml.Model.equal m m');
      record_b
        (Printf.sprintf "e7.roundtrip_lossless.classes%04d" classes)
        (Uml.Model.equal m m'))
    [ 10; 100; 1000 ]

let e7_tests () =
  let m = Workload.Gen_model.structural ~seed:3 ~classes:200 in
  let text = Xmi.Write.to_string m in
  [
    Bechamel.Test.make ~name:"e7/export-200-classes"
      (Bechamel.Staged.stage (fun () -> ignore (Xmi.Write.to_string m)));
    Bechamel.Test.make ~name:"e7/import-200-classes"
      (Bechamel.Staged.stage (fun () ->
           ignore (Xmi.Read.model_of_string text)));
  ]

(* ------------------------------------------------------------------ *)
(* E8: statechart engine scaling with hierarchy depth                  *)

let e8_machines () =
  List.map
    (fun depth ->
      (depth,
       Workload.Gen_statechart.hierarchical ~seed:8 ~depth ~breadth:2
         ~events:4))
    [ 1; 2; 3; 4; 5 ]

let e8_report () =
  sep "E8  run-to-completion throughput vs hierarchy depth";
  let events = Workload.Gen_statechart.event_sequence ~seed:8 ~length:2000 4 in
  List.iter
    (fun (depth, sm) ->
      let engine = Statechart.Engine.create sm in
      Statechart.Engine.start engine;
      let t0 = Sys.time () in
      List.iter
        (fun name ->
          Statechart.Engine.dispatch engine (Statechart.Event.make name))
        events;
      let dt = Sys.time () -. t0 in
      let rate = float_of_int (List.length events) /. (dt +. 1e-9) in
      Printf.printf "depth %d: %7.0f events/s (%d vertices)\n" depth rate
        (List.length (Uml.Smachine.all_vertices sm));
      record_f (Printf.sprintf "e8.events_per_s.depth%d" depth) rate)
    (e8_machines ())

let e8_tests () =
  let events = Workload.Gen_statechart.event_sequence ~seed:8 ~length:200 4 in
  List.map
    (fun (depth, sm) ->
      Bechamel.Test.make
        ~name:(Printf.sprintf "e8/depth-%d-200-events" depth)
        (Bechamel.Staged.stage (fun () ->
             let engine = Statechart.Engine.create sm in
             Statechart.Engine.start engine;
             List.iter
               (fun name ->
                 Statechart.Engine.dispatch engine (Statechart.Event.make name))
               events)))
    (List.filter (fun (d, _) -> d <= 4) (e8_machines ()))

(* ------------------------------------------------------------------ *)
(* E9: code generation throughput and determinism                      *)

let e9_report () =
  sep "E9  code generation throughput and determinism";
  let design = Iplib.Soc.design ~name:"soc" (soc_instances 16) in
  let emit name f =
    let t0 = Sys.time () in
    let reps = 50 in
    let text = ref "" in
    for _ = 1 to reps do
      text := f design
    done;
    let dt = Sys.time () -. t0 in
    let deterministic = f design = !text in
    let mb_s =
      float_of_int (String.length !text * reps) /. (dt +. 1e-9) /. 1_048_576.
    in
    Printf.printf "%-10s %7d lines, %8.2f MB/s, deterministic: %b\n" name
      (Mda.Generate.loc !text)
      mb_s deterministic;
    record_f (Printf.sprintf "e9.throughput_mb_s.%s" name) mb_s;
    record_b (Printf.sprintf "e9.deterministic.%s" name) deterministic
  in
  emit "vhdl" Codegen.Vhdl.of_design;
  emit "verilog" Codegen.Verilog.of_design;
  emit "systemc" Codegen.Systemc.of_design

let e9_tests () =
  let design = Iplib.Soc.design ~name:"soc" (soc_instances 16) in
  [
    Bechamel.Test.make ~name:"e9/vhdl"
      (Bechamel.Staged.stage (fun () ->
           ignore (Codegen.Vhdl.of_design design)));
    Bechamel.Test.make ~name:"e9/verilog"
      (Bechamel.Staged.stage (fun () ->
           ignore (Codegen.Verilog.of_design design)));
    Bechamel.Test.make ~name:"e9/systemc"
      (Bechamel.Staged.stage (fun () ->
           ignore (Codegen.Systemc.of_design design)));
  ]

(* ------------------------------------------------------------------ *)
(* E10: discrete-event simulation performance                          *)

let e10_flat n =
  Hdl.Elaborate.flatten (Iplib.Soc.design ~name:"soc" (soc_instances n))

let e10_report () =
  sep "E10  simulator throughput vs design size (compiled engine)";
  List.iter
    (fun n ->
      let flat = e10_flat n in
      let sim = Dsim.Fast.create flat in
      Dsim.Fast.set_input sim "rst" 1;
      Dsim.Fast.clock_edge sim "clk";
      Dsim.Fast.set_input sim "rst" 0;
      let cycles = 2000 in
      let t0 = Sys.time () in
      Dsim.Fast.run sim ~clock:"clk" ~cycles;
      let dt = Sys.time () -. t0 in
      let rate = float_of_int cycles /. (dt +. 1e-9) in
      Printf.printf
        "%2d IPs (%3d processes): %8.0f cycles/s, %9d events, %d deltas, \
         %d evals skipped\n"
        n
        (List.length flat.Hdl.Module_.mod_processes)
        rate
        (Dsim.Fast.events sim) (Dsim.Fast.delta_cycles sim)
        (Dsim.Fast.skipped_evals sim);
      record_f (Printf.sprintf "e10.cycles_per_s.ips%02d" n) rate)
    [ 4; 8; 16; 32 ]

let e10_tests () =
  let flat = e10_flat 8 in
  [
    Bechamel.Test.make ~name:"e10/8ip-100-cycles"
      (Bechamel.Staged.stage (fun () ->
           let sim = Dsim.Fast.create flat in
           Dsim.Fast.run sim ~clock:"clk" ~cycles:100));
  ]

(* ------------------------------------------------------------------ *)
(* E11: telemetry instrumentation overhead                             *)

let e11_events =
  lazy (Workload.Gen_statechart.event_sequence ~seed:3 ~length:2000 4)

let e11_dispatch reg =
  let engine = Statechart.Engine.create ~metrics:reg (e2_machine 1) in
  Statechart.Engine.start engine;
  List.iter
    (fun name ->
      Statechart.Engine.dispatch engine (Statechart.Event.make name))
    (Lazy.force e11_events)

let e11_time make_reg =
  (* best of three runs to damp scheduler noise *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Sys.time () in
    e11_dispatch (make_reg ());
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let e11_report () =
  sep "E11  telemetry overhead on statechart dispatch (2000 events)";
  let off = e11_time (fun () -> Telemetry.Metrics.null) in
  let counters =
    e11_time (fun () -> Telemetry.Metrics.create ~event_capacity:0 ())
  in
  let full = e11_time (fun () -> Telemetry.Metrics.create ()) in
  let row key label dt =
    Printf.printf "%-24s %8.3f us/event  (%+5.1f%% vs off)\n" label
      (1e6 *. dt /. 2000.)
      (100. *. (dt -. off) /. (off +. 1e-9));
    record_f (Printf.sprintf "e11.us_per_event.%s" key) (1e6 *. dt /. 2000.)
  in
  row "off" "telemetry off (null)" off;
  row "ring0" "live, ring cap 0" counters;
  row "ring4096" "live, ring cap 4096" full

let e11_tests () =
  let sm = e2_machine 1 in
  let events = Workload.Gen_statechart.event_sequence ~seed:3 ~length:200 4 in
  let dispatch reg =
    let engine = Statechart.Engine.create ~metrics:reg sm in
    Statechart.Engine.start engine;
    List.iter
      (fun name ->
        Statechart.Engine.dispatch engine (Statechart.Event.make name))
      events
  in
  [
    Bechamel.Test.make ~name:"e11/dispatch-200-off"
      (Bechamel.Staged.stage (fun () -> dispatch Telemetry.Metrics.null));
    Bechamel.Test.make ~name:"e11/dispatch-200-live"
      (Bechamel.Staged.stage (fun () ->
           dispatch (Telemetry.Metrics.create ())));
  ]

(* ------------------------------------------------------------------ *)
(* E12: whole-model lint wall-time vs model size                       *)

let e12_model classes =
  Uml.Ident.reset_counter ();
  let m = Workload.Gen_model.structural ~seed:7 ~classes in
  Uml.Model.add m
    (Uml.Model.E_state_machine
       (Workload.Gen_statechart.hierarchical ~seed:7 ~depth:3 ~breadth:2
          ~events:4));
  Uml.Model.add m
    (Uml.Model.E_activity
       (Workload.Gen_activity.with_decisions ~seed:7 ~size:14 ~max_width:3));
  m

let e12_report () =
  sep "E12  whole-model lint wall-time vs model size";
  Printf.printf "%-8s %-10s %-12s %10s %14s\n" "classes" "elements"
    "diagnostics" "ms" "us/element";
  List.iter
    (fun classes ->
      let m = e12_model classes in
      let elements = Mda.Generate.model_element_count m in
      let diags = Lint.Check.check_model m in
      (* best of three runs to damp scheduler noise *)
      let best = ref infinity in
      for _ = 1 to 3 do
        let t0 = Sys.time () in
        ignore (Lint.Check.check_model m);
        let dt = Sys.time () -. t0 in
        if dt < !best then best := dt
      done;
      Printf.printf "%-8d %-10d %-12d %10.2f %14.1f\n" classes elements
        (List.length diags) (1e3 *. !best)
        (1e6 *. !best /. float_of_int elements);
      record_f (Printf.sprintf "e12.lint_ms.classes%03d" classes)
        (1e3 *. !best);
      record_i (Printf.sprintf "e12.diagnostics.classes%03d" classes)
        (List.length diags))
    [ 10; 50; 200; 500 ]

let e12_tests () =
  let m = e12_model 200 in
  [
    Bechamel.Test.make ~name:"e12/lint-200-class-model"
      (Bechamel.Staged.stage (fun () -> ignore (Lint.Check.check_model m)));
  ]

(* ------------------------------------------------------------------ *)
(* E13: compiled execution core vs reference paths                     *)

(* A net of [pairs] independent two-place toggles: place a_i holds a
   token that t_i_ab moves to b_i and t_i_ba moves back.  The reachable
   space is the full product, 2^pairs markings, so [pairs = 14] gives a
   16384-state space that both engines truncate at limit 10_000. *)
let e13_toggle_net pairs =
  let a i = Printf.sprintf "a%d" i
  and b i = Printf.sprintf "b%d" i in
  let idx = List.init pairs (fun i -> i) in
  let places =
    List.concat_map (fun i -> [ Petri.Net.place (a i); Petri.Net.place (b i) ]) idx
  in
  let transitions =
    List.concat_map
      (fun i ->
        [
          Petri.Net.transition (Printf.sprintf "t%d_ab" i);
          Petri.Net.transition (Printf.sprintf "t%d_ba" i);
        ])
      idx
  in
  let arcs =
    List.concat_map
      (fun i ->
        let ab = Printf.sprintf "t%d_ab" i
        and ba = Printf.sprintf "t%d_ba" i in
        [
          Petri.Net.P_to_t (a i, ab, 1);
          Petri.Net.T_to_p (ab, b i, 1);
          Petri.Net.P_to_t (b i, ba, 1);
          Petri.Net.T_to_p (ba, a i, 1);
        ])
      idx
  in
  let net = Petri.Net.make places transitions arcs in
  let m0 = Petri.Marking.of_list (List.map (fun i -> (a i, 1)) idx) in
  (net, m0)

(* The historical lint ACT pass over one activity: one reachability
   exploration for the deadlock question, then dead_transitions, which
   internally ran a second exploration plus an enabled-scan over every
   discovered marking. *)
let e13_lint_reference net m0 =
  let limit = 4096 in
  let r1 = Petri.Analysis.reachable_reference ~limit net m0 in
  let deadlocks = List.length r1.Petri.Analysis.deadlocks in
  let r2 = Petri.Analysis.reachable_reference ~limit net m0 in
  let module S = Set.Make (String) in
  let fired =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc tn -> S.add tn.Petri.Net.tn_id acc)
          acc
          (Petri.Marking.enabled_transitions net m))
      S.empty r2.Petri.Analysis.markings
  in
  let dead =
    List.filter
      (fun tn -> not (S.mem tn.Petri.Net.tn_id fired))
      net.Petri.Net.transitions
  in
  (deadlocks, List.length dead)

let e13_lint_compiled net m0 =
  let s = Petri.Analysis.explore ~limit:4096 net m0 in
  ( List.length s.Petri.Analysis.sum_reach.Petri.Analysis.deadlocks,
    List.length s.Petri.Analysis.sum_dead_transitions )

let e13_time f =
  (* best of three to damp scheduler noise *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Sys.time () in
    f ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let e13_report () =
  sep "E13  compiled execution core vs reference paths";
  (* (a) guard evaluation: parse-per-eval vs memoized compilation *)
  let guard_src = "(x + 3) * 2 > y and not (x * x < y)" in
  let interp = Asl.Interp.create (Asl.Store.create ()) in
  let iters = 50_000 in
  let params i = [ ("x", Asl.Value.V_int (i land 15)); ("y", Asl.Value.V_int 9) ] in
  let baseline () =
    for i = 1 to iters do
      ignore
        (Asl.Interp.eval ~params:(params i) interp
           (Asl.Parser.parse_expression guard_src))
    done
  in
  let memoized () =
    for i = 1 to iters do
      ignore (Asl.Interp.eval_guard ~params:(params i) interp guard_src)
    done
  in
  let t_base = e13_time baseline in
  let t_memo = e13_time memoized in
  let guard_speedup = t_base /. (t_memo +. 1e-9) in
  Printf.printf
    "guard eval, %d iters:  parse-per-eval %7.1f ms (%8.0f evals/s)\n" iters
    (1e3 *. t_base)
    (float_of_int iters /. (t_base +. 1e-9));
  Printf.printf
    "                       memoized       %7.1f ms (%8.0f evals/s)  %5.1fx\n"
    (1e3 *. t_memo)
    (float_of_int iters /. (t_memo +. 1e-9))
    guard_speedup;
  record_f "e13.guard_evals_per_s.baseline"
    (float_of_int iters /. (t_base +. 1e-9));
  record_f "e13.guard_evals_per_s.memoized"
    (float_of_int iters /. (t_memo +. 1e-9));
  record_f "e13.speedup.guard_eval" guard_speedup;
  (* (b) the E12 lint ACT workload shape: per-activity analysis of the
     standard decision-heavy activity, 25 activities' worth *)
  let act = Workload.Gen_activity.with_decisions ~seed:7 ~size:14 ~max_width:3 in
  let net, m0 = Activity.Translate.to_petri act in
  let sanity_ref = e13_lint_reference net m0 in
  let sanity_cmp = e13_lint_compiled net m0 in
  let reps = 25 in
  let t_lref =
    e13_time (fun () ->
        for _ = 1 to reps do
          ignore (e13_lint_reference net m0)
        done)
  in
  let t_lcmp =
    e13_time (fun () ->
        for _ = 1 to reps do
          ignore (e13_lint_compiled net m0)
        done)
  in
  let lint_speedup = t_lref /. (t_lcmp +. 1e-9) in
  Printf.printf
    "lint ACT shape x%d:    reference      %7.1f ms   compiled %7.1f ms  \
     %5.1fx  (agree: %b)\n"
    reps (1e3 *. t_lref) (1e3 *. t_lcmp) lint_speedup
    (sanity_ref = sanity_cmp);
  record_f "e13.lint_shape_ms.reference" (1e3 *. t_lref);
  record_f "e13.lint_shape_ms.compiled" (1e3 *. t_lcmp);
  record_b "e13.lint_shape_agree" (sanity_ref = sanity_cmp);
  record_f "e13.speedup.lint_shape" lint_speedup;
  (* (c) a 10k-state reachability exploration *)
  let tnet, tm0 = e13_toggle_net 14 in
  let limit = 10_000 in
  let r_ref = ref 0 and r_cmp = ref 0 in
  let t_rref =
    e13_time (fun () ->
        let r = Petri.Analysis.reachable_reference ~limit tnet tm0 in
        r_ref := r.Petri.Analysis.state_count)
  in
  let t_rcmp =
    e13_time (fun () ->
        let r = Petri.Analysis.reachable ~limit tnet tm0 in
        r_cmp := r.Petri.Analysis.state_count)
  in
  let reach_speedup = t_rref /. (t_rcmp +. 1e-9) in
  Printf.printf
    "reachability %5d st: reference      %7.1f ms   compiled %7.1f ms  \
     %5.1fx  (agree: %b)\n"
    !r_ref (1e3 *. t_rref) (1e3 *. t_rcmp) reach_speedup (!r_ref = !r_cmp);
  record_i "e13.reach_10k.state_count" !r_cmp;
  record_f "e13.reach_10k_ms.reference" (1e3 *. t_rref);
  record_f "e13.reach_10k_ms.compiled" (1e3 *. t_rcmp);
  record_b "e13.reach_10k_agree" (!r_ref = !r_cmp);
  record_f "e13.speedup.reachability_10k" reach_speedup

let e13_tests () =
  let guard_src = "(x + 3) * 2 > y and not (x * x < y)" in
  let interp = Asl.Interp.create (Asl.Store.create ()) in
  let params = [ ("x", Asl.Value.V_int 5); ("y", Asl.Value.V_int 9) ] in
  let act = Workload.Gen_activity.with_decisions ~seed:7 ~size:14 ~max_width:3 in
  let net, m0 = Activity.Translate.to_petri act in
  let tnet, tm0 = e13_toggle_net 10 in
  [
    Bechamel.Test.make ~name:"e13/guard-parse-per-eval"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Asl.Interp.eval ~params interp
                (Asl.Parser.parse_expression guard_src))));
    Bechamel.Test.make ~name:"e13/guard-memoized"
      (Bechamel.Staged.stage (fun () ->
           ignore (Asl.Interp.eval_guard ~params interp guard_src)));
    Bechamel.Test.make ~name:"e13/lint-shape-reference"
      (Bechamel.Staged.stage (fun () -> ignore (e13_lint_reference net m0)));
    Bechamel.Test.make ~name:"e13/lint-shape-compiled"
      (Bechamel.Staged.stage (fun () -> ignore (e13_lint_compiled net m0)));
    Bechamel.Test.make ~name:"e13/reach-1024-reference"
      (Bechamel.Staged.stage (fun () ->
           ignore (Petri.Analysis.reachable_reference ~limit:2000 tnet tm0)));
    Bechamel.Test.make ~name:"e13/reach-1024-compiled"
      (Bechamel.Staged.stage (fun () ->
           ignore (Petri.Analysis.reachable ~limit:2000 tnet tm0)));
  ]

(* ------------------------------------------------------------------ *)
(* E14: compiled netlist engine vs reference interpreter               *)

let e14_run_ref flat cycles =
  let sim = Dsim.Sim.create flat in
  Dsim.Sim.set_input sim "rst" 1;
  Dsim.Sim.clock_edge sim "clk";
  Dsim.Sim.set_input sim "rst" 0;
  let t0 = Sys.time () in
  Dsim.Sim.run sim ~clock:"clk" ~cycles;
  (Sys.time () -. t0, Dsim.Sim.snapshot sim)

let e14_run_fast flat cycles =
  let sim = Dsim.Fast.create flat in
  Dsim.Fast.set_input sim "rst" 1;
  Dsim.Fast.clock_edge sim "clk";
  Dsim.Fast.set_input sim "rst" 0;
  let t0 = Sys.time () in
  Dsim.Fast.run sim ~clock:"clk" ~cycles;
  (Sys.time () -. t0, Dsim.Fast.snapshot sim)

let e14_report () =
  sep "E14  compiled netlist engine vs reference interpreter";
  List.iter
    (fun n ->
      let flat = e10_flat n in
      let cycles = 2000 in
      let t_ref, snap_ref = e14_run_ref flat cycles in
      let t_fast, snap_fast = e14_run_fast flat cycles in
      let rate_ref = float_of_int cycles /. (t_ref +. 1e-9) in
      let rate_fast = float_of_int cycles /. (t_fast +. 1e-9) in
      let speedup = rate_fast /. rate_ref in
      let agree = snap_ref = snap_fast in
      Printf.printf
        "%2d IPs: reference %8.0f cycles/s, compiled %8.0f cycles/s \
         (%.1fx), snapshots agree: %b\n"
        n rate_ref rate_fast speedup agree;
      record_f (Printf.sprintf "e14.cycles_per_s.reference%02d" n) rate_ref;
      record_f (Printf.sprintf "e14.cycles_per_s.compiled%02d" n) rate_fast;
      record_f (Printf.sprintf "e14.speedup.ips%02d" n) speedup;
      record_b (Printf.sprintf "e14.agree.ips%02d" n) agree)
    [ 4; 8; 16; 32 ]

let e14_tests () =
  let flat = e10_flat 8 in
  [
    Bechamel.Test.make ~name:"e14/8ip-100-cycles-reference"
      (Bechamel.Staged.stage (fun () ->
           let sim = Dsim.Sim.create flat in
           Dsim.Sim.run sim ~clock:"clk" ~cycles:100));
    Bechamel.Test.make ~name:"e14/8ip-100-cycles-compiled"
      (Bechamel.Staged.stage (fun () ->
           let sim = Dsim.Fast.create flat in
           Dsim.Fast.run sim ~clock:"clk" ~cycles:100));
  ]

(* ------------------------------------------------------------------ *)
(* E15: fault-injection campaign throughput                            *)

let e15_spec flat =
  let inputs =
    List.filter_map
      (fun (p : Hdl.Module_.port) ->
        match p.Hdl.Module_.port_dir with
        | Hdl.Module_.Input ->
          if p.Hdl.Module_.port_name = "clk" || p.Hdl.Module_.port_name = "rst"
          then None
          else Some p.Hdl.Module_.port_name
        | Hdl.Module_.Output -> None)
      flat.Hdl.Module_.mod_ports
  in
  let cycles = 64 in
  let rng = Workload.Prng.create 0x15 in
  let stimulus =
    List.init cycles (fun c ->
        ( c,
          List.filter_map
            (fun name ->
              if Workload.Prng.bool rng then
                Some (name, Workload.Prng.int rng 256)
              else None)
            inputs ))
  in
  {
    Fault.Campaign.rs_module = flat;
    rs_clock = "clk";
    rs_reset = Some "rst";
    rs_stimulus = stimulus;
    rs_cycles = cycles;
    rs_settle_budget = 1000;
  }

let e15_plan flat n_faults =
  let surface =
    {
      Fault.Plan.su_signals =
        List.map
          (fun (s : Hdl.Module_.signal) ->
            (s.Hdl.Module_.sig_name, Hdl.Htype.width s.Hdl.Module_.sig_type))
          flat.Hdl.Module_.mod_signals;
      su_cycles = 64;
      su_events = [];
      su_length = 0;
      su_places = [];
      su_steps = 0;
    }
  in
  Fault.Plan.generate ~seed:0x15 ~count:n_faults surface

let e15_report () =
  sep "E15  fault-injection campaign throughput (compiled RTL engine)";
  List.iter
    (fun n ->
      let flat = e10_flat n in
      let spec = e15_spec flat in
      let faults = 24 in
      let plan = e15_plan flat faults in
      let t0 = Sys.time () in
      let report = Fault.Campaign.run ~rtl:spec ~label:"bench" plan in
      let dt = Sys.time () -. t0 in
      let t = Fault.Campaign.totals report in
      (* golden run + one run per injected fault *)
      let runs = 1 + t.Fault.Campaign.t_injected in
      let runs_per_s = float_of_int runs /. (dt +. 1e-9) in
      let faults_per_s =
        float_of_int t.Fault.Campaign.t_injected /. (dt +. 1e-9)
      in
      Printf.printf
        "%2d IPs: %2d faults -> %6.1f runs/s, %6.1f faults/s \
         (masked %d, detected %d, silent %d, truncated %d)\n"
        n t.Fault.Campaign.t_injected runs_per_s faults_per_s
        t.Fault.Campaign.t_masked t.Fault.Campaign.t_detected
        t.Fault.Campaign.t_silent t.Fault.Campaign.t_truncated;
      record_f (Printf.sprintf "e15.runs_per_s.ips%02d" n) runs_per_s;
      record_f (Printf.sprintf "e15.faults_per_s.ips%02d" n) faults_per_s;
      record_i (Printf.sprintf "e15.masked.ips%02d" n)
        t.Fault.Campaign.t_masked;
      record_i (Printf.sprintf "e15.detected.ips%02d" n)
        t.Fault.Campaign.t_detected;
      record_i (Printf.sprintf "e15.silent.ips%02d" n)
        t.Fault.Campaign.t_silent;
      record_i (Printf.sprintf "e15.truncated.ips%02d" n)
        t.Fault.Campaign.t_truncated;
      record_f (Printf.sprintf "e15.coverage.ips%02d" n)
        (Fault.Campaign.coverage t))
    [ 4; 8; 16 ]

let e15_tests () =
  let flat = e10_flat 4 in
  let spec = e15_spec flat in
  let plan = e15_plan flat 8 in
  [
    Bechamel.Test.make ~name:"e15/4ip-8-fault-campaign"
      (Bechamel.Staged.stage (fun () ->
           ignore (Fault.Campaign.run ~rtl:spec ~label:"bench" plan)));
  ]

(* ------------------------------------------------------------------ *)
(* E16: multicore scaling of campaigns and reachability                *)

(* Wall clock, not [Sys.time]: domain parallelism never shows up in
   CPU seconds.  Best of three to damp scheduler noise. *)
let e16_time f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let e16_report () =
  sep "E16  multicore scaling (work-stealing pool, byte-identical output)";
  let flat = e10_flat 8 in
  let spec = e15_spec flat in
  let plan = e15_plan flat 24 in
  let campaign pool = Fault.Campaign.run ?pool ~rtl:spec ~label:"bench" plan in
  let campaign_text = Fault.Campaign.to_text (campaign None) in
  let t_campaign_seq = e16_time (fun () -> ignore (campaign None)) in
  let tnet, tm0 = e13_toggle_net 14 in
  let reach pool = Petri.Analysis.explore ?pool ~limit:10_000 tnet tm0 in
  let reach_base = reach None in
  let t_reach_seq = e16_time (fun () -> ignore (reach None)) in
  record_f "e16.campaign_ms.jobs01" (1e3 *. t_campaign_seq);
  record_f "e16.reach_ms.jobs01" (1e3 *. t_reach_seq);
  Printf.printf
    "jobs 1: campaign %6.1f ms, reach %6.1f ms (sequential baseline)\n"
    (1e3 *. t_campaign_seq) (1e3 *. t_reach_seq);
  List.iter
    (fun jobs ->
      Exec.Pool.with_pool ~jobs (fun p ->
          let pool = Some p in
          let c_agree =
            String.equal campaign_text (Fault.Campaign.to_text (campaign pool))
          in
          let t_c = e16_time (fun () -> ignore (campaign pool)) in
          let r = reach pool in
          let r_agree =
            r.Petri.Analysis.sum_reach.Petri.Analysis.state_count
            = reach_base.Petri.Analysis.sum_reach.Petri.Analysis.state_count
            && r.Petri.Analysis.sum_reach.Petri.Analysis.truncated
               = reach_base.Petri.Analysis.sum_reach.Petri.Analysis.truncated
            && List.for_all2 Petri.Marking.equal
                 r.Petri.Analysis.sum_reach.Petri.Analysis.markings
                 reach_base.Petri.Analysis.sum_reach.Petri.Analysis.markings
            && r.Petri.Analysis.sum_dead_transitions
               = reach_base.Petri.Analysis.sum_dead_transitions
          in
          let t_r = e16_time (fun () -> ignore (reach pool)) in
          Printf.printf
            "jobs %d: campaign %6.1f ms (%4.2fx, agree %b), reach %6.1f ms \
             (%4.2fx, agree %b)\n"
            jobs (1e3 *. t_c)
            (t_campaign_seq /. (t_c +. 1e-9))
            c_agree (1e3 *. t_r)
            (t_reach_seq /. (t_r +. 1e-9))
            r_agree;
          record_f (Printf.sprintf "e16.campaign_ms.jobs%02d" jobs)
            (1e3 *. t_c);
          record_f
            (Printf.sprintf "e16.campaign_speedup.jobs%02d" jobs)
            (t_campaign_seq /. (t_c +. 1e-9));
          record_b (Printf.sprintf "e16.campaign_agree.jobs%02d" jobs) c_agree;
          record_f (Printf.sprintf "e16.reach_ms.jobs%02d" jobs) (1e3 *. t_r);
          record_f
            (Printf.sprintf "e16.reach_speedup.jobs%02d" jobs)
            (t_reach_seq /. (t_r +. 1e-9));
          record_b (Printf.sprintf "e16.reach_agree.jobs%02d" jobs) r_agree))
    [ 2; 4; 8 ]

let e16_tests () =
  (* process-lifetime pool: bechamel stages the same closure many
     times, so the pool must outlive this function *)
  let pool = Exec.Pool.create ~jobs:4 in
  let flat = e10_flat 4 in
  let spec = e15_spec flat in
  let plan = e15_plan flat 8 in
  let tnet, tm0 = e13_toggle_net 12 in
  [
    Bechamel.Test.make ~name:"e16/campaign-jobs4"
      (Bechamel.Staged.stage (fun () ->
           ignore (Fault.Campaign.run ~pool ~rtl:spec ~label:"bench" plan)));
    Bechamel.Test.make ~name:"e16/reach-4096-jobs4"
      (Bechamel.Staged.stage (fun () ->
           ignore (Petri.Analysis.explore ~limit:4096 ~pool tnet tm0)));
  ]

(* ------------------------------------------------------------------ *)
(* E17: dataflow lint tier cost per model shape                        *)

(* The static-analysis tier must stay cheap enough to run on every
   lint: measure the ASL/event passes against growing generated models
   and the netlist clock/reset pass against growing SoC designs.  The
   finding counts are recorded too — healthy generated models must stay
   at zero (no spurious fires as the substrate evolves; the defect
   showcase behind @lint-demo owns the positive direction). *)
let e17_model classes =
  Uml.Ident.reset_counter ();
  let m = Workload.Gen_model.structural ~seed:17 ~classes in
  Uml.Model.add m
    (Uml.Model.E_state_machine
       (Workload.Gen_statechart.hierarchical ~seed:17 ~depth:3 ~breadth:2
          ~events:4));
  Uml.Model.add m
    (Uml.Model.E_activity
       (Workload.Gen_activity.with_decisions ~seed:17 ~size:classes
          ~max_width:3));
  m

let e17_report () =
  sep "E17  dataflow lint tier cost (ASL abstract interpretation + netlist)";
  List.iter
    (fun classes ->
      let m = e17_model classes in
      let diags = Lint.Df_pass.check_model m in
      let t = e16_time (fun () -> ignore (Lint.Df_pass.check_model m)) in
      Printf.printf "model  %3d classes: %7.2f ms, %d findings\n" classes
        (1e3 *. t) (List.length diags);
      record_f (Printf.sprintf "e17.model_ms.classes%03d" classes) (1e3 *. t);
      record_i
        (Printf.sprintf "e17.model_findings.classes%03d" classes)
        (List.length diags))
    [ 10; 20; 40 ];
  List.iter
    (fun ips ->
      let design = Iplib.Soc.design ~name:"soc" (soc_instances ips) in
      let diags = Lint.Df_pass.check_design design in
      let t = e16_time (fun () -> ignore (Lint.Df_pass.check_design design)) in
      Printf.printf "design %3d IPs:     %7.2f ms, %d findings\n" ips
        (1e3 *. t) (List.length diags);
      record_f (Printf.sprintf "e17.netlist_ms.ips%02d" ips) (1e3 *. t);
      record_i
        (Printf.sprintf "e17.netlist_findings.ips%02d" ips)
        (List.length diags))
    [ 4; 8; 16 ]

let e17_tests () =
  let m = e17_model 20 in
  let design = Iplib.Soc.design ~name:"soc" (soc_instances 8) in
  [
    Bechamel.Test.make ~name:"e17/dataflow-model-20"
      (Bechamel.Staged.stage (fun () -> ignore (Lint.Df_pass.check_model m)));
    Bechamel.Test.make ~name:"e17/dataflow-netlist-8ip"
      (Bechamel.Staged.stage (fun () ->
           ignore (Lint.Df_pass.check_design design)));
  ]

(* ------------------------------------------------------------------ *)
(* E18: binary snapshots vs XMI — the model-load tax                   *)

(* Per-call wall clock for sub-millisecond work: one call is dominated
   by timer granularity and whichever minor GC happens to land in it,
   so repeat until a batch spans ~20 ms and take the best of three
   batch averages.  Import and load go through the same harness, so
   the ratio is method-fair. *)
let e18_time f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  let once = Unix.gettimeofday () -. t0 in
  let reps = max 1 (min 2000 (int_of_float (0.02 /. Float.max 1e-6 once))) in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    if dt < !best then best := dt
  done;
  !best

let e18_report () =
  sep "E18  snapshot load vs XMI import";
  List.iter
    (fun classes ->
      let m = Workload.Gen_model.structural ~seed:3 ~classes in
      let xmi = Xmi.Write.to_string m in
      let snap = Snap.Write.to_string m in
      let t_import =
        e18_time (fun () -> ignore (Xmi.Read.model_of_string xmi))
      in
      let t_load =
        e18_time (fun () -> ignore (Snap.Read.model_of_string snap))
      in
      let t_export = e18_time (fun () -> ignore (Xmi.Write.to_string m)) in
      let t_pack = e18_time (fun () -> ignore (Snap.Write.to_string m)) in
      (* speed-of-light reference: [Marshal] is an unsafe C-level loader
         of the same graph — it bounds what any decoder can reach *)
      let mar = Marshal.to_string m [] in
      let t_marshal =
        e18_time (fun () ->
            ignore (Marshal.from_string mar 0 : Uml.Model.t))
      in
      let lossless = Uml.Model.equal m (Snap.Read.model_of_string snap) in
      Printf.printf
        "%-6d classes: import %8.3f ms -> load %8.3f ms (%6.1fx, marshal \
         floor %6.3f ms), %7d -> %6d bytes, lossless: %b\n"
        classes (1e3 *. t_import) (1e3 *. t_load) (t_import /. t_load)
        (1e3 *. t_marshal) (String.length xmi) (String.length snap) lossless;
      let key fmt = Printf.sprintf fmt classes in
      record_f (key "e18.xmi_import_ms.classes%04d") (1e3 *. t_import);
      record_f (key "e18.snap_load_ms.classes%04d") (1e3 *. t_load);
      record_f (key "e18.load_speedup.classes%04d") (t_import /. t_load);
      record_f (key "e18.marshal_load_ms.classes%04d") (1e3 *. t_marshal);
      record_f (key "e18.export_ms.classes%04d") (1e3 *. t_export);
      record_f (key "e18.pack_ms.classes%04d") (1e3 *. t_pack);
      record_i (key "e18.xmi_bytes.classes%04d") (String.length xmi);
      record_i (key "e18.snap_bytes.classes%04d") (String.length snap);
      record_b (key "e18.roundtrip_lossless.classes%04d") lossless)
    [ 10; 100; 1000 ]

let e18_tests () =
  let m = Workload.Gen_model.structural ~seed:3 ~classes:200 in
  let snap = Snap.Write.to_string m in
  [
    Bechamel.Test.make ~name:"e18/pack-200-classes"
      (Bechamel.Staged.stage (fun () -> ignore (Snap.Write.to_string m)));
    Bechamel.Test.make ~name:"e18/load-200-classes"
      (Bechamel.Staged.stage (fun () ->
           ignore (Snap.Read.model_of_string snap)));
  ]

(* ------------------------------------------------------------------ *)
(* E19: serve warm-cache requests vs cold one-shot loads               *)

(* Drive the daemon exactly as a client would — one request line in,
   one response line out — so the measured path includes JSON decode,
   cache lookup, op execution and response encode. *)
let e19_request daemon line =
  match Serve.Daemon.handle_line daemon line with
  | Some _, _ -> ()
  | None, _ -> failwith "e19: request produced no response"

(* Fresh daemon per call: every request pays the full model-load tax. *)
let e19_cold line =
  e18_time (fun () -> e19_request (Serve.Daemon.create ()) line)

(* One daemon, primed once: every timed request hits the artifact
   cache. *)
let e19_warm line =
  let daemon = Serve.Daemon.create () in
  e19_request daemon line;
  e18_time (fun () -> e19_request daemon line)

let e19_model ~classes =
  let m = Workload.Gen_model.structural ~seed:7 ~classes in
  Uml.Model.add m
    (Uml.Model.E_state_machine
       (Workload.Gen_statechart.flat ~seed:7 ~states:48 ~events:8));
  let xmi = Filename.temp_file "socuml_e19" ".xmi" in
  let snap = Filename.temp_file "socuml_e19" ".sumb" in
  Xmi.Write.write_file m xmi;
  Snap.Write.write_file m snap;
  (xmi, snap)

let e19_report () =
  sep "E19  serve: warm-cache requests vs cold model loads";
  let xmi, snap = e19_model ~classes:1000 in
  let events =
    String.concat ","
      (Workload.Gen_statechart.event_sequence ~seed:11 ~length:32 8)
  in
  let lint_line path = Printf.sprintf {|{"op":"lint","model":"%s"}|} path in
  let sim_line path =
    Printf.sprintf
      {|{"op":"simulate","model":"%s","rtl":true,"events":"%s"}|} path events
  in
  List.iter
    (fun (shape, line_of) ->
      let t_cold_xmi = e19_cold (line_of xmi) in
      let t_cold_snap = e19_cold (line_of snap) in
      let t_warm = e19_warm (line_of xmi) in
      Printf.printf
        "%-14s cold xmi %8.3f ms, cold sumb %7.3f ms -> warm %7.3f ms \
         (%6.1fx vs xmi, %8.0f req/s)\n"
        shape (1e3 *. t_cold_xmi) (1e3 *. t_cold_snap) (1e3 *. t_warm)
        (t_cold_xmi /. t_warm) (1. /. t_warm);
      let key fmt = Printf.sprintf fmt shape in
      record_f (key "e19.cold_xmi_ms.%s") (1e3 *. t_cold_xmi);
      record_f (key "e19.cold_snap_ms.%s") (1e3 *. t_cold_snap);
      record_f (key "e19.warm_ms.%s") (1e3 *. t_warm);
      record_f (key "e19.warm_speedup.%s") (t_cold_xmi /. t_warm);
      record_f (key "e19.warm_rps.%s") (1. /. t_warm))
    [
      ("lint-1000c", lint_line);
      ("simulate-rtl", sim_line);
    ];
  Sys.remove xmi;
  Sys.remove snap

let e19_tests () =
  let xmi, _snap = e19_model ~classes:200 in
  let daemon = Serve.Daemon.create () in
  let line = Printf.sprintf {|{"op":"lint","model":"%s"}|} xmi in
  e19_request daemon line;
  [
    Bechamel.Test.make ~name:"e19/warm-lint-200-classes"
      (Bechamel.Staged.stage (fun () -> e19_request daemon line));
  ]

(* ------------------------------------------------------------------ *)
(* E20: the cost of resilience — deadline checkpoints and hostile mix  *)

(* The deadline machinery is polled at every engine checkpoint, so its
   overhead must be measured on the exact E19 shapes it guards: a
   never-expiring budget pays the full polling tax (fuel: one atomic
   decrement per checkpoint; deadline: the decrement plus a
   gettimeofday every 64th checkpoint) without ever cancelling. *)
let e20_report () =
  sep "E20  serve resilience: budget-check overhead, hostile-mix throughput";
  let xmi, snap = e19_model ~classes:1000 in
  let events =
    String.concat ","
      (Workload.Gen_statechart.event_sequence ~seed:11 ~length:32 8)
  in
  let sim_line extra =
    Printf.sprintf
      {|{"op":"simulate","model":"%s","rtl":true,"events":"%s"%s}|} snap
      events extra
  in
  let warm line =
    let daemon = Serve.Daemon.create () in
    e19_request daemon line;
    e18_time (fun () -> e19_request daemon line)
  in
  let t_plain = warm (sim_line "") in
  let t_fuel = warm (sim_line {|,"fuel":1000000000|}) in
  let t_deadline = warm (sim_line {|,"deadline_ms":3600000|}) in
  let pct t = 100. *. ((t /. t_plain) -. 1.) in
  Printf.printf
    "simulate-rtl warm: unbudgeted %7.3f ms, fuel %7.3f ms (%+5.1f%%), \
     deadline %7.3f ms (%+5.1f%%)\n"
    (1e3 *. t_plain) (1e3 *. t_fuel) (pct t_fuel) (1e3 *. t_deadline)
    (pct t_deadline);
  record_f "e20.warm_ms.unbudgeted" (1e3 *. t_plain);
  record_f "e20.warm_ms.fuel" (1e3 *. t_fuel);
  record_f "e20.warm_ms.deadline" (1e3 *. t_deadline);
  record_f "e20.overhead_pct.fuel" (pct t_fuel);
  record_f "e20.overhead_pct.deadline" (pct t_deadline);
  (* a daemon absorbing abuse must not slow down for everyone: compare
     warm throughput on a pure valid stream against a 10%-hostile mix
     (garbage lines, unknown ops, oversized payloads) *)
  let valid = Printf.sprintf {|{"op":"lint","model":"%s"}|} snap in
  let hostile =
    [|
      "garbage that is not json";
      {|{"op":"frobnicate"}|};
      Printf.sprintf {|{"op":"info","model":"%s"}|}
        (String.make (Serve.Daemon.max_line_bytes + 1) 'x');
    |]
  in
  let mix_time ~hostile_every =
    let daemon = Serve.Daemon.create () in
    e19_request daemon valid;
    let i = ref 0 in
    let batch = 10 in
    let t =
      e18_time (fun () ->
          for k = 1 to batch do
            incr i;
            if hostile_every > 0 && k mod hostile_every = 0 then
              e19_request daemon
                hostile.(!i mod Array.length hostile)
            else e19_request daemon valid
          done)
    in
    t /. float_of_int batch
  in
  let t_pure = mix_time ~hostile_every:0 in
  let t_mixed = mix_time ~hostile_every:10 in
  Printf.printf
    "lint warm stream: pure %8.0f req/s, 10%% hostile %8.0f req/s \
     (%+5.1f%% per-request)\n"
    (1. /. t_pure) (1. /. t_mixed)
    (100. *. ((t_mixed /. t_pure) -. 1.));
  record_f "e20.pure_rps" (1. /. t_pure);
  record_f "e20.hostile_mix_rps" (1. /. t_mixed);
  record_f "e20.hostile_mix_cost_pct" (100. *. ((t_mixed /. t_pure) -. 1.));
  Sys.remove xmi;
  Sys.remove snap

let e20_tests () =
  let xmi, _snap = e19_model ~classes:200 in
  let daemon = Serve.Daemon.create () in
  let line =
    Printf.sprintf {|{"op":"analyze","model":"%s","fuel":1000000000}|} xmi
  in
  e19_request daemon line;
  [
    Bechamel.Test.make ~name:"e20/warm-analyze-budgeted"
      (Bechamel.Staged.stage (fun () -> e19_request daemon line));
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)

let run_bechamel tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"socuml" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  sep "Bechamel timings (monotonic clock, ns/run)";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
    rows

let json_target () =
  let out = ref None in
  Array.iteri
    (fun i a -> if a = "--json" && i + 1 < Array.length Sys.argv then
        out := Some Sys.argv.(i + 1))
    Sys.argv;
  !out

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  e1_report ();
  e2_report ();
  e3_report ();
  e4_report ();
  e5_report ();
  e6_report ();
  e7_report ();
  e8_report ();
  e9_report ();
  e10_report ();
  e11_report ();
  e12_report ();
  e13_report ();
  e14_report ();
  e15_report ();
  e16_report ();
  e17_report ();
  e18_report ();
  e19_report ();
  e20_report ();
  if not quick then begin
    let tests =
      e1_tests () @ e2_tests () @ e2_xuml_test () @ e3_tests () @ e4_tests ()
      @ e5_tests () @ e6_tests () @ e7_tests () @ e8_tests () @ e9_tests ()
      @ e10_tests () @ e11_tests () @ e12_tests () @ e13_tests ()
      @ e14_tests () @ e15_tests () @ e16_tests () @ e17_tests ()
      @ e18_tests () @ e19_tests () @ e20_tests ()
    in
    run_bechamel tests
  end;
  (match json_target () with
  | Some path -> write_json path
  | None -> ());
  print_newline ()
