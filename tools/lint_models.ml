(* CI gate behind `dune build @lint-demo`: lint the models this repo
   ships — the demo SoC (rebuilt in-process exactly as `socuml demo`
   builds it) and a spread of workload-generated models — and fail on
   any error-severity diagnostic.  Also asserts the report is
   byte-for-byte deterministic across two runs. *)

open Uml

let failures = ref 0

let complain fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "lint-demo: %s\n" msg)
    fmt

let report name diags =
  let errors = Wfr.errors diags in
  Printf.printf "%-24s %d diagnostics (%d errors, %d warnings)\n" name
    (List.length diags) (List.length errors)
    (List.length (Wfr.warnings diags));
  List.iter (fun d -> Printf.printf "  %s\n" (Wfr.to_string d)) diags;
  if errors <> [] then complain "%s has lint errors" name

(* The demo SoC of bin/socuml.ml, model side. *)
let demo_model () =
  let m = Model.create "demo_soc" in
  let profile = Profiles.Soc_profile.install m in
  let instances =
    [ ("timer0", Iplib.Cores.timer ()); ("gpio0", Iplib.Cores.gpio ());
      ("fifo0", Iplib.Cores.fifo4 ()) ]
  in
  let _soc = Iplib.Soc.component m ~profile ~name:"DemoSoc" instances in
  Model.add m
    (Model.E_activity
       (Workload.Gen_activity.series_parallel ~seed:42 ~size:12 ~max_width:3));
  let a = Smachine.simple_state "Off" in
  let b = Smachine.simple_state "On" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "toggle" ]
          ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "toggle" ]
          ~source:b.Smachine.st_id ~target:a.Smachine.st_id ();
      ]
  in
  Model.add m (Model.E_state_machine (Smachine.make "Power" [ region ]));
  (m, Iplib.Soc.design ~name:"demo_soc" instances)

let () =
  let m, design = demo_model () in
  let diags = Lint.Check.check ~design m in
  report "demo_soc" diags;
  let again = Lint.Check.check ~design m in
  if
    Lint.Report.to_json ~model:"demo_soc" diags
    <> Lint.Report.to_json ~model:"demo_soc" again
  then complain "demo_soc lint report is not deterministic";

  (* a seeded workload spread standing in for user models *)
  List.iter
    (fun seed ->
      Ident.reset_counter ();
      let m = Workload.Gen_model.structural ~seed ~classes:20 in
      Model.add m
        (Model.E_state_machine
           (Workload.Gen_statechart.hierarchical ~seed ~depth:3 ~breadth:2
              ~events:4));
      Model.add m
        (Model.E_activity
           (Workload.Gen_activity.with_decisions ~seed ~size:14 ~max_width:3));
      report (Printf.sprintf "workload(seed=%d)" seed)
        (Lint.Check.check_model m))
    [ 1; 7; 42 ];

  if !failures > 0 then begin
    Printf.eprintf "lint-demo: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "lint-demo: all models clean of lint errors"
