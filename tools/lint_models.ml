(* CI gate behind `dune build @lint-demo`: lint the models this repo
   ships — the demo SoC (rebuilt in-process exactly as `socuml demo`
   builds it) and a spread of workload-generated models — and fail on
   any error-severity diagnostic.  Also asserts the report is
   byte-for-byte deterministic across two runs. *)

open Uml

let failures = ref 0

let complain fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "lint-demo: %s\n" msg)
    fmt

let report name diags =
  let errors = Wfr.errors diags in
  Printf.printf "%-24s %d diagnostics (%d errors, %d warnings)\n" name
    (List.length diags) (List.length errors)
    (List.length (Wfr.warnings diags));
  List.iter (fun d -> Printf.printf "  %s\n" (Wfr.to_string d)) diags;
  if errors <> [] then complain "%s has lint errors" name

(* The demo SoC of bin/socuml.ml, model side. *)
let demo_model () =
  let m = Model.create "demo_soc" in
  let profile = Profiles.Soc_profile.install m in
  let instances =
    [ ("timer0", Iplib.Cores.timer ()); ("gpio0", Iplib.Cores.gpio ());
      ("fifo0", Iplib.Cores.fifo4 ()) ]
  in
  let _soc = Iplib.Soc.component m ~profile ~name:"DemoSoc" instances in
  Model.add m
    (Model.E_activity
       (Workload.Gen_activity.series_parallel ~seed:42 ~size:12 ~max_width:3));
  let a = Smachine.simple_state "Off" in
  let b = Smachine.simple_state "On" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "toggle" ]
          ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "toggle" ]
          ~source:b.Smachine.st_id ~target:a.Smachine.st_id ();
      ]
  in
  Model.add m (Model.E_state_machine (Smachine.make "Power" [ region ]));
  (m, Iplib.Soc.design ~name:"demo_soc" instances)

(* --- dataflow defect showcase (`--dataflow`) -------------------------- *)

(* A model + design deliberately exhibiting every dataflow-tier rule
   (DF-01..DF-06, HDL-12, HDL-13) exactly where intended.  The golden
   diff pins the report; the assertion below keeps the golden honest if
   a pass regresses to silence. *)
let defect_model () =
  Ident.reset_counter ();
  let m = Model.create "dataflow_defects" in
  (* DF-05: `done` is emitted (entry of Off) but no trigger consumes it.
     DF-06: `go` and `tick` trigger transitions but nothing emits them.
     DF-04: one provably-false and one provably-true guard.
     DF-02: `x := 1` is overwritten before any read.
     DF-03: the then-branch is unreachable under the folded guard. *)
  let off = Smachine.simple_state ~entry:"send done(1);" "Off" in
  let on = Smachine.simple_state "On" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State off; Smachine.State on ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:off.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "go" ]
          ~guard:"1 > 2" ~effect:"x := 1; x := 2; return x;"
          ~source:off.Smachine.st_id ~target:on.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "tick" ]
          ~guard:"e1 < 0 or 0 < 1"
          ~effect:"if 1 > 2 then y := 1; else y := 2; end;"
          ~source:on.Smachine.st_id ~target:off.Smachine.st_id ();
      ]
  in
  Model.add m (Model.E_state_machine (Smachine.make "Defects" [ region ]));
  (* DF-01: `collect` reads `blocks` but only `fill` (later in token
     order than the typechecker's node-list order) assigns it. *)
  let fill = Activityg.action ~body:"blocks := 64;" "fill" in
  let collect = Activityg.action ~body:"limit := blocks + 1;" "collect" in
  let start = Activityg.initial () in
  let stop = Activityg.activity_final () in
  let e a b =
    Activityg.edge ~source:(Activityg.node_id a) ~target:(Activityg.node_id b)
      ()
  in
  Model.add m
    (Model.E_activity
       (Activityg.make "Reversed"
          [ start; fill; collect; stop ]
          [ e start collect; e collect fill; e fill stop ]));
  m

(* Two clock domains: [pb] samples [a_reg] from the clk_a domain on
   clk_b.  The comb reader [po] breaks the 2-FF synchronizer exemption,
   so HDL-12 fires; [pb] has neither reset nor init and drives the
   output [q] through [po], so HDL-13 fires too. *)
let defect_design () =
  let m =
    Hdl.Module_.make "cdc"
      ~ports:
        [ Hdl.Module_.input "clk_a" Hdl.Htype.Bit;
          Hdl.Module_.input "clk_b" Hdl.Htype.Bit;
          Hdl.Module_.input "rst" Hdl.Htype.Bit;
          Hdl.Module_.input "din" Hdl.Htype.Bit;
          Hdl.Module_.output "q" Hdl.Htype.Bit ]
      ~signals:
        [ Hdl.Module_.signal ~init:0 "a_reg" Hdl.Htype.Bit;
          Hdl.Module_.signal "b_reg" Hdl.Htype.Bit ]
      ~processes:
        [ Hdl.Module_.seq_process ~name:"pa" ~clock:"clk_a"
            ~reset:("rst", [ Hdl.Stmt.Assign ("a_reg", Hdl.Expr.zero) ])
            [ Hdl.Stmt.Assign ("a_reg", Hdl.Expr.Ref "din") ];
          Hdl.Module_.seq_process ~name:"pb" ~clock:"clk_b"
            [ Hdl.Stmt.Assign ("b_reg", Hdl.Expr.Ref "a_reg") ];
          Hdl.Module_.comb_process ~name:"po"
            [ Hdl.Stmt.Assign ("q", Hdl.Expr.Ref "b_reg") ] ]
  in
  Hdl.Module_.design ~top:"cdc" [ m ]

let dataflow_mode () =
  let m = defect_model () in
  let design = defect_design () in
  let diags = Lint.Check.check ~design m in
  print_string (Lint.Report.to_text ~model:"dataflow_defects" diags);
  let again = Lint.Check.check ~design m in
  if
    Lint.Report.to_json ~model:"dataflow_defects" diags
    <> Lint.Report.to_json ~model:"dataflow_defects" again
  then complain "dataflow_defects lint report is not deterministic";
  List.iter
    (fun code ->
      if
        not
          (List.exists
             (fun (d : Wfr.diagnostic) -> d.Wfr.diag_rule = code)
             diags)
      then complain "expected rule %s to fire on the defect showcase" code)
    [ "DF-01"; "DF-02"; "DF-03"; "DF-04"; "DF-05"; "DF-06"; "HDL-12";
      "HDL-13" ];
  if !failures > 0 then begin
    Printf.eprintf "lint-demo: %d failure(s)\n" !failures;
    exit 1
  end

let default_mode () =
  let m, design = demo_model () in
  let diags = Lint.Check.check ~design m in
  report "demo_soc" diags;
  let again = Lint.Check.check ~design m in
  if
    Lint.Report.to_json ~model:"demo_soc" diags
    <> Lint.Report.to_json ~model:"demo_soc" again
  then complain "demo_soc lint report is not deterministic";

  (* a seeded workload spread standing in for user models *)
  List.iter
    (fun seed ->
      Ident.reset_counter ();
      let m = Workload.Gen_model.structural ~seed ~classes:20 in
      Model.add m
        (Model.E_state_machine
           (Workload.Gen_statechart.hierarchical ~seed ~depth:3 ~breadth:2
              ~events:4));
      Model.add m
        (Model.E_activity
           (Workload.Gen_activity.with_decisions ~seed ~size:14 ~max_width:3));
      report (Printf.sprintf "workload(seed=%d)" seed)
        (Lint.Check.check_model m))
    [ 1; 7; 42 ];

  if !failures > 0 then begin
    Printf.eprintf "lint-demo: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "lint-demo: all models clean of lint errors"

let () =
  if Array.exists (fun a -> a = "--dataflow") Sys.argv then dataflow_mode ()
  else default_mode ()
