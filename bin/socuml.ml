(* socuml — command-line front end for the UML-2.0-for-SoC toolchain.

   Subcommands:
     validate   check a model (.xmi) against the well-formedness rules
     lint       whole-model static analysis (ASL, statecharts,
                activities, components, generated HDL)
     info       summarize a model's contents
     gen        generate code (vhdl | verilog | systemc | c) from a model
     simulate   run a state machine from the model on an event sequence
                (--rtl: as compiled RTL on the discrete-event engine)
     trace      like simulate, but dump the structured telemetry events
     partition  partition a task graph extracted from an activity
     inject     run a deterministic fault-injection campaign across the
                RTL, statechart and token execution engines
     pack       convert a model to a versioned binary snapshot (.sumb)
     demo       build the demo SoC, write XMI + VHDL + VCD artifacts *)

open Cmdliner

let read_file_bytes path =
  let ic = open_in_bin path in
  match really_input_string ic (in_channel_length ic) with
  | data ->
    close_in ic;
    data
  | exception e ->
    close_in_noerr ic;
    raise e

(* Hostile inputs (unreadable path, truncated or corrupt XMI or
   snapshot, a directory passed as a file) must produce a one-line
   diagnostic and exit 1 — never an exception trace.  The format is
   auto-detected by magic bytes, so every subcommand accepts .sumb
   snapshots and .xmi models interchangeably. *)
let load_model path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else if Sys.is_directory path then
    Error (Printf.sprintf "%s: is a directory, not a model file" path)
  else
    match
      let data = read_file_bytes path in
      if Snap.Read.is_snapshot data then Snap.Read.model_of_string data
      else Xmi.Read.model_of_string data
    with
    | m -> Ok m
    | exception Xmi.Read.Import_error msg ->
      Error (Printf.sprintf "cannot import %s: %s" path msg)
    | exception Snap.Read.Import_error msg ->
      Error (Printf.sprintf "cannot import %s: %s" path msg)
    | exception Sys_error msg -> Error msg
    | exception exn ->
      Error (Printf.sprintf "cannot import %s: %s" path (Printexc.to_string exn))

(* Every model-consuming subcommand funnels through this, so the load
   path and its diagnostics can never drift between subcommands. *)
let with_model path f =
  match load_model path with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok m -> f m

(* Last-resort guard for every subcommand body: downstream failures on
   adversarial models (simulation, execution, generation) become
   diagnostics, not crashes. *)
let guarded f =
  match f () with
  | code -> code
  | exception Xmi.Read.Import_error msg ->
    prerr_endline msg;
    1
  | exception Dsim.Sim.Simulation_error msg ->
    prerr_endline msg;
    1
  | exception Statechart.Engine.Model_error msg ->
    prerr_endline msg;
    1
  | exception Sys_error msg ->
    prerr_endline msg;
    1
  | exception Invalid_argument msg ->
    prerr_endline msg;
    1
  | exception Failure msg ->
    prerr_endline msg;
    1

let model_arg =
  (* deliberately a plain string: existence and file-kind checks live in
     [load_model], so every subcommand reports bad paths the same way
     (one line on stderr, exit 1) instead of cmdliner's exit 124 *)
  let doc = "Input model in socuml XMI form." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel phases.  Purely a throughput knob: \
     every job count produces byte-identical output."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Validate --jobs and run the body with a pool (no worker domains when
   [jobs = 1], so the sequential paths stay exactly as before). *)
let with_jobs jobs f =
  if jobs < 1 then begin
    prerr_endline "--jobs must be at least 1";
    1
  end
  else Exec.Pool.with_pool ~jobs f

(* --- validate ------------------------------------------------------- *)

let format_arg =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let validate_cmd =
  let run path format =
    guarded @@ fun () ->
    with_model path @@ fun m ->
      let diags = Uml.Wfr.check m in
      let soc = Profiles.Soc_profile.check m in
      let rt = Profiles.Rt_profile.check m in
      let all = diags @ soc @ rt in
      (match format with
       | `Json -> print_string (Lint.Report.to_json ~model:(Uml.Model.name m) all)
       | `Text ->
         List.iter (fun d -> print_endline (Uml.Wfr.to_string d)) all;
         Printf.printf "%d diagnostics (%d errors, %d warnings) in %s\n"
           (List.length all)
           (List.length (Uml.Wfr.errors all))
           (List.length (Uml.Wfr.warnings all))
           (Uml.Model.name m));
      if Uml.Wfr.errors all = [] then 0 else 1
  in
  let doc = "Check a model against UML and SoC-profile well-formedness rules." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ model_arg $ format_arg)

(* --- lint ----------------------------------------------------------- *)

let only_arg =
  let doc =
    "Run only the given rules (repeatable, comma-separable).  A value is \
     a rule code like $(b,SC-03) or a family prefix like $(b,ASL)."
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"RULES" ~doc)

let disable_arg =
  let doc = "Disable the given rules (repeatable, comma-separable)." in
  Arg.(value & opt_all string [] & info [ "disable" ] ~docv:"RULES" ~doc)

let no_hdl_arg =
  let doc = "Skip deriving the HDL design (disables the HDL-* rules)." in
  Arg.(value & flag & info [ "no-hdl" ] ~doc)

let split_selectors values =
  List.concat_map
    (fun v -> List.filter (fun s -> s <> "") (String.split_on_char ',' v))
    values

let selection_of only disable =
  let only = split_selectors only and disable = split_selectors disable in
  Lint.Rules.selection_of_strings
    ?only:(match only with [] -> None | l -> Some l)
    ~disabled:disable ()

(* A selector that matches no registered rule is a user error: reject
   it up front (a silently ignored --only/--disable would lint with a
   different rule set than the user asked for). *)
let reject_unknown_selectors selection =
  match Lint.Rules.unknown_selectors selection with
  | [] -> Ok ()
  | unknown ->
    Error
      (Printf.sprintf "unknown rule selector%s: %s (see `socuml rules`)"
         (match unknown with [ _ ] -> "" | _ -> "s")
         (String.concat ", " unknown))

let models_arg =
  (* plain strings for the same reason as [model_arg] *)
  let doc = "Input models in socuml XMI form (one or more)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"MODEL" ~doc)

let lint_cmd =
  let run paths format only disable no_hdl jobs =
    guarded @@ fun () ->
    let selection = selection_of only disable in
    match reject_unknown_selectors selection with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok () ->
    (* One task per model: load, derive the HDL design (the netlist the
       MDA flow would generate, so lint sees the same design as `gen`),
       check, and render off-line; the rendered reports are printed in
       input order afterwards, so multi-model output never depends on
       the job count. *)
    let lint_one path =
      match load_model path with
      | Error msg -> Error msg
      | Ok m ->
        let design =
          if no_hdl then None
          else (Mda.Generate.hw_design m).Mda.Generate.design
        in
        let diags = Lint.Check.check ~selection ?design m in
        let rendered =
          match format with
          | `Json -> Lint.Report.to_json ~model:(Uml.Model.name m) diags
          | `Text -> Lint.Report.to_text ~model:(Uml.Model.name m) diags
        in
        Ok (rendered, Uml.Wfr.errors diags <> [])
    in
    with_jobs jobs @@ fun pool ->
    let results = Exec.Pool.map_list pool lint_one paths in
    let code = ref 0 in
    List.iter
      (fun result ->
        match result with
        | Error msg ->
          prerr_endline msg;
          code := 1
        | Ok (rendered, has_errors) ->
          print_string rendered;
          if has_errors then code := 1)
      results;
    !code
  in
  let doc =
    "Run whole-model static analysis: embedded ASL behaviors, statechart \
     topology, activity token flow, component wiring, and the generated \
     HDL design.  Accepts several models (linted in parallel with \
     $(b,--jobs), reported in argument order).  Exits nonzero when any \
     error-severity diagnostic is reported."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ models_arg $ format_arg $ only_arg $ disable_arg
      $ no_hdl_arg $ jobs_arg)

(* --- info ----------------------------------------------------------- *)

let info_cmd =
  let run path =
    guarded @@ fun () ->
    with_model path @@ fun m ->
      Printf.printf "model %s: %d elements\n" (Uml.Model.name m)
        (Uml.Model.size m);
      let count label n = if n > 0 then Printf.printf "  %-16s %d\n" label n in
      count "classifiers" (List.length (Uml.Model.classifiers m));
      count "components" (List.length (Uml.Model.components m));
      count "state machines" (List.length (Uml.Model.state_machines m));
      count "activities" (List.length (Uml.Model.activities m));
      count "interactions" (List.length (Uml.Model.interactions m));
      count "use cases" (List.length (Uml.Model.use_cases m));
      count "packages" (List.length (Uml.Model.packages m));
      count "profiles" (List.length (Uml.Model.profiles m));
      count "applications" (List.length (Uml.Model.applications m));
      count "diagrams" (List.length (Uml.Model.diagrams m));
      0
  in
  let doc = "Summarize a model's contents." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ model_arg)

(* --- gen ------------------------------------------------------------ *)

let language_arg =
  let doc = "Target language: vhdl, verilog, systemc or c." in
  Arg.(
    required
    & pos 1 (some (enum [ ("vhdl", "vhdl"); ("verilog", "verilog");
                          ("systemc", "systemc"); ("c", "c") ])) None
    & info [] ~docv:"LANG" ~doc)

let gen_cmd =
  let run path lang =
    guarded @@ fun () ->
    with_model path @@ fun m ->
      let plat =
        match lang with
        | "vhdl" -> Mda.Platform.asic_vhdl
        | "verilog" -> Mda.Platform.fpga_verilog
        | "systemc" -> Mda.Platform.virtual_systemc
        | _c -> Mda.Platform.sw_c
      in
      let psm, trace = Mda.Mapping.to_psm plat m in
      Printf.printf "-- PSM %s (reuse %.0f%%)\n" (Uml.Model.name psm)
        (100. *. Mda.Transform.reuse_fraction trace);
      (match Mda.Generate.artifacts plat psm with
       | [] ->
         prerr_endline "no generatable content (no compilable state machines)";
         1
       | artifacts ->
         List.iter
           (fun (file, contents) ->
             Printf.printf "-- %s (%d lines)\n%s\n" file
               (Mda.Generate.loc contents) contents)
           artifacts;
         0)
  in
  let doc = "Run the PIM->PSM mapping and print the generated code." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ model_arg $ language_arg)

(* --- simulate --------------------------------------------------------- *)

let events_arg =
  let doc = "Comma-separated event names to dispatch." in
  Arg.(value & opt string "" & info [ "events" ] ~docv:"EVENTS" ~doc)

let machine_arg =
  let doc = "Name of the state machine to run (default: first)." in
  Arg.(value & opt (some string) None & info [ "machine" ] ~docv:"NAME" ~doc)

let metrics_arg =
  let doc = "Collect telemetry and print the metrics report." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let split_events events =
  if events = "" then [] else String.split_on_char ',' events

let choose_machine m machine =
  let machines = Uml.Model.state_machines m in
  match machine with
  | Some name ->
    List.find_opt (fun sm -> sm.Uml.Smachine.sm_name = name) machines
  | None -> (
    match machines with
    | sm :: _rest -> Some sm
    | [] -> None)

(* Run the chosen state machine on the event list; when telemetry is
   live, also run every activity of the model so one registry covers
   the statechart, activity and ASL engines. *)
let run_engines_exn ?(echo = false) reg m sm names =
  let interp = Asl.Interp.create ~metrics:reg (Asl.Store.create ()) in
  let engine = Statechart.Engine.create ~interp ~metrics:reg sm in
  Statechart.Engine.start engine;
  if echo then
    Printf.printf "start: %s\n" (Statechart.Engine.signature engine);
  List.iter
    (fun ev ->
      Statechart.Engine.dispatch engine (Statechart.Event.make ev);
      if echo then
        Printf.printf "%s: %s\n" ev (Statechart.Engine.signature engine))
    names;
  if Telemetry.Metrics.live reg then
    List.iter
      (fun act ->
        let exec = Activity.Exec.create ~metrics:reg act in
        ignore (Activity.Exec.run ~seed:1 exec))
      (Uml.Model.activities m)

(* Model-level failures (bad ASL in a guard or effect, broken topology)
   are user errors, not crashes: print the diagnostic, exit nonzero. *)
let run_engines ?echo reg m sm names =
  match run_engines_exn ?echo reg m sm names with
  | () -> true
  | exception Statechart.Engine.Model_error msg ->
    prerr_endline msg;
    false

(* --rtl path: compile the machine to a synthesizable FSM and run the
   event sequence as single-cycle strobes on the compiled
   discrete-event engine, echoing the state register after each edge
   in the same format as the statechart path. *)
let run_rtl_exn reg sm names =
  match Statechart.Flatten.flatten sm with
  | Error reason ->
    prerr_endline reason;
    false
  | Ok flat -> (
    match Codegen.Fsm_compile.compile flat with
    | Error reason ->
      prerr_endline reason;
      false
    | Ok hmod ->
      let sim = Dsim.Fast.create ~metrics:reg hmod in
      Dsim.Fast.set_input sim "rst" 1;
      Dsim.Fast.clock_edge sim "clk";
      Dsim.Fast.set_input sim "rst" 0;
      Printf.printf "start: %s\n" (Dsim.Fast.get_enum sim "state");
      List.iter
        (fun ev ->
          let port = Codegen.Fsm_compile.event_input ev in
          Dsim.Fast.set_input sim port 1;
          Dsim.Fast.clock_edge sim "clk";
          Dsim.Fast.set_input sim port 0;
          Printf.printf "%s: %s\n" ev (Dsim.Fast.get_enum sim "state"))
        names;
      true)

let run_rtl reg sm names =
  match run_rtl_exn reg sm names with
  | ok -> ok
  | exception Dsim.Sim.Simulation_error msg ->
    prerr_endline msg;
    false

let rtl_arg =
  let doc =
    "Compile the state machine to RTL and run it on the discrete-event \
     simulator instead of the statechart engine."
  in
  Arg.(value & flag & info [ "rtl" ] ~doc)

let simulate_cmd =
  let run path machine events metrics rtl =
    guarded @@ fun () ->
    with_model path @@ fun m ->
    (match choose_machine m machine with
      | None ->
        prerr_endline "no such state machine in the model";
        1
      | Some sm ->
        let reg =
          if metrics then Telemetry.Metrics.create ()
          else Telemetry.Metrics.null
        in
        let names = split_events events in
        let ok =
          if rtl then run_rtl reg sm names
          else run_engines ~echo:true reg m sm names
        in
        if metrics then print_string (Telemetry.Metrics.report reg);
        if ok then 0 else 1)
  in
  let doc =
    "Execute a state machine of the model on an event sequence, either \
     on the statechart engine or (with $(b,--rtl)) as compiled RTL on \
     the discrete-event simulator."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ model_arg $ machine_arg $ events_arg $ metrics_arg $ rtl_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let run path machine events =
    guarded @@ fun () ->
    with_model path @@ fun m ->
    (match choose_machine m machine with
      | None ->
        prerr_endline "no such state machine in the model";
        1
      | Some sm ->
        let reg = Telemetry.Metrics.create () in
        let ok = run_engines reg m sm (split_events events) in
        let events = Telemetry.Metrics.events reg in
        List.iter
          (fun ev -> print_endline (Telemetry.Metrics.render_event ev))
          events;
        Printf.printf "%d events recorded, %d dropped\n" (List.length events)
          (Telemetry.Metrics.events_dropped reg);
        if ok then 0 else 1)
  in
  let doc =
    "Run a state machine (and the model's activities) like simulate, \
     dumping the structured telemetry event log."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ model_arg $ machine_arg $ events_arg)

(* --- partition --------------------------------------------------------- *)

let budget_arg =
  let doc = "Hardware area budget." in
  Arg.(value & opt int 500 & info [ "budget" ] ~docv:"AREA" ~doc)

let partition_cmd =
  let run path budget =
    guarded @@ fun () ->
    with_model path @@ fun m ->
    (match Uml.Model.activities m with
      | [] ->
        prerr_endline "no activity in the model";
        1
      | act :: _rest ->
        let g = Hwsw.Taskgraph.of_activity act in
        let greedy = Hwsw.Partition.greedy ~budget g in
        let improved = Hwsw.Partition.improve ~budget g in
        let all_sw =
          (Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g)).Hwsw.Schedule.makespan
        in
        Printf.printf "activity %s: %d tasks, all-SW makespan %d\n"
          act.Uml.Activityg.ac_name
          (List.length g.Hwsw.Taskgraph.tasks)
          all_sw;
        Printf.printf "greedy:   makespan %d, area %d (%d evals)\n"
          greedy.Hwsw.Partition.cost greedy.Hwsw.Partition.area
          greedy.Hwsw.Partition.evaluations;
        Printf.printf "improved: makespan %d, area %d (%d evals)\n"
          improved.Hwsw.Partition.cost improved.Hwsw.Partition.area
          improved.Hwsw.Partition.evaluations;
        List.iter
          (fun (task, side) ->
            Printf.printf "  %-12s %s\n" task
              (match side with
               | Hwsw.Schedule.Hw -> "HW"
               | Hwsw.Schedule.Sw -> "SW"))
          improved.Hwsw.Partition.assignment;
        0)
  in
  let doc = "Extract a task graph from the model's first activity and partition it." in
  Cmd.v (Cmd.info "partition" ~doc) Term.(const run $ model_arg $ budget_arg)

(* --- demo ------------------------------------------------------------- *)

let out_dir_arg =
  let doc = "Output directory for demo artifacts." in
  Arg.(value & opt string "_demo" & info [ "out" ] ~docv:"DIR" ~doc)

let demo_cmd =
  let run dir =
    guarded @@ fun () ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let m = Uml.Model.create "demo_soc" in
    let profile = Profiles.Soc_profile.install m in
    let instances =
      [ ("timer0", Iplib.Cores.timer ()); ("gpio0", Iplib.Cores.gpio ());
        ("fifo0", Iplib.Cores.fifo4 ()) ]
    in
    let _soc = Iplib.Soc.component m ~profile ~name:"DemoSoc" instances in
    (* a behavioral slice too, so analyze/simulate/partition have work *)
    Uml.Model.add m
      (Uml.Model.E_activity
         (Workload.Gen_activity.series_parallel ~seed:42 ~size:12
            ~max_width:3));
    let a = Uml.Smachine.simple_state "Off" in
    let b = Uml.Smachine.simple_state "On" in
    let init = Uml.Smachine.pseudostate Uml.Smachine.Initial in
    let region =
      Uml.Smachine.region
        [ Uml.Smachine.Pseudo init; Uml.Smachine.State a; Uml.Smachine.State b ]
        [
          Uml.Smachine.transition ~source:init.Uml.Smachine.ps_id
            ~target:a.Uml.Smachine.st_id ();
          Uml.Smachine.transition
            ~triggers:[ Uml.Smachine.Signal_trigger "toggle" ]
            ~source:a.Uml.Smachine.st_id ~target:b.Uml.Smachine.st_id ();
          Uml.Smachine.transition
            ~triggers:[ Uml.Smachine.Signal_trigger "toggle" ]
            ~source:b.Uml.Smachine.st_id ~target:a.Uml.Smachine.st_id ();
        ]
    in
    Uml.Model.add m
      (Uml.Model.E_state_machine (Uml.Smachine.make "Power" [ region ]));
    let xmi_path = Filename.concat dir "demo_soc.xmi" in
    Xmi.Write.write_file m xmi_path;
    let d = Iplib.Soc.design ~name:"demo_soc" instances in
    let vhdl_path = Filename.concat dir "demo_soc.vhd" in
    let oc = open_out vhdl_path in
    output_string oc (Codegen.Vhdl.of_design d);
    close_out oc;
    let flat = Hdl.Elaborate.flatten d in
    let sim = Dsim.Fast.create flat in
    let vcd = Dsim.Vcd.create_fast sim in
    Dsim.Fast.set_input sim "rst" 1;
    Dsim.Fast.clock_edge sim "clk";
    Dsim.Fast.set_input sim "rst" 0;
    Dsim.Fast.set_input sim "timer0_enable" 1;
    for t = 0 to 19 do
      Dsim.Fast.clock_edge sim "clk";
      Dsim.Vcd.sample vcd ~time:t
    done;
    let vcd_path = Filename.concat dir "demo_soc.vcd" in
    Dsim.Vcd.write_file vcd vcd_path;
    Printf.printf "wrote %s, %s, %s\n" xmi_path vhdl_path vcd_path;
    Printf.printf "timer count after 20 cycles: %d\n"
      (Dsim.Fast.get sim "timer0_count");
    0
  in
  let doc = "Build the demo SoC and write XMI, VHDL and VCD artifacts." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ out_dir_arg)

(* --- analyze ------------------------------------------------------------ *)

let analyze_cmd =
  let run path metrics only disable jobs =
    guarded @@ fun () ->
    let selection = selection_of only disable in
    match reject_unknown_selectors selection with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok () ->
    with_model path @@ fun m ->
    (match Uml.Model.activities m with
      | [] ->
        prerr_endline "no activity in the model";
        1
      | activities ->
        with_jobs jobs @@ fun pool ->
        let reg =
          if metrics then Telemetry.Metrics.create ()
          else Telemetry.Metrics.null
        in
        List.iter
          (fun act ->
            Printf.printf "activity %s:\n" act.Uml.Activityg.ac_name;
            let net, m0 = Activity.Translate.to_petri act in
            Printf.printf "  net: %d places, %d transitions\n"
              (Petri.Net.place_count net)
              (Petri.Net.transition_count net);
            (match Petri.Coverability.is_bounded net m0 with
             | Some true -> print_endline "  bounded: yes"
             | Some false ->
               let r = Petri.Coverability.analyse net m0 in
               Printf.printf "  bounded: NO (unbounded places: %s)\n"
                 (String.concat ", " r.Petri.Coverability.unbounded_places)
             | None -> print_endline "  bounded: unknown (limit reached)");
            let r =
              Petri.Analysis.reachable ~limit:5000 ~metrics:reg ~pool net m0
            in
            Printf.printf "  reachable markings: %d%s, deadlocks: %d\n"
              r.Petri.Analysis.state_count
              (if r.Petri.Analysis.truncated then "+" else "")
              (List.length r.Petri.Analysis.deadlocks);
            let invariants = Petri.Invariant.p_invariants net in
            Printf.printf "  P-invariants: %d\n" (List.length invariants);
            (* dead-transition verdicts are only meaningful when the
               state space was fully explored *)
            if not r.Petri.Analysis.truncated then begin
              let dead =
                Petri.Analysis.dead_transitions ~limit:5000 ~pool net m0
              in
              if dead <> [] then
                Printf.printf "  dead transitions: %s\n"
                  (String.concat ", " dead)
            end)
          activities;
        let lint = Lint.Check.check_model ~selection ~metrics:reg m in
        if lint <> [] then begin
          print_endline "lint:";
          List.iter
            (fun d -> Printf.printf "  %s\n" (Uml.Wfr.to_string d))
            lint
        end;
        if metrics then print_string (Telemetry.Metrics.report reg);
        0)
  in
  let doc =
    "Translate the model's activities to Petri nets and analyze them \
     (boundedness, deadlocks, invariants, lint).  $(b,--only) and \
     $(b,--disable) select the lint rules, as for $(b,socuml lint)."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ model_arg $ metrics_arg $ only_arg $ disable_arg
          $ jobs_arg)

(* --- inject ------------------------------------------------------------ *)

(* The signal-trigger alphabet of a machine, sorted and deduplicated —
   the stimulus events a fault campaign perturbs. *)
let machine_event_alphabet (sm : Uml.Smachine.t) =
  let rec region_events (r : Uml.Smachine.region) =
    List.concat_map
      (fun (tr : Uml.Smachine.transition) ->
        List.filter_map
          (fun trg ->
            match trg with
            | Uml.Smachine.Signal_trigger name -> Some name
            | Uml.Smachine.Time_trigger _ | Uml.Smachine.Any_trigger
            | Uml.Smachine.Completion ->
              None)
          tr.Uml.Smachine.tr_triggers)
      r.Uml.Smachine.rg_transitions
    @ List.concat_map
        (fun v ->
          match v with
          | Uml.Smachine.State s ->
            List.concat_map region_events s.Uml.Smachine.st_regions
          | Uml.Smachine.Pseudo _ | Uml.Smachine.Final _ -> [])
        r.Uml.Smachine.rg_vertices
  in
  List.sort_uniq String.compare
    (List.concat_map region_events sm.Uml.Smachine.sm_regions)

(* Fault targets of a flat RTL module: every port and signal except the
   clock and reset, with bit widths for bit-flip positions. *)
let rtl_fault_surface (hmod : Hdl.Module_.t) =
  let keep name = name <> "clk" && name <> "rst" in
  List.filter_map
    (fun (p : Hdl.Module_.port) ->
      if keep p.Hdl.Module_.port_name then
        Some (p.Hdl.Module_.port_name, Hdl.Htype.width p.Hdl.Module_.port_type)
      else None)
    hmod.Hdl.Module_.mod_ports
  @ List.map
      (fun (s : Hdl.Module_.signal) ->
        (s.Hdl.Module_.sig_name, Hdl.Htype.width s.Hdl.Module_.sig_type))
      hmod.Hdl.Module_.mod_signals

let seed_arg =
  let doc = "Campaign seed (fault plan and run choices derive from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc = "Number of faults to plan across the model's domains." in
  Arg.(value & opt int 12 & info [ "faults" ] ~docv:"N" ~doc)

let inject_cmd =
  let run path machine seed faults format metrics jobs =
    guarded @@ fun () ->
    with_model path @@ fun m ->
      if faults < 0 then begin
        prerr_endline "--faults must be non-negative";
        1
      end
      else begin
        with_jobs jobs @@ fun pool ->
        let reg =
          if metrics then Telemetry.Metrics.create ()
          else Telemetry.Metrics.null
        in
        let stimulus_length = 16 in
        (* statechart + RTL domains from the chosen state machine *)
        let sm =
          match choose_machine m machine with
          | Some sm when machine_event_alphabet sm <> [] -> Some sm
          | Some _ | None -> None
        in
        let alphabet =
          match sm with
          | Some sm -> machine_event_alphabet sm
          | None -> []
        in
        let events =
          match alphabet with
          | [] -> []
          | alphabet ->
            let rng = Workload.Prng.create (seed lxor 0x5bd1) in
            List.init stimulus_length (fun _i ->
                Workload.Prng.pick rng alphabet)
        in
        let sc_spec =
          Option.map
            (fun sm ->
              {
                Fault.Campaign.ss_machine = sm;
                ss_events = events;
                ss_budget = 1000;
              })
            sm
        in
        let rtl_spec =
          Option.bind sm (fun sm ->
              match Statechart.Flatten.flatten sm with
              | Error _reason -> None
              | Ok flat -> (
                match Codegen.Fsm_compile.compile flat with
                | Error _reason -> None
                | Ok hmod ->
                  (* one single-cycle strobe per stimulus event: clear
                     the previous strobe, raise the current one *)
                  let stimulus =
                    List.mapi
                      (fun i ev ->
                        let clear =
                          if i = 0 then []
                          else
                            [
                              ( Codegen.Fsm_compile.event_input
                                  (List.nth events (i - 1)),
                                0 );
                            ]
                        in
                        ( i,
                          clear
                          @ [ (Codegen.Fsm_compile.event_input ev, 1) ] ))
                      events
                  in
                  Some
                    {
                      Fault.Campaign.rs_module = hmod;
                      rs_clock = "clk";
                      rs_reset = Some "rst";
                      rs_stimulus = stimulus;
                      rs_cycles = stimulus_length;
                      rs_settle_budget = 1000;
                    }))
        in
        (* token domain from the first activity *)
        let act_spec, net_spec =
          match Uml.Model.activities m with
          | [] -> (None, None)
          | act :: _rest ->
            let net, m0 = Activity.Translate.to_petri act in
            ( Some
                {
                  Fault.Campaign.ac_activity = act;
                  ac_choice_seed = seed;
                  ac_max_steps = 10_000;
                },
              Some
                {
                  Fault.Campaign.np_net = net;
                  np_marking = m0;
                  np_choice_seed = seed;
                  np_max_steps = 10_000;
                } )
        in
        let surface =
          {
            Fault.Plan.su_signals =
              (match rtl_spec with
               | Some spec ->
                 rtl_fault_surface spec.Fault.Campaign.rs_module
               | None -> []);
            su_cycles = stimulus_length;
            su_events = alphabet;
            su_length = stimulus_length;
            su_places =
              (match net_spec with
               | Some spec ->
                 List.map
                   (fun (p : Petri.Net.place) -> p.Petri.Net.pl_id)
                   spec.Fault.Campaign.np_net.Petri.Net.places
               | None -> []);
            su_steps = 32;
          }
        in
        let plan = Fault.Plan.generate ~seed ~count:faults surface in
        let report =
          Fault.Campaign.run ~metrics:reg ~pool ?rtl:rtl_spec
            ?statechart:sc_spec ?activity:act_spec ?net:net_spec
            ~label:(Uml.Model.name m) plan
        in
        (match format with
         | `Text -> print_string (Fault.Campaign.to_text report)
         | `Json -> print_string (Fault.Campaign.to_json report));
        if metrics then print_string (Telemetry.Metrics.report reg);
        0
      end
  in
  let doc =
    "Run a deterministic fault-injection campaign against the model: a \
     seeded fault plan perturbs RTL signals on the compiled \
     discrete-event engine, the event stream feeding the statechart \
     engine, and token markings of the activity/Petri engines; every \
     injected run is classified masked / detected / silent / truncated \
     against the golden run."
  in
  Cmd.v (Cmd.info "inject" ~doc)
    Term.(
      const run $ model_arg $ machine_arg $ seed_arg $ faults_arg $ format_arg
      $ metrics_arg $ jobs_arg)

(* --- pack ------------------------------------------------------------- *)

let pack_out_arg =
  let doc =
    "Output snapshot path (default: the input path with its extension \
     replaced by $(b,.sumb))."
  in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"OUT" ~doc)

let pack_cmd =
  let run path out =
    guarded @@ fun () ->
    with_model path @@ fun m ->
    let out =
      match out with
      | Some out -> out
      | None -> Filename.remove_extension path ^ ".sumb"
    in
    let data = Snap.Write.to_string m in
    let oc = open_out_bin out in
    (match output_string oc data with
     | () -> close_out oc
     | exception e ->
       close_out_noerr oc;
       raise e);
    Printf.printf "wrote %s (%d bytes, %d elements)\n" out
      (String.length data) (Uml.Model.size m);
    0
  in
  let doc =
    "Pack a model into the versioned binary snapshot format \
     ($(b,.sumb)).  Every subcommand auto-detects the format by magic \
     bytes, so snapshots are accepted wherever an XMI model is; loading \
     one skips the XML parse entirely."
  in
  Cmd.v (Cmd.info "pack" ~doc) Term.(const run $ model_arg $ pack_out_arg)

let rules_cmd =
  let run format =
    guarded @@ fun () ->
    (match format with
     | `Text -> print_string (Lint.Report.rules_to_text ())
     | `Json -> print_string (Lint.Report.rules_to_json ()));
    0
  in
  let doc =
    "Print the registered lint rule table (code, severity, summary). \
     The codes listed here are exactly the selectors accepted by \
     $(b,--only) and $(b,--disable)."
  in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const run $ format_arg)

let main =
  let doc = "UML 2.0 modeling and MDA toolchain for SoC design" in
  Cmd.group
    (Cmd.info "socuml" ~version:"1.0.0" ~doc)
    [
      validate_cmd; lint_cmd; info_cmd; gen_cmd; simulate_cmd; trace_cmd;
      partition_cmd; analyze_cmd; inject_cmd; pack_cmd; rules_cmd; demo_cmd;
    ]

let () = exit (Cmd.eval' main)
