(* socuml — command-line front end for the UML-2.0-for-SoC toolchain.

   Subcommands:
     validate   check a model (.xmi) against the well-formedness rules
     lint       whole-model static analysis (ASL, statecharts,
                activities, components, generated HDL)
     info       summarize a model's contents
     gen        generate code (vhdl | verilog | systemc | c) from a model
     simulate   run a state machine from the model on an event sequence
                (--rtl: as compiled RTL on the discrete-event engine)
     trace      like simulate, but dump the structured telemetry events
     partition  partition a task graph extracted from an activity
     inject     run a deterministic fault-injection campaign across the
                RTL, statechart and token execution engines
     pack       convert a model to a versioned binary snapshot (.sumb)
     serve      long-running daemon: JSON requests over stdin or a Unix
                socket, with a content-hash compiled-artifact cache
     demo       build the demo SoC, write XMI + VHDL + VCD artifacts

   The op bodies live in [Serve.Ops], shared verbatim with the serve
   daemon so one-shot and daemon output are byte-identical; this file
   is only cmdliner plumbing plus the two subcommands ([serve], [demo])
   that are not model ops. *)

open Cmdliner

let sink = Serve.Ops.std_sink
let guarded f = Serve.Ops.guarded sink f
let with_model path f = Serve.Ops.with_artifacts sink Serve.Ops.load_artifacts path f

let model_arg =
  (* deliberately a plain string: existence and file-kind checks live in
     [Serve.Load], so every subcommand reports bad paths the same way
     (one line on stderr, exit 1) instead of cmdliner's exit 124 *)
  let doc = "Input model in socuml XMI form." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel phases.  Purely a throughput knob: \
     every job count produces byte-identical output."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* --- validate ------------------------------------------------------- *)

let format_arg =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let validate_cmd =
  let run path format =
    guarded @@ fun () ->
    with_model path @@ Serve.Ops.validate sink ~format
  in
  let doc = "Check a model against UML and SoC-profile well-formedness rules." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ model_arg $ format_arg)

(* --- lint ----------------------------------------------------------- *)

let only_arg =
  let doc =
    "Run only the given rules (repeatable, comma-separable).  A value is \
     a rule code like $(b,SC-03) or a family prefix like $(b,ASL)."
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"RULES" ~doc)

let disable_arg =
  let doc = "Disable the given rules (repeatable, comma-separable)." in
  Arg.(value & opt_all string [] & info [ "disable" ] ~docv:"RULES" ~doc)

let no_hdl_arg =
  let doc = "Skip deriving the HDL design (disables the HDL-* rules)." in
  Arg.(value & flag & info [ "no-hdl" ] ~doc)

let models_arg =
  (* plain strings for the same reason as [model_arg] *)
  let doc = "Input models in socuml XMI form (one or more)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"MODEL" ~doc)

let lint_cmd =
  let run paths format only disable no_hdl jobs =
    guarded @@ fun () ->
    Serve.Ops.lint sink ~format ~only ~disable ~no_hdl ~jobs
      Serve.Ops.load_artifacts paths
  in
  let doc =
    "Run whole-model static analysis: embedded ASL behaviors, statechart \
     topology, activity token flow, component wiring, and the generated \
     HDL design.  Accepts several models (linted in parallel with \
     $(b,--jobs), reported in argument order).  Exits nonzero when any \
     error-severity diagnostic is reported."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ models_arg $ format_arg $ only_arg $ disable_arg
      $ no_hdl_arg $ jobs_arg)

(* --- info ----------------------------------------------------------- *)

let info_cmd =
  let run path =
    guarded @@ fun () ->
    with_model path @@ Serve.Ops.info sink
  in
  let doc = "Summarize a model's contents." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ model_arg)

(* --- gen ------------------------------------------------------------ *)

let language_arg =
  let doc = "Target language: vhdl, verilog, systemc or c." in
  Arg.(
    required
    & pos 1 (some (enum [ ("vhdl", "vhdl"); ("verilog", "verilog");
                          ("systemc", "systemc"); ("c", "c") ])) None
    & info [] ~docv:"LANG" ~doc)

let gen_cmd =
  let run path lang =
    guarded @@ fun () ->
    with_model path @@ Serve.Ops.gen sink ~lang
  in
  let doc = "Run the PIM->PSM mapping and print the generated code." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ model_arg $ language_arg)

(* --- simulate --------------------------------------------------------- *)

let events_arg =
  let doc = "Comma-separated event names to dispatch." in
  Arg.(value & opt string "" & info [ "events" ] ~docv:"EVENTS" ~doc)

let machine_arg =
  let doc = "Name of the state machine to run (default: first)." in
  Arg.(value & opt (some string) None & info [ "machine" ] ~docv:"NAME" ~doc)

let metrics_arg =
  let doc = "Collect telemetry and print the metrics report." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_reg metrics =
  if metrics then Some (Telemetry.Metrics.create ()) else None

let rtl_arg =
  let doc =
    "Compile the state machine to RTL and run it on the discrete-event \
     simulator instead of the statechart engine."
  in
  Arg.(value & flag & info [ "rtl" ] ~doc)

let simulate_cmd =
  let run path machine events metrics rtl =
    guarded @@ fun () ->
    with_model path
    @@ Serve.Ops.simulate sink ~machine ~events ~metrics:(metrics_reg metrics)
         ~rtl
  in
  let doc =
    "Execute a state machine of the model on an event sequence, either \
     on the statechart engine or (with $(b,--rtl)) as compiled RTL on \
     the discrete-event simulator."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ model_arg $ machine_arg $ events_arg $ metrics_arg $ rtl_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let run path machine events =
    guarded @@ fun () ->
    with_model path @@ Serve.Ops.trace sink ~machine ~events
  in
  let doc =
    "Run a state machine (and the model's activities) like simulate, \
     dumping the structured telemetry event log."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ model_arg $ machine_arg $ events_arg)

(* --- partition --------------------------------------------------------- *)

let budget_arg =
  let doc = "Hardware area budget." in
  Arg.(value & opt int 500 & info [ "budget" ] ~docv:"AREA" ~doc)

let partition_cmd =
  let run path budget =
    guarded @@ fun () ->
    with_model path @@ Serve.Ops.partition sink ~budget
  in
  let doc = "Extract a task graph from the model's first activity and partition it." in
  Cmd.v (Cmd.info "partition" ~doc) Term.(const run $ model_arg $ budget_arg)

(* --- demo ------------------------------------------------------------- *)

let out_dir_arg =
  let doc = "Output directory for demo artifacts." in
  Arg.(value & opt string "_demo" & info [ "out" ] ~docv:"DIR" ~doc)

let demo_cmd =
  let run dir =
    guarded @@ fun () ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let m = Uml.Model.create "demo_soc" in
    let profile = Profiles.Soc_profile.install m in
    let instances =
      [ ("timer0", Iplib.Cores.timer ()); ("gpio0", Iplib.Cores.gpio ());
        ("fifo0", Iplib.Cores.fifo4 ()) ]
    in
    let _soc = Iplib.Soc.component m ~profile ~name:"DemoSoc" instances in
    (* a behavioral slice too, so analyze/simulate/partition have work *)
    Uml.Model.add m
      (Uml.Model.E_activity
         (Workload.Gen_activity.series_parallel ~seed:42 ~size:12
            ~max_width:3));
    let a = Uml.Smachine.simple_state "Off" in
    let b = Uml.Smachine.simple_state "On" in
    let init = Uml.Smachine.pseudostate Uml.Smachine.Initial in
    let region =
      Uml.Smachine.region
        [ Uml.Smachine.Pseudo init; Uml.Smachine.State a; Uml.Smachine.State b ]
        [
          Uml.Smachine.transition ~source:init.Uml.Smachine.ps_id
            ~target:a.Uml.Smachine.st_id ();
          Uml.Smachine.transition
            ~triggers:[ Uml.Smachine.Signal_trigger "toggle" ]
            ~source:a.Uml.Smachine.st_id ~target:b.Uml.Smachine.st_id ();
          Uml.Smachine.transition
            ~triggers:[ Uml.Smachine.Signal_trigger "toggle" ]
            ~source:b.Uml.Smachine.st_id ~target:a.Uml.Smachine.st_id ();
        ]
    in
    Uml.Model.add m
      (Uml.Model.E_state_machine (Uml.Smachine.make "Power" [ region ]));
    let xmi_path = Filename.concat dir "demo_soc.xmi" in
    Xmi.Write.write_file m xmi_path;
    let d = Iplib.Soc.design ~name:"demo_soc" instances in
    let vhdl_path = Filename.concat dir "demo_soc.vhd" in
    let oc = open_out vhdl_path in
    output_string oc (Codegen.Vhdl.of_design d);
    close_out oc;
    let flat = Hdl.Elaborate.flatten d in
    let sim = Dsim.Fast.create flat in
    let vcd = Dsim.Vcd.create_fast sim in
    Dsim.Fast.set_input sim "rst" 1;
    Dsim.Fast.clock_edge sim "clk";
    Dsim.Fast.set_input sim "rst" 0;
    Dsim.Fast.set_input sim "timer0_enable" 1;
    for t = 0 to 19 do
      Dsim.Fast.clock_edge sim "clk";
      Dsim.Vcd.sample vcd ~time:t
    done;
    let vcd_path = Filename.concat dir "demo_soc.vcd" in
    Dsim.Vcd.write_file vcd vcd_path;
    Printf.printf "wrote %s, %s, %s\n" xmi_path vhdl_path vcd_path;
    Printf.printf "timer count after 20 cycles: %d\n"
      (Dsim.Fast.get sim "timer0_count");
    0
  in
  let doc = "Build the demo SoC and write XMI, VHDL and VCD artifacts." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ out_dir_arg)

(* --- analyze ------------------------------------------------------------ *)

let analyze_cmd =
  let run path metrics only disable jobs =
    guarded @@ fun () ->
    Serve.Ops.analyze sink ~metrics:(metrics_reg metrics) ~only ~disable
      ~jobs Serve.Ops.load_artifacts path
  in
  let doc =
    "Translate the model's activities to Petri nets and analyze them \
     (boundedness, deadlocks, invariants, lint).  $(b,--only) and \
     $(b,--disable) select the lint rules, as for $(b,socuml lint)."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ model_arg $ metrics_arg $ only_arg $ disable_arg
          $ jobs_arg)

(* --- inject ------------------------------------------------------------ *)

let seed_arg =
  let doc = "Campaign seed (fault plan and run choices derive from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc = "Number of faults to plan across the model's domains." in
  Arg.(value & opt int 12 & info [ "faults" ] ~docv:"N" ~doc)

let inject_cmd =
  let run path machine seed faults format metrics jobs =
    guarded @@ fun () ->
    with_model path
    @@ Serve.Ops.inject sink ~machine ~seed ~faults ~format
         ~metrics:(metrics_reg metrics) ~jobs
  in
  let doc =
    "Run a deterministic fault-injection campaign against the model: a \
     seeded fault plan perturbs RTL signals on the compiled \
     discrete-event engine, the event stream feeding the statechart \
     engine, and token markings of the activity/Petri engines; every \
     injected run is classified masked / detected / silent / truncated \
     against the golden run."
  in
  Cmd.v (Cmd.info "inject" ~doc)
    Term.(
      const run $ model_arg $ machine_arg $ seed_arg $ faults_arg $ format_arg
      $ metrics_arg $ jobs_arg)

(* --- pack ------------------------------------------------------------- *)

let pack_out_arg =
  let doc =
    "Output snapshot path (default: the input path with its extension \
     replaced by $(b,.sumb))."
  in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"OUT" ~doc)

let pack_cmd =
  let run path out =
    guarded @@ fun () ->
    with_model path @@ Serve.Ops.pack sink ~out ~path
  in
  let doc =
    "Pack a model into the versioned binary snapshot format \
     ($(b,.sumb)).  Every subcommand auto-detects the format by magic \
     bytes, so snapshots are accepted wherever an XMI model is; loading \
     one skips the XML parse entirely."
  in
  Cmd.v (Cmd.info "pack" ~doc) Term.(const run $ model_arg $ pack_out_arg)

let rules_cmd =
  let run format =
    guarded @@ fun () ->
    (match format with
     | `Text -> print_string (Lint.Report.rules_to_text ())
     | `Json -> print_string (Lint.Report.rules_to_json ()));
    0
  in
  let doc =
    "Print the registered lint rule table (code, severity, summary). \
     The codes listed here are exactly the selectors accepted by \
     $(b,--only) and $(b,--disable)."
  in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const run $ format_arg)

(* --- serve ------------------------------------------------------------- *)

let socket_arg =
  let doc =
    "Listen on a Unix-domain socket at $(docv) instead of serving \
     stdin/stdout (one connection at a time; a $(b,quit) request stops \
     the daemon)."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let cache_entries_arg =
  let doc = "Maximum number of models resident in the artifact cache." in
  Arg.(value & opt int 64 & info [ "cache-entries" ] ~docv:"N" ~doc)

let cache_bytes_arg =
  let doc =
    "Byte budget for the artifact cache (entries are charged their \
     source-file size)."
  in
  Arg.(
    value
    & opt int (256 * 1024 * 1024)
    & info [ "cache-bytes" ] ~docv:"BYTES" ~doc)

let cache_dir_arg =
  let doc =
    "Persist cache entries as $(b,.sumb) snapshots under $(docv) (created \
     if missing) and refill from them on later misses — a restarted \
     daemon warms up without re-parsing XMI."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let asl_memo_cap_arg =
  let doc =
    "Cap the process-global ASL compilation memo at $(docv) entries per \
     table (least-recently-used eviction; default 4096)."
  in
  Arg.(
    value & opt (some int) None & info [ "asl-memo-cap" ] ~docv:"N" ~doc)

let deadline_ms_arg =
  let doc =
    "Server-wide wall-clock budget in milliseconds for \
     $(b,simulate)/$(b,analyze)/$(b,inject) requests (0 disables; a \
     request's own $(b,fuel)/$(b,deadline_ms) field overrides it).  \
     Expired requests answer a typed $(b,timeout) error; the daemon and \
     its caches keep serving."
  in
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let max_queue_arg =
  let doc =
    "Bound on buffered pending request lines; lines past it are \
     answered immediately with an $(b,overloaded) error instead of \
     buffering without bound."
  in
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)

let health_check_arg =
  let doc =
    "Don't serve: answer one $(b,health) probe and exit.  With \
     $(b,--socket), connects to the running daemon at that path; \
     otherwise reports an in-process daemon built from the given flags \
     (a configuration check)."
  in
  Arg.(value & flag & info [ "health-check" ] ~doc)

(* One health probe against a live daemon: connect, send the op, print
   the single response line.  Any failure (no daemon, refused, dead
   peer) is the standard one-line diagnostic + exit 1 via [guarded]. *)
let health_probe path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect sock (Unix.ADDR_UNIX path) with
       | () -> ()
       | exception Unix.Unix_error (err, _, _) ->
         failwith
           (Printf.sprintf "cannot connect to daemon at %s: %s" path
              (Unix.error_message err)));
      let req = "{\"op\":\"health\"}\n" in
      let _ = Unix.write_substring sock req 0 (String.length req) in
      let ic = Unix.in_channel_of_descr sock in
      match input_line ic with
      | line ->
        print_endline line;
        0
      | exception End_of_file ->
        failwith "daemon closed the connection without answering")

let serve_cmd =
  let run socket cache_entries cache_bytes cache_dir asl_cap deadline_ms
      max_queue health_check =
    guarded @@ fun () ->
    if health_check && socket <> None then
      health_probe (Option.get socket)
    else begin
      (match asl_cap with
       | Some cap -> Asl.Compiled.set_memo_cap cap
       | None -> ());
      let deadline_ms = if deadline_ms = 0 then None else Some deadline_ms in
      let daemon =
        Serve.Daemon.create ~max_entries:cache_entries ~max_bytes:cache_bytes
          ?persist_dir:cache_dir ?deadline_ms ~max_queue ()
      in
      if health_check then begin
        (match Serve.Daemon.handle_line daemon "{\"op\":\"health\"}" with
         | Some line, _ -> print_endline line
         | None, _ -> ());
        0
      end
      else begin
        (* graceful shutdown: drain pending lines with [shutting_down],
           flush persistence, remove the socket file *)
        let stop _ = Serve.Daemon.request_stop daemon in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        (match socket with
         | Some path -> Serve.Daemon.serve_socket daemon path
         | None -> Serve.Daemon.serve_channel daemon stdin stdout);
        0
      end
    end
  in
  let doc =
    "Run a persistent daemon: newline-delimited JSON requests mirroring \
     the subcommands (one response line per request, output \
     byte-identical to the one-shot CLI), with a content-hash LRU cache \
     of loaded models and their compiled artifacts so repeated requests \
     skip the load and lowering entirely.  Per-request deadlines, \
     overload shedding and SIGTERM/SIGINT draining are built in.  See \
     DESIGN.md for the protocol and its error-code table."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ cache_entries_arg $ cache_bytes_arg
      $ cache_dir_arg $ asl_memo_cap_arg $ deadline_ms_arg $ max_queue_arg
      $ health_check_arg)

let main =
  let doc = "UML 2.0 modeling and MDA toolchain for SoC design" in
  Cmd.group
    (Cmd.info "socuml" ~version:"1.0.0" ~doc)
    [
      validate_cmd; lint_cmd; info_cmd; gen_cmd; simulate_cmd; trace_cmd;
      partition_cmd; analyze_cmd; inject_cmd; pack_cmd; rules_cmd; serve_cmd;
      demo_cmd;
    ]

let () = exit (Cmd.eval' main)
