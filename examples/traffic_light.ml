(* Traffic light: a hierarchical state machine executed three ways —
   the UML engine, the flattened reference interpreter, and generated
   RTL in the discrete-event simulator — demonstrating the paper's
   "early prototyping and inherent software simulation" claim with an
   equivalence check across all three.

   Run with: dune exec examples/traffic_light.exe *)

open Uml

(* Operating: (Red -> Green -> Yellow -> Red); a top-level Flashing
   state is entered on [fault] and left on [clear]. *)
let build () =
  let red = Smachine.simple_state ~entry:"light := 0;" "Red" in
  let green = Smachine.simple_state ~entry:"light := 1;" "Green" in
  let yellow = Smachine.simple_state ~entry:"light := 2;" "Yellow" in
  let inner_init = Smachine.pseudostate Smachine.Initial in
  let inner =
    Smachine.region
      [
        Smachine.Pseudo inner_init;
        Smachine.State red;
        Smachine.State green;
        Smachine.State yellow;
      ]
      [
        Smachine.transition ~source:inner_init.Smachine.ps_id
          ~target:red.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "go" ]
          ~source:red.Smachine.st_id ~target:green.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "caution" ]
          ~source:green.Smachine.st_id ~target:yellow.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "stop" ]
          ~source:yellow.Smachine.st_id ~target:red.Smachine.st_id ();
      ]
  in
  let operating = Smachine.composite_state "Operating" [ inner ] in
  let flashing = Smachine.simple_state ~entry:"light := 3;" "Flashing" in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State operating;
        Smachine.State flashing ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:operating.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "fault" ]
          ~source:operating.Smachine.st_id ~target:flashing.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "clear" ]
          ~source:flashing.Smachine.st_id ~target:operating.Smachine.st_id ();
      ]
  in
  Smachine.make "traffic_light" [ top ]

let scenario =
  [ "go"; "caution"; "fault"; "go"; "clear"; "go"; "caution"; "stop" ]

(* Engine/flat names are qualified with '.' (Operating.Red); RTL enum
   literals sanitize that to '_'.  Compare on the sanitized form. *)
let canonical name =
  String.map (fun c -> if c = '.' then '_' else c) name

let () =
  let sm = build () in

  (* 1. UML engine *)
  let engine = Statechart.Engine.create sm in
  Statechart.Engine.start engine;
  let engine_trace =
    List.map
      (fun ev ->
        Statechart.Engine.dispatch engine (Statechart.Event.make ev);
        canonical (Statechart.Engine.signature engine))
      scenario
  in
  Printf.printf "engine : %s\n" (String.concat " " engine_trace);

  (* 2. Flattened machine *)
  let flat =
    match Statechart.Flatten.flatten sm with
    | Ok f -> f
    | Error reason -> failwith reason
  in
  let flat_trace =
    List.map canonical (Statechart.Flatten.simulate flat scenario)
  in
  Printf.printf "flat   : %s\n" (String.concat " " flat_trace);

  (* 3. Generated RTL in the compiled discrete-event simulator *)
  let hmod =
    match Codegen.Fsm_compile.compile flat with
    | Ok m -> m
    | Error reason -> failwith reason
  in
  let sim = Dsim.Fast.create hmod in
  Dsim.Fast.set_input sim "rst" 1;
  Dsim.Fast.clock_edge sim "clk";
  Dsim.Fast.set_input sim "rst" 0;
  let rtl_trace =
    List.map
      (fun ev ->
        Dsim.Fast.set_input sim (Codegen.Fsm_compile.event_input ev) 1;
        Dsim.Fast.clock_edge sim "clk";
        Dsim.Fast.set_input sim (Codegen.Fsm_compile.event_input ev) 0;
        canonical (Dsim.Fast.get_enum sim "state"))
      scenario
  in
  Printf.printf "rtl    : %s\n" (String.concat " " rtl_trace);
  Printf.printf "rtl light output: %d\n" (Dsim.Fast.get sim "light");

  let agree = engine_trace = flat_trace && flat_trace = rtl_trace in
  Printf.printf "all three executions agree: %b\n" agree;

  (* 4. The same scenario as a generated VHDL testbench *)
  let tb = Codegen.Testbench.vhdl_for_fsm hmod ~events:scenario in
  Printf.printf "generated testbench: %d lines (entity traffic_light_tb)\n"
    (List.length (String.split_on_char '\n' tb));
  if not agree then exit 1
