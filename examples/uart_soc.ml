(* UART SoC: assemble a small SoC from the IP library (UART tx/rx,
   FIFO, timer, GPIO), check it against the SoC profile, generate VHDL
   and Verilog, then simulate a loopback transfer: a byte written to the
   transmitter travels over the serial line into the receiver.

   This exercises the paper's "seamless integration of existing IP" and
   early-prototyping claims end-to-end.

   Run with: dune exec examples/uart_soc.exe *)

let () =
  (* 1. Model view: registered IP components + profile checks. *)
  let m = Uml.Model.create "uart_soc" in
  let profile = Profiles.Soc_profile.install m in
  let instances =
    [
      ("tx", Iplib.Cores.uart_tx ());
      ("rx", Iplib.Cores.uart_rx ());
      ("buf", Iplib.Cores.fifo4 ());
      ("timer", Iplib.Cores.timer ());
      ("leds", Iplib.Cores.gpio ());
    ]
  in
  let _soc = Iplib.Soc.component m ~profile ~name:"UartSoc" instances in
  let wfr = Uml.Wfr.check m in
  let soc_wfr = Profiles.Soc_profile.check m in
  Printf.printf "model: %d elements, %d UML diagnostics, %d SoC diagnostics\n"
    (Uml.Model.size m) (List.length wfr) (List.length soc_wfr);
  Printf.printf "hardware modules in model: %d, total area %d\n"
    (List.length (Profiles.Soc_profile.hw_modules m))
    (Iplib.Soc.total_area instances);

  (* 2. Hardware view: generate HDL in two languages. *)
  let design = Iplib.Soc.design ~name:"uart_soc" instances in
  (match Hdl.Check.check_design design with
   | [] -> print_endline "RTL checks: clean"
   | problems ->
     List.iter (fun d -> print_endline (Hdl.Check.to_string d)) problems;
     if Hdl.Check.errors problems <> [] then exit 1);
  let vhdl = Codegen.Vhdl.of_design design in
  let verilog = Codegen.Verilog.of_design design in
  Printf.printf "generated %d lines of VHDL, %d lines of Verilog\n"
    (Mda.Generate.loc vhdl) (Mda.Generate.loc verilog);

  (* 3. Simulate: transmit 0xA5, wire txd -> rxd by hand each cycle. *)
  let flat = Hdl.Elaborate.flatten design in
  let sim = Dsim.Fast.create flat in
  Dsim.Fast.set_input sim "rst" 1;
  Dsim.Fast.clock_edge sim "clk";
  Dsim.Fast.set_input sim "rst" 0;
  Dsim.Fast.set_input sim "rx_rxd" 1;
  (* idle line *)
  Dsim.Fast.clock_edge sim "clk";
  let byte = 0xA5 in
  Dsim.Fast.set_input sim "tx_data" byte;
  Dsim.Fast.set_input sim "tx_start" 1;
  let timing =
    Dsim.Timing.create_fast
      ~signals:[ "tx_txd"; "tx_busy"; "rx_valid"; "rx_data" ]
      sim
  in
  let received = ref None in
  for _cycle = 1 to 16 do
    (* serial wire: receiver sees the transmitter's output *)
    Dsim.Fast.set_input sim "rx_rxd" (Dsim.Fast.get sim "tx_txd");
    Dsim.Fast.clock_edge sim "clk";
    Dsim.Fast.set_input sim "tx_start" 0;
    Dsim.Timing.sample timing;
    if Dsim.Fast.get sim "rx_valid" = 1 && !received = None then
      received := Some (Dsim.Fast.get sim "rx_data")
  done;
  print_endline "timing diagram of the transfer:";
  print_string (Dsim.Timing.render timing);
  (match !received with
   | Some v ->
     Printf.printf "loopback: sent 0x%02X, received 0x%02X — %s\n" byte v
       (if v = byte then "OK" else "MISMATCH");
     if v <> byte then exit 1
   | None ->
     print_endline "loopback: nothing received";
     exit 1);

  (* 4. Exercise the FIFO: push three bytes, pop them back. *)
  List.iteri
    (fun i v ->
      Dsim.Fast.cycle ~inputs:[ ("buf_wr", 1); ("buf_din", v) ] sim "clk";
      ignore i)
    [ 11; 22; 33 ];
  Dsim.Fast.set_input sim "buf_wr" 0;
  let popped = ref [] in
  for _ = 1 to 3 do
    popped := Dsim.Fast.get sim "buf_dout" :: !popped;
    Dsim.Fast.cycle ~inputs:[ ("buf_rd", 1) ] sim "clk"
  done;
  Dsim.Fast.set_input sim "buf_rd" 0;
  Printf.printf "fifo order preserved: %b (%s)\n"
    (List.rev !popped = [ 11; 22; 33 ])
    (String.concat " " (List.map string_of_int (List.rev !popped)));
  Printf.printf "simulator processed %d events in %d delta cycles (%d evals skipped)\n"
    (Dsim.Fast.events sim) (Dsim.Fast.delta_cycles sim)
    (Dsim.Fast.skipped_evals sim)
