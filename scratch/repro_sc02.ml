open Uml

(* Junction cycle: X -> Y, Y -> X, Y -> S.  Both X and Y stabilize via S,
   so a correct SC-02 pass reports nothing.  Try many id spellings to
   cover both Hashtbl.fold evaluation orders. *)
let try_ids xid yid =
  let s = Smachine.simple_state ~id:"s" "S" in
  let x = Smachine.pseudostate ~id:xid ~name:"X" Smachine.Junction in
  let y = Smachine.pseudostate ~id:yid ~name:"Y" Smachine.Junction in
  let init = Smachine.pseudostate ~id:"init" Smachine.Initial in
  let r =
    Smachine.region ~id:"r0"
      [ Smachine.State s; Smachine.Pseudo x; Smachine.Pseudo y;
        Smachine.Pseudo init ]
      [ Smachine.transition ~id:"t0" ~source:"init" ~target:xid ();
        Smachine.transition ~id:"t1" ~source:xid ~target:yid ();
        Smachine.transition ~id:"t2" ~source:yid ~target:xid ();
        Smachine.transition ~id:"t3" ~source:yid ~target:"s" () ]
  in
  let sm = Smachine.make ~id:"sm" "M" [ r ] in
  let m = Model.create "test" in
  Model.add m (Model.E_state_machine sm);
  let diags =
    List.filter (fun d -> d.Wfr.diag_rule = "SC-02") (Lint.Sc_pass.check m)
  in
  if diags <> [] then begin
    Printf.printf "FALSE POSITIVE with ids (%s,%s):\n" xid yid;
    List.iter (fun d -> print_endline ("  " ^ Wfr.to_string d)) diags;
    true
  end
  else false

let () =
  let hits = ref 0 in
  for i = 0 to 19 do
    for j = 0 to 19 do
      let xid = Printf.sprintf "x%d" i and yid = Printf.sprintf "y%d" j in
      if try_ids xid yid then incr hits
    done
  done;
  Printf.printf "hits: %d / 400\n" !hits
